//! The hash-consing formula arena backing [`crate::Formula`].
//!
//! Every distinct formula is stored exactly once in a process-wide flat
//! node table; a [`FormulaId`] (a `u32`) names it. Interning performs
//! *canonicalization* at construction time:
//!
//! * constants fold (`compFm`'s cases, plus `¬¬f = f`),
//! * `And`/`Or` operands are flattened one level (children of a
//!   canonical `And` are never `And`s or constants), sorted by id and
//!   deduplicated.
//!
//! Canonical form makes structural equality *id equality* (`O(1)`), lets
//! per-node metadata (`size`, `has_vars`) be computed once at interning,
//! and turns `substitute`/`eval` into memoized single passes over the
//! shared DAG instead of walks over an exponentially larger tree
//! expansion.
//!
//! Locking discipline: the arena is a single [`Mutex`]; every public
//! operation of [`crate::Formula`] takes the lock at most once per call
//! and **never** while invoking caller-supplied closures (lookups and
//! assignments run against a lock-free [`Dag`] snapshot). The arena only
//! grows — ids stay valid for the life of the process — and growth is
//! bounded by the number of *distinct* formulas ever built, which
//! hash-consing keeps proportional to live working-set size rather than
//! to the number of operations performed.

use crate::var::Var;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Range;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The rustc-style Fx multiplicative hasher. Interning hashes a `Node`
/// on every constructor call — the hottest hash site in the system —
/// and the inputs are tiny structured ids, exactly the workload SipHash
/// is overkill for.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Id of one distinct (canonical) formula in the process-wide arena.
///
/// Two formulas are structurally equal iff their ids are equal, which is
/// what makes [`crate::Formula`] comparisons, hashing, and cache keys
/// `O(1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FormulaId(pub u32);

/// Id of the constant `false` (seeded at arena construction).
pub(crate) const FALSE_ID: FormulaId = FormulaId(0);
/// Id of the constant `true` (seeded at arena construction).
pub(crate) const TRUE_ID: FormulaId = FormulaId(1);

/// One interned node. Operands are ids of strictly older nodes, so the
/// table is topologically ordered by construction.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum Node {
    Const(bool),
    Var(Var),
    Not(FormulaId),
    And(Arc<[FormulaId]>),
    Or(Arc<[FormulaId]>),
}

/// Arena occupancy counters (see [`crate::Formula::arena_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct formulas interned since process start.
    pub nodes: usize,
    /// Total operand slots stored across all n-ary nodes — the figure
    /// that is linear in fan-out for buffered construction and quadratic
    /// for naive pairwise accumulation.
    pub operand_slots: u64,
}

pub(crate) struct Inner {
    nodes: Vec<Node>,
    /// Tree-expansion node count per formula (saturating).
    size: Vec<u64>,
    /// Does the formula reference any variable?
    has_vars: Vec<bool>,
    intern: HashMap<Node, FormulaId, FxBuild>,
    operand_slots: u64,
}

impl Inner {
    fn new() -> Inner {
        let mut inner = Inner {
            nodes: Vec::new(),
            size: Vec::new(),
            has_vars: Vec::new(),
            intern: HashMap::default(),
            operand_slots: 0,
        };
        let f = inner.intern(Node::Const(false), 1, false);
        let t = inner.intern(Node::Const(true), 1, false);
        debug_assert_eq!(f, FALSE_ID);
        debug_assert_eq!(t, TRUE_ID);
        inner
    }

    fn intern(&mut self, node: Node, size: u64, has_vars: bool) -> FormulaId {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        // Count operand slots only for nodes actually stored — a
        // hash-consing hit stores nothing.
        if let Node::And(xs) | Node::Or(xs) = &node {
            self.operand_slots += xs.len() as u64;
        }
        // `< u32::MAX`, not `≤`: the snapshot memo stores `id + 1`.
        let raw = u32::try_from(self.nodes.len())
            .ok()
            .filter(|&r| r < u32::MAX)
            .expect("formula arena full (2^32 nodes)");
        let id = FormulaId(raw);
        self.nodes.push(node.clone());
        self.size.push(size);
        self.has_vars.push(has_vars);
        self.intern.insert(node, id);
        id
    }

    pub(crate) fn mk_const(b: bool) -> FormulaId {
        if b {
            TRUE_ID
        } else {
            FALSE_ID
        }
    }

    pub(crate) fn mk_var(&mut self, v: Var) -> FormulaId {
        self.intern(Node::Var(v), 1, true)
    }

    pub(crate) fn mk_not(&mut self, a: FormulaId) -> FormulaId {
        match self.nodes[a.0 as usize] {
            Node::Const(b) => Self::mk_const(!b),
            Node::Not(inner) => inner,
            _ => {
                let size = self.size[a.0 as usize].saturating_add(1);
                let has_vars = self.has_vars[a.0 as usize];
                self.intern(Node::Not(a), size, has_vars)
            }
        }
    }

    /// Canonical n-ary conjunction (`conj`) or disjunction: folds
    /// constants, flattens same-operator children one level (sufficient
    /// by the canonical invariant), sorts by id and deduplicates, all in
    /// one pass — a single interning regardless of operand count.
    pub(crate) fn mk_nary<I>(&mut self, conj: bool, ops: I) -> FormulaId
    where
        I: IntoIterator<Item = FormulaId>,
    {
        let (absorbing, neutral) = if conj {
            (FALSE_ID, TRUE_ID)
        } else {
            (TRUE_ID, FALSE_ID)
        };
        let mut out: Vec<FormulaId> = Vec::new();
        for id in ops {
            if id == absorbing {
                return absorbing;
            }
            if id == neutral {
                continue;
            }
            match &self.nodes[id.0 as usize] {
                Node::And(xs) if conj => out.extend_from_slice(xs),
                Node::Or(xs) if !conj => out.extend_from_slice(xs),
                _ => out.push(id),
            }
        }
        out.sort_unstable();
        out.dedup();
        match out.len() {
            0 => neutral,
            1 => out[0],
            _ => {
                let size = out
                    .iter()
                    .fold(1u64, |acc, i| acc.saturating_add(self.size[i.0 as usize]));
                let has_vars = out.iter().any(|i| self.has_vars[i.0 as usize]);
                let node = if conj {
                    Node::And(out.into())
                } else {
                    Node::Or(out.into())
                };
                self.intern(node, size, has_vars)
            }
        }
    }

    pub(crate) fn size_of(&self, id: FormulaId) -> u64 {
        self.size[id.0 as usize]
    }

    pub(crate) fn has_vars(&self, id: FormulaId) -> bool {
        self.has_vars[id.0 as usize]
    }

    pub(crate) fn node(&self, id: FormulaId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub(crate) fn stats(&self) -> ArenaStats {
        ArenaStats {
            nodes: self.nodes.len(),
            operand_slots: self.operand_slots,
        }
    }

    /// Extracts the sub-DAG reachable from `roots` into a lock-free local
    /// snapshot, children before parents. Iterative (no recursion), so
    /// arbitrarily deep formulas cannot overflow the stack.
    pub(crate) fn snapshot(&self, roots: &[FormulaId]) -> Dag {
        let mut dag = Dag {
            nodes: Vec::new(),
            operands: Vec::new(),
            roots: Vec::with_capacity(roots.len()),
        };
        let mut memo = IdMap::new();
        let mut stack: Vec<(FormulaId, bool)> = Vec::new();
        for &root in roots {
            if memo.get(root.0).is_none() {
                stack.push((root, false));
                while let Some((id, expanded)) = stack.pop() {
                    if memo.get(id.0).is_some() {
                        continue;
                    }
                    let node = &self.nodes[id.0 as usize];
                    if expanded {
                        let at = |x: &FormulaId| memo.get(x.0).expect("child snapshot first");
                        let local = match node {
                            Node::Const(b) => DagNode::Const(*b),
                            Node::Var(v) => DagNode::Var(*v),
                            Node::Not(x) => DagNode::Not(at(x)),
                            Node::And(xs) | Node::Or(xs) => {
                                let start = dag.operands.len() as u32;
                                dag.operands.extend(xs.iter().map(at));
                                let range = start..dag.operands.len() as u32;
                                if matches!(node, Node::And(_)) {
                                    DagNode::And(range)
                                } else {
                                    DagNode::Or(range)
                                }
                            }
                        };
                        memo.insert(id.0, dag.nodes.len() as u32);
                        dag.nodes.push(local);
                    } else {
                        stack.push((id, true));
                        match node {
                            Node::Not(x) if memo.get(x.0).is_none() => stack.push((*x, false)),
                            Node::And(xs) | Node::Or(xs) => {
                                for x in xs.iter() {
                                    if memo.get(x.0).is_none() {
                                        stack.push((*x, false));
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            dag.roots
                .push(memo.get(root.0).expect("root snapshot above"));
        }
        dag
    }
}

/// One node of a [`Dag`] snapshot; operand references are indices into
/// [`Dag::operands`] / earlier [`Dag::nodes`] entries.
#[derive(Debug, Clone)]
pub(crate) enum DagNode {
    Const(bool),
    Var(Var),
    Not(u32),
    And(Range<u32>),
    Or(Range<u32>),
}

/// A lock-free snapshot of the sub-DAG reachable from a set of roots, in
/// topological order (children strictly before parents). All traversal
/// algorithms — eval, substitute, rendering, wire encoding — run over
/// snapshots so the arena lock is never held across user code.
#[derive(Debug, Clone)]
pub(crate) struct Dag {
    pub(crate) nodes: Vec<DagNode>,
    pub(crate) operands: Vec<u32>,
    /// One entry per requested root, in request order.
    pub(crate) roots: Vec<u32>,
}

impl Dag {
    /// Local indices of the operands of an n-ary node.
    pub(crate) fn ops(&self, range: &Range<u32>) -> &[u32] {
        &self.operands[range.start as usize..range.end as usize]
    }
}

/// Minimal open-addressing `u32 → u32` map with multiplicative hashing.
/// The snapshot memo is the hot data structure of every
/// substitute/eval/encode pass; `std`'s SipHash-backed `HashMap`
/// dominated those passes, and the keys here are small dense ids for
/// which a Fibonacci-hashed probe sequence is both faster and collision-
/// resistant enough.
struct IdMap {
    /// `(key + 1, value)`; key slot 0 means empty.
    slots: Vec<(u32, u32)>,
    mask: usize,
    len: usize,
}

impl IdMap {
    fn new() -> IdMap {
        IdMap {
            slots: vec![(0, 0); 16],
            mask: 15,
            len: 0,
        }
    }

    #[inline]
    fn probe(&self, key: u32) -> usize {
        (key.wrapping_add(1).wrapping_mul(0x9e37_79b1) as usize) & self.mask
    }

    fn get(&self, key: u32) -> Option<u32> {
        let stored = key + 1;
        let mut i = self.probe(key);
        loop {
            let (k, v) = self.slots[i];
            if k == stored {
                return Some(v);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert(&mut self, key: u32, value: u32) {
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let stored = key + 1;
        let mut i = self.probe(key);
        loop {
            let (k, _) = self.slots[i];
            if k == 0 {
                self.slots[i] = (stored, value);
                self.len += 1;
                return;
            }
            if k == stored {
                self.slots[i] = (stored, value);
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); 0]);
        self.mask = old.len() * 2 - 1;
        self.slots = vec![(0, 0); old.len() * 2];
        self.len = 0;
        for (k, v) in old {
            if k != 0 {
                self.insert(k - 1, v);
            }
        }
    }
}

static ARENA: OnceLock<Mutex<Inner>> = OnceLock::new();

/// Locks the global arena. Poisoning is ignored: interning either
/// completes or leaves the maps untouched, so a panicking holder cannot
/// leave the arena in a state that later operations would misread.
pub(crate) fn lock() -> MutexGuard<'static, Inner> {
    ARENA
        .get_or_init(|| Mutex::new(Inner::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

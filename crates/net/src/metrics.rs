//! Run metrics: visits, messages, traffic, computation.
//!
//! Every algorithm in `parbox-core` produces a [`RunReport`]; the figures
//! and the Fig. 4 complexity table of the paper are regenerated from
//! these reports.

use crate::NetworkModel;
use parbox_frag::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// What a message carries, for traffic breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageKind {
    /// The query `q` (stage 1 of ParBoX).
    Query,
    /// A `(V, CV, DV)` triplet (stage 2 → 3).
    Triplet,
    /// Raw fragment data (the naive baselines ship these).
    Data,
    /// Control traffic (visit requests, acknowledgements).
    Control,
    /// A merged multi-query program (stage 1 of the batch protocol).
    BatchQuery,
    /// A per-site envelope of all fragment triplets for one batch
    /// (stage 2 → 3 of the batch protocol).
    Envelope,
}

/// One recorded message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sending site.
    pub from: SiteId,
    /// Receiving site.
    pub to: SiteId,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Payload classification.
    pub kind: MessageKind,
}

/// Per-site accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteReport {
    /// Times the site was *visited* (contacted to start work). The
    /// paper's headline guarantee is `visits == 1` per site for ParBoX.
    pub visits: usize,
    /// Messages sent by the site.
    pub msgs_sent: usize,
    /// Messages received by the site.
    pub msgs_recv: usize,
    /// Bytes sent by the site.
    pub bytes_sent: usize,
    /// Bytes received by the site.
    pub bytes_recv: usize,
    /// Work units: node × sub-query evaluations performed at the site.
    pub work_units: u64,
    /// Measured wall-clock compute time at the site, seconds.
    pub compute_s: f64,
}

/// A strategy's *predicted* cost, in the same units the [`RunReport`]
/// accounting later measures: an executor's `estimate` fills one of
/// these from `ForestStats`-style aggregates before any site is
/// contacted, and tests assert estimate-vs-actual agreement (visit and
/// message counts exactly; traffic within the bound documented on the
/// estimator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Predicted total site visits (the sum over sites of per-site
    /// visits — compare with [`RunReport::total_visits`]).
    pub visits: usize,
    /// Predicted total messages (compare with
    /// [`RunReport::total_messages`]).
    pub messages: usize,
    /// Predicted total traffic in bytes (compare with
    /// [`RunReport::total_bytes`]).
    pub traffic_bytes: usize,
    /// Predicted sequential communication rounds (latency-bearing
    /// phases that cannot overlap).
    pub rounds: usize,
    /// Predicted computation in work units (node × sub-query
    /// evaluations — compare with [`RunReport::total_work`]).
    pub work_units: u64,
    /// Predicted modeled elapsed seconds (compare with
    /// [`RunReport::elapsed_model_s`]).
    pub modeled_s: f64,
}

/// What the planner decided for a run: the chosen strategy and its
/// [`CostEstimate`], recorded in [`RunReport::planned`] so every
/// experiment artifact shows prediction next to measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSummary {
    /// Name of the chosen strategy.
    pub strategy: String,
    /// The estimate that won the comparison.
    pub estimate: CostEstimate,
    /// How many candidate strategies were compared.
    pub candidates: usize,
}

/// Cache efficacy of one serving round, recorded in
/// [`RunReport::cache`] so every experiment artifact shows how much of
/// the answer came from the two cache levels (the engine's solve cache
/// and the site workers' triplet caches) rather than from evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheEfficacy {
    /// Queries answered entirely from the engine's solve cache — no
    /// site was contacted for them.
    pub queries_from_cache: u64,
    /// Queries in the round (cached + evaluated).
    pub queries_total: u64,
    /// Site-worker triplet-cache hits during the round.
    pub site_cache_hits: u64,
    /// Fragment evaluations actually run (site-cache misses).
    pub fragments_evaluated: u64,
}

impl CacheEfficacy {
    /// Fraction of per-fragment lookups the site triplet caches
    /// answered (0 when no lookup was made).
    pub fn site_hit_rate(&self) -> f64 {
        let total = self.site_cache_hits + self.fragments_evaluated;
        if total == 0 {
            0.0
        } else {
            self.site_cache_hits as f64 / total as f64
        }
    }
}

/// Delta-repair maintenance counters of one update (or an aggregate of
/// updates), recorded in [`RunReport::repair`] so serving artifacts
/// show how much of the cached state survived each update in place
/// versus being thrown away for recomputation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairEfficacy {
    /// Cache entries (site triplets + coordinator solve entries)
    /// repaired in place — or certified unchanged — by delta
    /// maintenance.
    pub repaired: u64,
    /// Cache entries invalidated and left for full recomputation.
    pub invalidated: u64,
    /// Tree nodes re-interned by the repairs: the O(depth) update cost,
    /// versus O(|fragment|) for a recomputation.
    pub nodes_recomputed: u64,
    /// Wire bytes of the shipped triplet deltas (changed entries only,
    /// varint-DAG encoded; 1-byte ack per unchanged entry).
    pub delta_bytes: u64,
}

impl RepairEfficacy {
    /// Fraction of touched cache entries kept alive in place
    /// (0 when the update touched no cached state).
    pub fn repair_rate(&self) -> f64 {
        let total = self.repaired + self.invalidated;
        if total == 0 {
            0.0
        } else {
            self.repaired as f64 / total as f64
        }
    }

    /// Folds another update's counters into this one.
    pub fn absorb(&mut self, other: &RepairEfficacy) {
        self.repaired += other.repaired;
        self.invalidated += other.invalidated;
        self.nodes_recomputed += other.nodes_recomputed;
        self.delta_bytes += other.delta_bytes;
    }
}

/// Fault-tolerance counters of one run, recorded in
/// [`RunReport::faults`] by the serving engine's supervisor so every
/// chaos artifact shows how much retrying, restarting, and re-seeding
/// the answers cost. All-zero on a healthy run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Site requests that blew their deadline.
    pub timeouts: u64,
    /// Requests re-sent after a timeout or actor death.
    pub retries: u64,
    /// Site actors torn down and restarted (dead or presumed wedged).
    pub restarts: u64,
    /// Fragments re-seeded from the coordinator's authoritative handles
    /// (restart seeds plus missing-fragment reloads).
    pub reseeded_fragments: u64,
    /// Sites still down when every attempt was exhausted — each one
    /// degrades the answers it was needed for to `Partial`.
    pub failed_sites: u64,
    /// Per recovered site: seconds from first failure sign to the reply
    /// that ended the outage.
    pub recovery_s: Vec<f64>,
}

impl FaultSummary {
    /// Folds another summary's counters into this one.
    pub fn absorb(&mut self, other: &FaultSummary) {
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.restarts += other.restarts;
        self.reseeded_fragments += other.reseeded_fragments;
        self.failed_sites += other.failed_sites;
        self.recovery_s.extend_from_slice(&other.recovery_s);
    }

    /// Whether any fault activity was recorded at all.
    pub fn any(&self) -> bool {
        self.timeouts != 0
            || self.retries != 0
            || self.restarts != 0
            || self.reseeded_fragments != 0
            || self.failed_sites != 0
            || !self.recovery_s.is_empty()
    }

    /// Longest observed site recovery, seconds (0 when none happened).
    pub fn max_recovery_s(&self) -> f64 {
        self.recovery_s.iter().copied().fold(0.0, f64::max)
    }
}

/// Full accounting of one algorithm run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-site reports keyed by site.
    pub per_site: BTreeMap<u32, SiteReport>,
    /// All messages in order of recording.
    pub messages: Vec<Message>,
    /// Modeled elapsed time (parallel compute + modeled network), seconds.
    pub elapsed_model_s: f64,
    /// Measured wall-clock time of the whole run, seconds.
    pub elapsed_wall_s: f64,
    /// When a cost-based planner chose the strategy that produced this
    /// report, what it chose and what it predicted (`None` for runs of a
    /// fixed, caller-chosen strategy).
    pub planned: Option<PlanSummary>,
    /// Cache efficacy of the round, for serving-engine runs (`None` for
    /// one-shot algorithm runs, which have no caches).
    pub cache: Option<CacheEfficacy>,
    /// Delta-repair efficacy of a maintenance step (`None` outside
    /// update handling, or when delta maintenance is disabled).
    pub repair: Option<RepairEfficacy>,
    /// Fault-tolerance counters, for supervised serving-engine runs
    /// (`None` for one-shot algorithm runs, which have no supervisor).
    pub faults: Option<FaultSummary>,
}

impl RunReport {
    /// Empty report.
    pub fn new() -> RunReport {
        RunReport::default()
    }

    fn site_mut(&mut self, site: SiteId) -> &mut SiteReport {
        self.per_site.entry(site.0).or_default()
    }

    /// Records a visit to a site.
    pub fn record_visit(&mut self, site: SiteId) {
        self.site_mut(site).visits += 1;
    }

    /// Records a message, updating both endpoints.
    pub fn record_message(&mut self, from: SiteId, to: SiteId, bytes: usize, kind: MessageKind) {
        self.messages.push(Message {
            from,
            to,
            bytes,
            kind,
        });
        let s = self.site_mut(from);
        s.msgs_sent += 1;
        s.bytes_sent += bytes;
        let r = self.site_mut(to);
        r.msgs_recv += 1;
        r.bytes_recv += bytes;
    }

    /// Adds work units at a site.
    pub fn record_work(&mut self, site: SiteId, units: u64) {
        self.site_mut(site).work_units += units;
    }

    /// Adds measured compute time at a site.
    pub fn record_compute(&mut self, site: SiteId, d: Duration) {
        self.site_mut(site).compute_s += d.as_secs_f64();
    }

    /// Report for one site (default-empty if the site never participated).
    pub fn site(&self, site: SiteId) -> SiteReport {
        self.per_site.get(&site.0).cloned().unwrap_or_default()
    }

    /// Iterator over `(site, report)`.
    pub fn sites(&self) -> impl Iterator<Item = (SiteId, &SiteReport)> {
        self.per_site.iter().map(|(&s, r)| (SiteId(s), r))
    }

    /// Total bytes over all messages — the paper's *total network traffic*.
    pub fn total_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Total bytes of data-plane payloads — triplets, envelopes and raw
    /// fragment data, excluding query shipping and control traffic. The
    /// serving engine's cache guarantee is phrased over this figure: a
    /// fully cached round moves zero data-plane bytes.
    pub fn data_plane_bytes(&self) -> usize {
        self.bytes_of_kind(MessageKind::Triplet)
            + self.bytes_of_kind(MessageKind::Envelope)
            + self.bytes_of_kind(MessageKind::Data)
    }

    /// Total bytes of a given message kind.
    pub fn bytes_of_kind(&self, kind: MessageKind) -> usize {
        self.messages
            .iter()
            .filter(|m| m.kind == kind)
            .map(|m| m.bytes)
            .sum()
    }

    /// Total number of messages.
    pub fn total_messages(&self) -> usize {
        self.messages.len()
    }

    /// Total work units over all sites — the paper's *total computation*.
    pub fn total_work(&self) -> u64 {
        self.per_site.values().map(|r| r.work_units).sum()
    }

    /// Total measured compute seconds over all sites.
    pub fn total_compute_s(&self) -> f64 {
        self.per_site.values().map(|r| r.compute_s).sum()
    }

    /// Maximum measured compute seconds over sites — the parallel
    /// computation term of the elapsed-time model.
    pub fn max_site_compute_s(&self) -> f64 {
        self.per_site
            .values()
            .map(|r| r.compute_s)
            .fold(0.0, f64::max)
    }

    /// Maximum number of visits to any single site.
    pub fn max_visits(&self) -> usize {
        self.per_site.values().map(|r| r.visits).max().unwrap_or(0)
    }

    /// Total visits over all sites — the figure a [`CostEstimate`]
    /// predicts in its `visits` field.
    pub fn total_visits(&self) -> usize {
        self.per_site.values().map(|r| r.visits).sum()
    }

    /// Total simulated network cost in seconds: the sum over all recorded
    /// messages of their modeled transfer time (per-message latency plus
    /// payload over bandwidth). Unlike `elapsed_model_s` this counts
    /// network *resource usage* — overlapping transfers are not collapsed
    /// — which is the right unit for comparing how much network a batched
    /// round saves over sequential per-query rounds.
    pub fn network_cost_s(&self, model: &NetworkModel) -> f64 {
        // fold, not sum(): an empty f64 sum() yields -0.0, which formats
        // as "-0.000000" in reports.
        self.messages
            .iter()
            .map(|m| model.transfer_time(m.bytes))
            .fold(0.0, |acc, t| acc + t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_recording_updates_both_ends() {
        let mut r = RunReport::new();
        r.record_message(SiteId(0), SiteId(1), 100, MessageKind::Query);
        r.record_message(SiteId(1), SiteId(0), 40, MessageKind::Triplet);
        assert_eq!(r.total_bytes(), 140);
        assert_eq!(r.total_messages(), 2);
        assert_eq!(r.site(SiteId(0)).bytes_sent, 100);
        assert_eq!(r.site(SiteId(0)).bytes_recv, 40);
        assert_eq!(r.site(SiteId(1)).msgs_recv, 1);
        assert_eq!(r.bytes_of_kind(MessageKind::Triplet), 40);
        assert_eq!(r.bytes_of_kind(MessageKind::Data), 0);
    }

    #[test]
    fn visits_and_work_accumulate() {
        let mut r = RunReport::new();
        r.record_visit(SiteId(2));
        r.record_visit(SiteId(2));
        r.record_work(SiteId(2), 10);
        r.record_work(SiteId(3), 5);
        assert_eq!(r.site(SiteId(2)).visits, 2);
        assert_eq!(r.max_visits(), 2);
        assert_eq!(r.total_work(), 15);
    }

    #[test]
    fn compute_aggregates() {
        let mut r = RunReport::new();
        r.record_compute(SiteId(0), Duration::from_millis(30));
        r.record_compute(SiteId(1), Duration::from_millis(50));
        assert!((r.total_compute_s() - 0.08).abs() < 1e-9);
        assert!((r.max_site_compute_s() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn network_cost_sums_per_message_transfer_times() {
        let mut r = RunReport::new();
        r.record_message(SiteId(0), SiteId(1), 1_000, MessageKind::Query);
        r.record_message(SiteId(1), SiteId(0), 500, MessageKind::Triplet);
        let m = crate::NetworkModel::lan();
        let expected = m.transfer_time(1_000) + m.transfer_time(500);
        assert!((r.network_cost_s(&m) - expected).abs() < 1e-12);
        assert_eq!(RunReport::new().network_cost_s(&m), 0.0);
    }

    #[test]
    fn total_visits_sums_over_sites_and_planned_defaults_to_none() {
        let mut r = RunReport::new();
        assert_eq!(r.total_visits(), 0);
        assert!(r.planned.is_none());
        r.record_visit(SiteId(1));
        r.record_visit(SiteId(1));
        r.record_visit(SiteId(2));
        assert_eq!(r.total_visits(), 3);
        r.planned = Some(PlanSummary {
            strategy: "ParBoX".into(),
            estimate: CostEstimate {
                visits: 3,
                ..CostEstimate::default()
            },
            candidates: 6,
        });
        assert_eq!(
            r.planned.as_ref().unwrap().estimate.visits,
            r.total_visits()
        );
    }

    #[test]
    fn cache_efficacy_rates() {
        let c = CacheEfficacy {
            queries_from_cache: 3,
            queries_total: 4,
            site_cache_hits: 6,
            fragments_evaluated: 2,
        };
        assert!((c.site_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheEfficacy::default().site_hit_rate(), 0.0);
        assert!(RunReport::new().cache.is_none());
    }

    #[test]
    fn fault_summary_absorbs_and_tracks_recovery() {
        assert!(RunReport::new().faults.is_none());
        let mut a = FaultSummary {
            timeouts: 2,
            retries: 1,
            recovery_s: vec![0.1],
            ..FaultSummary::default()
        };
        assert!(a.any());
        a.absorb(&FaultSummary {
            restarts: 1,
            recovery_s: vec![0.3, 0.2],
            ..FaultSummary::default()
        });
        assert_eq!(a.timeouts, 2);
        assert_eq!(a.restarts, 1);
        assert_eq!(a.recovery_s.len(), 3);
        assert!((a.max_recovery_s() - 0.3).abs() < 1e-12);
        assert!(!FaultSummary::default().any());
        assert_eq!(FaultSummary::default().max_recovery_s(), 0.0);
    }

    #[test]
    fn unknown_site_defaults() {
        let r = RunReport::new();
        assert_eq!(r.site(SiteId(42)), SiteReport::default());
        assert_eq!(r.max_visits(), 0);
    }
}

//! The paper's *centralized* motivation (Section 1, the PDOM scenario):
//! a large XML tree in secondary storage, split into fragments that are
//! swapped in on demand. A recursive traversal of Fig. 1(a)'s tree
//! visits the fragments in the order R, X, Z, X, R, Y, R — two extra
//! swaps of R and one of X. Partial evaluation loads each fragment
//! exactly once, even with no parallelism at all.
//!
//! This example materializes the fragments as real files, evaluates the
//! query both ways against a load-counting pager, and prints the swap
//! counts.
//!
//! Run with: `cargo run --example paged_store`

use parbox::boolean::{EquationSystem, Formula, Var};
use parbox::core::{bottom_up, centralized_eval};
use parbox::frag::Forest;
use parbox::query::{compile, parse_query};
use parbox::xml::{FragmentId, NodeId, Tree};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;

/// A toy page store: fragments live as XML files; every load is counted.
struct Pager {
    dir: PathBuf,
    loads: RefCell<HashMap<FragmentId, usize>>,
}

impl Pager {
    fn new(forest: &Forest) -> std::io::Result<Pager> {
        let dir = std::env::temp_dir().join(format!("parbox-pages-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        for f in forest.fragment_ids() {
            let xml = forest.fragment(f).tree.to_xml();
            std::fs::write(dir.join(format!("{f}.xml")), xml)?;
        }
        Ok(Pager {
            dir,
            loads: RefCell::new(HashMap::new()),
        })
    }

    /// Loads (and counts) a fragment page.
    fn load(&self, f: FragmentId) -> Tree {
        *self.loads.borrow_mut().entry(f).or_insert(0) += 1;
        let xml = std::fs::read_to_string(self.dir.join(format!("{f}.xml"))).expect("page exists");
        Tree::parse(&xml).expect("page is valid XML")
    }

    fn report(&self, label: &str) {
        let loads = self.loads.borrow();
        let total: usize = loads.values().sum();
        let mut per: Vec<_> = loads.iter().map(|(f, n)| (f.0, *n)).collect();
        per.sort();
        let detail: Vec<String> = per.iter().map(|(f, n)| format!("F{f}×{n}")).collect();
        println!("{label:<22} {total} page loads  ({})", detail.join(", "));
    }

    fn reset(&self) {
        self.loads.borrow_mut().clear();
    }
}

fn main() -> std::io::Result<()> {
    // Fig. 1(a): R{X{Z{A,A}}, Y{B}}, fragmented into R, X, Z, Y.
    let tree = Tree::parse("<r><x><z><A/><A/></z><pad/></x><y><B/><pad/></y></r>").unwrap();
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let find = |forest: &Forest, frag, label: &str| -> NodeId {
        let t = &forest.fragment(frag).tree;
        t.descendants(t.root())
            .find(|&n| t.label_str(n) == label)
            .unwrap()
    };
    let x = find(&forest, f0, "x");
    let fx = forest.split(f0, x).unwrap();
    let z = find(&forest, fx, "z");
    let fz = forest.split(fx, z).unwrap();
    let y = find(&forest, f0, "y");
    let fy = forest.split(f0, y).unwrap();
    println!("fragments on disk: R={f0}, X={fx}, Z={fz}, Y={fy}\nquery: [//A ∧ //B]\n");

    let q = compile(&parse_query("[//A ∧ //B]").unwrap());
    let pager = Pager::new(&forest)?;

    // --- Naive recursive traversal: jump to a sub-fragment when a virtual
    // node is reached, swap the parent back in afterwards (the paper's
    // R, X, Z, X, R, Y, R order). We model "swapping in" as a page load
    // every time the traversal (re-)enters a fragment.
    fn traverse(pager: &Pager, frag: FragmentId, order: &mut Vec<FragmentId>) {
        let tree = pager.load(frag);
        order.push(frag);
        // Walk the page; recurse into sub-fragments as they appear.
        for n in tree.descendants(tree.root()) {
            if let Some(sub) = tree.node(n).kind.fragment() {
                traverse(pager, sub, order);
                // Returning from the sub-fragment swaps this page back in.
                pager.load(frag);
                order.push(frag);
            }
        }
    }
    let mut order = Vec::new();
    traverse(&pager, f0, &mut order);
    let order_str: Vec<String> = order.iter().map(|f| f.to_string()).collect();
    println!("recursive traversal order: {}", order_str.join(" → "));
    pager.report("recursive traversal:");

    // For the answer itself, the naive approach evaluates the reassembled
    // document (loads already counted above).
    let whole = forest.reassemble();
    let naive_answer = centralized_eval(&whole, &q);

    // --- Partial evaluation: load each page once, in any order, compute
    // its triplet, and solve the equation system at the end.
    pager.reset();
    let mut sys = EquationSystem::new();
    for f in forest.fragment_ids() {
        let page = pager.load(f);
        sys.insert(f, bottom_up(&page, &q).triplet);
    }
    let resolved = sys.solve(&forest.postorder()).expect("all pages loaded");
    let pe_answer = resolved[&f0].value_of(Var::new(f0, parbox::boolean::VecKind::V, q.root()));
    pager.report("partial evaluation:");

    println!("\nanswer: naive = {naive_answer}, partial evaluation = {pe_answer}");
    assert_eq!(naive_answer, pe_answer);
    assert!(pe_answer);

    // Clean up the page files.
    std::fs::remove_dir_all(&pager.dir)?;
    let _ = Formula::TRUE;
    Ok(())
}

//! Incremental maintenance of Boolean XPath views (paper, Section 5).
//!
//! A materialized view `M(q, T)` caches the source tree and the answer
//! `ans` of `q` over the fragmented tree `T`. To make maintenance
//! incremental, the state is augmented with the `(V, CV, DV)` triplet of
//! every fragment. After updates to a fragment `F_j`:
//!
//! * only the site storing `F_j` is visited, and only `F_j` is
//!   re-evaluated (`bottomUp`);
//! * the fresh triplet is compared with the cached one — if identical,
//!   maintenance stops without touching `ans`;
//! * otherwise the (local, cheap) equation system is re-solved.
//!
//! The communication cost is `O(|q| · card(F_j))` — independent of both
//! `|T|` and the size of the update.
//!
//! Four update operations are supported, matching the paper exactly:
//! `insNode`, `delNode`, `splitFragments` and `mergeFragments`.

use crate::algorithms::{parbox, query_wire_size, EvalOutcome};
use crate::eval::bottom_up;
use parbox_bool::{triplet_dag_wire_size, EquationSystem, Triplet};
use parbox_frag::{Forest, FragError, Placement, SiteId, SourceTree};
use parbox_net::{Cluster, MessageKind, NetworkModel, RunReport};
use parbox_query::CompiledQuery;
use parbox_xml::{FragmentId, NodeId};
use std::collections::HashMap;
use std::time::Instant;

/// An update against a materialized view's underlying fragmented tree.
#[derive(Debug, Clone)]
pub enum Update {
    /// `insNode(A, v)`: insert a node labelled `label` (with optional
    /// text) as a child of `parent` in fragment `frag`.
    InsNode {
        /// Fragment receiving the node.
        frag: FragmentId,
        /// Parent node within the fragment.
        parent: NodeId,
        /// Tag of the new node.
        label: String,
        /// Optional text content.
        text: Option<String>,
    },
    /// `delNode(v)`: delete the subtree rooted at `node` from `frag`.
    /// The subtree must not contain virtual nodes (sub-fragment pointers
    /// are removed with `mergeFragments` first).
    DelNode {
        /// Fragment owning the node.
        frag: FragmentId,
        /// Root of the subtree to delete.
        node: NodeId,
    },
    /// `splitFragments(v)`: make the subtree at `node` a new fragment,
    /// optionally assigning it to `to_site` (defaults to `frag`'s site).
    SplitFragments {
        /// Fragment being split.
        frag: FragmentId,
        /// Cut node.
        node: NodeId,
        /// Destination site for the new fragment.
        to_site: Option<SiteId>,
    },
    /// `mergeFragments(v)`: merge the sub-fragment referenced by the
    /// virtual node `node` back into `frag`. No-op if `node` is not
    /// virtual (the paper's definition).
    MergeFragments {
        /// Host fragment.
        frag: FragmentId,
        /// The virtual node to merge.
        node: NodeId,
    },
}

/// Errors from view maintenance.
#[derive(Debug)]
pub enum ViewError {
    /// The underlying fragmentation operation failed.
    Frag(FragError),
    /// The tree operation failed.
    Xml(parbox_xml::XmlError),
    /// `delNode` would orphan sub-fragments.
    WouldOrphanFragments(Vec<FragmentId>),
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::Frag(e) => write!(f, "{e}"),
            ViewError::Xml(e) => write!(f, "{e}"),
            ViewError::WouldOrphanFragments(fs) => {
                write!(f, "deleting this subtree would orphan fragments {fs:?}")
            }
        }
    }
}

impl std::error::Error for ViewError {}

/// An in-place data update expressed *against the fragment tree*: which
/// fragment changed, and the deepest surviving node whose subtree the
/// change lives under (the parent of an inserted or deleted subtree).
///
/// This is the unit the delta-repair maintenance path pushes through the
/// cached `bottomUp` evaluation
/// ([`IncrementalBottomUp::repair`](crate::eval::IncrementalBottomUp::repair)):
/// everything off the root-to-`anchor` path keeps its memoized vectors.
/// Only `insNode`/`delNode` produce a delta — `splitFragments` and
/// `mergeFragments` restructure the fragment tree itself and take the
/// legacy invalidate path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentDelta {
    /// The fragment whose tree changed in place.
    pub frag: FragmentId,
    /// Parent of the inserted/deleted subtree; the root-to-`anchor` path
    /// is the only part of the fragment whose triplet contribution can
    /// have changed.
    pub anchor: NodeId,
    /// Exact node-count change of the fragment (+1 for `insNode`, minus
    /// the removed subtree for `delNode`) — lets
    /// [`ForestStats`](parbox_frag::ForestStats) be maintained in `O(1)`
    /// instead of re-walking the fragment.
    pub nodes_delta: isize,
    /// Exact serialized-byte change of the fragment, measured at
    /// mutation time.
    pub bytes_delta: isize,
}

/// The structural effect of applying one [`Update`] to a forest.
#[derive(Debug, Clone, Default)]
pub struct UpdateEffect {
    /// Fragments whose trees changed in place (the update's host
    /// fragments).
    pub touched: Vec<FragmentId>,
    /// Fragments created by the update (`splitFragments`).
    pub added: Vec<FragmentId>,
    /// Fragments that ceased to exist (`mergeFragments`).
    pub removed: Vec<FragmentId>,
    /// For pure data updates: the change as a [`FragmentDelta`], enabling
    /// O(depth) repair of cached triplets instead of invalidation.
    pub delta: Option<FragmentDelta>,
}

impl UpdateEffect {
    /// Fragments whose `(V, CV, DV)` triplets are stale after the update:
    /// the touched hosts plus any newly created fragments.
    pub fn stale(&self) -> impl Iterator<Item = FragmentId> + '_ {
        self.touched.iter().chain(&self.added).copied()
    }

    /// True when the fragment tree itself changed shape (split/merge), so
    /// the source tree must be re-induced.
    pub fn restructured(&self) -> bool {
        !self.added.is_empty() || !self.removed.is_empty()
    }
}

/// Applies one update to the fragmented document, mutating the forest and
/// placement, and reports which fragments were touched, added or removed.
///
/// This is the shared mutation path of [`MaterializedView::apply`] and the
/// serving engine's update routing ([`crate::serve::Engine::apply`]): the
/// callers differ only in how they maintain their cached triplets
/// afterwards.
pub fn apply_update_to_forest(
    forest: &mut Forest,
    placement: &mut Placement,
    update: Update,
) -> Result<UpdateEffect, ViewError> {
    match update {
        Update::InsNode {
            frag,
            parent,
            label,
            text,
        } => {
            let tree = forest.tree_mut(frag);
            let new = match text {
                Some(t) => tree.add_text_child(parent, &label, &t),
                None => tree.add_child(parent, &label),
            };
            let bytes_delta = tree.node_byte_size(new) as isize;
            Ok(UpdateEffect {
                touched: vec![frag],
                delta: Some(FragmentDelta {
                    frag,
                    anchor: parent,
                    nodes_delta: 1,
                    bytes_delta,
                }),
                ..Default::default()
            })
        }
        Update::DelNode { frag, node } => {
            let tree = &forest.fragment(frag).tree;
            let orphans: Vec<FragmentId> = tree
                .virtual_nodes(node)
                .into_iter()
                .map(|(_, f)| f)
                .collect();
            if !orphans.is_empty() {
                return Err(ViewError::WouldOrphanFragments(orphans));
            }
            let anchor = tree.ancestors(node).next();
            let nodes_delta = -(tree.subtree_size(node) as isize);
            let bytes_delta = -(tree.byte_size(node) as isize);
            forest
                .tree_mut(frag)
                .remove_subtree(node)
                .map_err(ViewError::Xml)?;
            Ok(UpdateEffect {
                touched: vec![frag],
                delta: anchor.map(|anchor| FragmentDelta {
                    frag,
                    anchor,
                    nodes_delta,
                    bytes_delta,
                }),
                ..Default::default()
            })
        }
        Update::SplitFragments {
            frag,
            node,
            to_site,
        } => {
            let new = forest.split(frag, node).map_err(ViewError::Frag)?;
            let site = to_site.unwrap_or_else(|| placement.site_of(frag));
            placement.assign(new, site);
            // Splitting does not change any query answer, but both the
            // triplets and the source tree must be refreshed (paper,
            // Section 5).
            Ok(UpdateEffect {
                touched: vec![frag],
                added: vec![new],
                ..Default::default()
            })
        }
        Update::MergeFragments { frag, node } => {
            match forest.merge(frag, node).map_err(ViewError::Frag)? {
                Some(gone) => Ok(UpdateEffect {
                    touched: vec![frag],
                    removed: vec![gone],
                    ..Default::default()
                }),
                None => Ok(UpdateEffect::default()), // non-virtual node: no action
            }
        }
    }
}

/// [`apply_update_to_forest`] with incremental
/// [`ForestStats`](parbox_frag::ForestStats) maintenance: a pure data
/// update adjusts the touched fragment's figures in `O(1)` from the
/// exact deltas the mutation measured; restructuring updates re-measure
/// the touched fragments (`O(|F_j|)`) plus an `O(card(F) · depth)`
/// structural refresh. The maintained statistics stay equal to
/// [`ForestStats::compute`](parbox_frag::ForestStats::compute) from
/// scratch (asserted by the serve suite's proptests).
pub fn apply_update_tracked(
    forest: &mut Forest,
    placement: &mut Placement,
    stats: &mut parbox_frag::ForestStats,
    update: Update,
) -> Result<UpdateEffect, ViewError> {
    let effect = apply_update_to_forest(forest, placement, update)?;
    for &gone in &effect.removed {
        stats.remove_fragment(gone);
    }
    if let (Some(d), false) = (effect.delta, effect.restructured()) {
        // Pure data update: the mutation already measured its exact
        // node/byte deltas — adjust in O(1) instead of re-walking.
        stats.adjust_fragment(d.frag, d.nodes_delta, d.bytes_delta);
    } else {
        for f in effect.stale() {
            stats.refresh_fragment(forest, placement, f);
        }
    }
    if effect.restructured() {
        stats.refresh_structure(forest, placement);
    }
    Ok(effect)
}

/// Cost/result report of one maintenance step.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// The (possibly unchanged) view answer after the update.
    pub answer: bool,
    /// Whether the answer changed.
    pub answer_changed: bool,
    /// Fragments that were re-evaluated (always local to the update).
    pub reevaluated: Vec<FragmentId>,
    /// Visits / messages / work of the maintenance step.
    pub report: RunReport,
}

/// A materialized Boolean XPath view `M(q, T) = (S_T, ans)`, augmented
/// with per-fragment triplets for incremental maintenance.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    query: CompiledQuery,
    model: NetworkModel,
    /// Site holding the view state (the coordinator of the initial run).
    home: SiteId,
    triplets: HashMap<FragmentId, Triplet>,
    ans: bool,
}

impl MaterializedView {
    /// Materializes the view by running ParBoX once; the per-fragment
    /// triplets computed on the way are cached as the augmented state.
    pub fn materialize(
        forest: &Forest,
        placement: &Placement,
        model: NetworkModel,
        query: &CompiledQuery,
    ) -> (MaterializedView, EvalOutcome) {
        let cluster = Cluster::new(forest, placement, model);
        let outcome = parbox(&cluster, query);
        // Recompute triplets locally for the cache (the algorithm returns
        // only the answer; fragments are small enough to redo in-process).
        let mut triplets = HashMap::new();
        for f in forest.fragment_ids() {
            triplets.insert(f, bottom_up(&forest.fragment(f).tree, query).triplet);
        }
        let view = MaterializedView {
            query: query.clone(),
            model,
            home: cluster.coordinator(),
            triplets,
            ans: outcome.answer,
        };
        (view, outcome)
    }

    /// The cached answer.
    #[inline]
    pub fn answer(&self) -> bool {
        self.ans
    }

    /// The view's query.
    pub fn query(&self) -> &CompiledQuery {
        &self.query
    }

    /// Re-runs maintenance for `frag` against the *current* forest state
    /// without mutating it. This is the notification path when several
    /// views share one document (publish–subscribe): the publisher applies
    /// the update once through any view (or directly on the forest), then
    /// refreshes every other subscription for the changed fragment.
    pub fn refresh(
        &mut self,
        forest: &Forest,
        placement: &Placement,
        frag: FragmentId,
    ) -> UpdateReport {
        let mut report = RunReport::new();
        let wall = Instant::now();
        let site = placement.site_of(frag);
        report.record_visit(site);
        let start = Instant::now();
        let run = bottom_up(&forest.fragment(frag).tree, &self.query);
        report.record_compute(site, start.elapsed());
        report.record_work(site, run.work_units);
        if site != self.home {
            let bytes = triplet_dag_wire_size(&run.triplet);
            report.record_message(site, self.home, bytes, MessageKind::Triplet);
        }
        let old = self.triplets.insert(frag, run.triplet);
        let old_ans = self.ans;
        if old.as_ref() != self.triplets.get(&frag) {
            // Drop cached triplets of fragments that no longer exist and
            // add any new ones before re-solving.
            self.triplets.retain(|f, _| forest.is_live(*f));
            for f in forest.fragment_ids() {
                self.triplets
                    .entry(f)
                    .or_insert_with(|| bottom_up(&forest.fragment(f).tree, &self.query).triplet);
            }
            let st = SourceTree::new(forest, placement);
            let mut sys = EquationSystem::new();
            for (&f, t) in &self.triplets {
                sys.insert(f, t.clone());
            }
            let resolved = sys
                .solve(st.postorder())
                .expect("triplets cover all fragments");
            self.ans = resolved[&forest.root_fragment()].v[self.query.root() as usize];
        }
        report.elapsed_wall_s = wall.elapsed().as_secs_f64();
        report.elapsed_model_s = report.total_compute_s();
        UpdateReport {
            answer: self.ans,
            answer_changed: self.ans != old_ans,
            reevaluated: vec![frag],
            report,
        }
    }

    /// Applies one update, mutating the forest/placement and incrementally
    /// maintaining the view.
    pub fn apply(
        &mut self,
        forest: &mut Forest,
        placement: &mut Placement,
        update: Update,
    ) -> Result<UpdateReport, ViewError> {
        let mut report = RunReport::new();
        let wall = Instant::now();
        let effect = apply_update_to_forest(forest, placement, update)?;
        for gone in &effect.removed {
            self.triplets.remove(gone);
        }
        let reevaluated: Vec<FragmentId> = effect.stale().collect();

        // Localized recomputation: only the updated fragments' site works.
        let mut changed = false;
        for &frag in &reevaluated {
            let site = placement.site_of(frag);
            report.record_visit(site);
            let start = Instant::now();
            let run = bottom_up(&forest.fragment(frag).tree, &self.query);
            report.record_compute(site, start.elapsed());
            report.record_work(site, run.work_units);
            let bytes = triplet_dag_wire_size(&run.triplet);
            if site != self.home {
                // The update notification and the fresh triplet travel
                // between the fragment's site and the view's home site.
                report.record_message(
                    self.home,
                    site,
                    query_wire_size(&self.query),
                    MessageKind::Control,
                );
                report.record_message(site, self.home, bytes, MessageKind::Triplet);
            }
            let old = self.triplets.insert(frag, run.triplet);
            if old.as_ref() != self.triplets.get(&frag) {
                changed = true;
            }
        }

        let old_ans = self.ans;
        if changed {
            // Re-solve the (small) equation system at the home site.
            let st = SourceTree::new(forest, placement);
            let start = Instant::now();
            let mut sys = EquationSystem::new();
            for (&f, t) in &self.triplets {
                sys.insert(f, t.clone());
            }
            let resolved = sys
                .solve(st.postorder())
                .expect("triplets cover all fragments");
            report.record_compute(self.home, start.elapsed());
            report.record_work(self.home, (self.query.len() * forest.card()) as u64);
            self.ans = resolved[&forest.root_fragment()].v[self.query.root() as usize];
        }

        report.elapsed_wall_s = wall.elapsed().as_secs_f64();
        report.elapsed_model_s = report.total_compute_s()
            + self
                .model
                .shared_link_time(report.messages.iter().map(|m| m.bytes));
        Ok(UpdateReport {
            answer: self.ans,
            answer_changed: self.ans != old_ans,
            reevaluated,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_frag::strategies;
    use parbox_query::{compile, parse_query};
    use parbox_xml::Tree;

    fn setup(q: &str) -> (Forest, Placement, MaterializedView) {
        let tree = Tree::parse("<r><a><x>1</x><pad/></a><b><y>2</y><pad/></b><c><z>3</z></c></r>")
            .unwrap();
        let mut forest = Forest::from_tree(tree);
        let root = forest.root_fragment();
        strategies::star(&mut forest, root).unwrap();
        let placement = Placement::one_per_fragment(&forest);
        let compiled = compile(&parse_query(q).unwrap());
        let (view, _) =
            MaterializedView::materialize(&forest, &placement, NetworkModel::lan(), &compiled);
        // keep placement mutable for updates
        placement.validate(&forest).unwrap();
        (forest, placement, view)
    }

    fn node_of(forest: &Forest, frag: FragmentId, label: &str) -> NodeId {
        let t = &forest.fragment(frag).tree;
        t.descendants(t.root())
            .find(|&n| t.label_str(n) == label)
            .unwrap()
    }

    /// Re-evaluates from scratch as an oracle.
    fn oracle(forest: &Forest, placement: &Placement, q: &CompiledQuery) -> bool {
        let cluster = Cluster::new(forest, placement, NetworkModel::lan());
        parbox(&cluster, q).answer
    }

    #[test]
    fn ins_node_flips_answer() {
        let (mut forest, mut placement, mut view) = setup("[//goal]");
        assert!(!view.answer());
        let frag = FragmentId(2);
        let parent = node_of(&forest, frag, "b");
        let rep = view
            .apply(
                &mut forest,
                &mut placement,
                Update::InsNode {
                    frag,
                    parent,
                    label: "goal".into(),
                    text: None,
                },
            )
            .unwrap();
        assert!(rep.answer && rep.answer_changed);
        assert_eq!(rep.reevaluated, vec![frag]);
        assert_eq!(view.answer(), oracle(&forest, &placement, view.query()));
    }

    #[test]
    fn del_node_flips_answer_back() {
        let (mut forest, mut placement, mut view) = setup("[//y = \"2\"]");
        assert!(view.answer());
        let frag = FragmentId(2);
        let y = node_of(&forest, frag, "y");
        let rep = view
            .apply(
                &mut forest,
                &mut placement,
                Update::DelNode { frag, node: y },
            )
            .unwrap();
        assert!(!rep.answer && rep.answer_changed);
        assert_eq!(view.answer(), oracle(&forest, &placement, view.query()));
    }

    #[test]
    fn irrelevant_update_stops_after_triplet_comparison() {
        let (mut forest, mut placement, mut view) = setup("[//x = \"1\"]");
        assert!(view.answer());
        // Insert an unrelated node in fragment c.
        let frag = FragmentId(3);
        let parent = node_of(&forest, frag, "c");
        let rep = view
            .apply(
                &mut forest,
                &mut placement,
                Update::InsNode {
                    frag,
                    parent,
                    label: "noise".into(),
                    text: None,
                },
            )
            .unwrap();
        assert!(rep.answer && !rep.answer_changed);
        assert_eq!(view.answer(), oracle(&forest, &placement, view.query()));
    }

    #[test]
    fn maintenance_is_localized() {
        let (mut forest, mut placement, mut view) = setup("[//goal]");
        let frag = FragmentId(1);
        let parent = node_of(&forest, frag, "a");
        let rep = view
            .apply(
                &mut forest,
                &mut placement,
                Update::InsNode {
                    frag,
                    parent,
                    label: "noise".into(),
                    text: None,
                },
            )
            .unwrap();
        // Only the updated fragment's site was visited.
        let visited: Vec<_> = rep
            .report
            .sites()
            .filter(|(_, r)| r.visits > 0)
            .map(|(s, _)| s)
            .collect();
        assert_eq!(visited, vec![placement.site_of(frag)]);
    }

    #[test]
    fn split_preserves_answer_and_updates_state() {
        let (mut forest, mut placement, mut view) = setup("[//y = \"2\"]");
        assert!(view.answer());
        let frag = FragmentId(2);
        let y = node_of(&forest, frag, "y");
        let rep = view
            .apply(
                &mut forest,
                &mut placement,
                Update::SplitFragments {
                    frag,
                    node: y,
                    to_site: Some(SiteId(9)),
                },
            )
            .unwrap();
        assert!(rep.answer, "splitting must not change the answer");
        assert!(!rep.answer_changed);
        assert_eq!(forest.card(), 5);
        assert_eq!(view.answer(), oracle(&forest, &placement, view.query()));
        // Follow-up query still maintainable after the split.
        let new_frag = forest.fragment_ids().last().unwrap();
        assert_eq!(placement.site_of(new_frag), SiteId(9));
    }

    #[test]
    fn merge_preserves_answer() {
        let (mut forest, mut placement, mut view) = setup("[//y = \"2\"]");
        // Merge fragment 2 (subtree b) back into the root fragment.
        let root = forest.root_fragment();
        let t = &forest.fragment(root).tree;
        let vnode = t
            .virtual_nodes(t.root())
            .into_iter()
            .find(|&(_, f)| f == FragmentId(2))
            .unwrap()
            .0;
        let rep = view
            .apply(
                &mut forest,
                &mut placement,
                Update::MergeFragments {
                    frag: root,
                    node: vnode,
                },
            )
            .unwrap();
        assert!(rep.answer && !rep.answer_changed);
        assert_eq!(forest.card(), 3);
        assert_eq!(view.answer(), oracle(&forest, &placement, view.query()));
    }

    #[test]
    fn merge_non_virtual_is_noop() {
        let (mut forest, mut placement, mut view) = setup("[//y = \"2\"]");
        let frag = FragmentId(2);
        let y = node_of(&forest, frag, "y");
        let rep = view
            .apply(
                &mut forest,
                &mut placement,
                Update::MergeFragments { frag, node: y },
            )
            .unwrap();
        assert!(rep.reevaluated.is_empty());
        assert!(!rep.answer_changed);
    }

    #[test]
    fn del_node_refuses_to_orphan() {
        let (mut forest, mut placement, mut view) = setup("[//y = \"2\"]");
        // Split y out of fragment 2, then try to delete b's subtree that
        // contains the virtual node.
        let frag = FragmentId(2);
        let y = node_of(&forest, frag, "y");
        view.apply(
            &mut forest,
            &mut placement,
            Update::SplitFragments {
                frag,
                node: y,
                to_site: None,
            },
        )
        .unwrap();
        let b = {
            let t = &forest.fragment(frag).tree;
            t.root()
        };
        // Root of a fragment can't be deleted anyway; pick the subtree
        // holding the virtual node: b itself is the root, so target the
        // whole fragment root's child list via the virtual node's parent.
        let t = &forest.fragment(frag).tree;
        let v = t.virtual_nodes(b)[0].0;
        let err = view
            .apply(
                &mut forest,
                &mut placement,
                Update::DelNode { frag, node: v },
            )
            .unwrap_err();
        assert!(matches!(err, ViewError::WouldOrphanFragments(_)));
    }

    #[test]
    fn traffic_independent_of_update_and_data_size() {
        let (mut forest, mut placement, mut view) = setup("[//goal]");
        let frag = FragmentId(1);
        let parent = node_of(&forest, frag, "a");
        // Small update.
        let rep1 = view
            .apply(
                &mut forest,
                &mut placement,
                Update::InsNode {
                    frag,
                    parent,
                    label: "n1".into(),
                    text: None,
                },
            )
            .unwrap();
        // Large update: 100 inserts, then one more to measure.
        for i in 0..100 {
            view.apply(
                &mut forest,
                &mut placement,
                Update::InsNode {
                    frag,
                    parent,
                    label: format!("bulk{i}"),
                    text: Some("payload".into()),
                },
            )
            .unwrap();
        }
        let rep2 = view
            .apply(
                &mut forest,
                &mut placement,
                Update::InsNode {
                    frag,
                    parent,
                    label: "n2".into(),
                    text: None,
                },
            )
            .unwrap();
        assert_eq!(
            rep1.report.total_bytes(),
            rep2.report.total_bytes(),
            "maintenance traffic must not depend on |T|"
        );
    }

    #[test]
    fn tracked_updates_keep_stats_equal_to_recompute() {
        use parbox_frag::ForestStats;
        let (mut forest, mut placement, _) = setup("[//goal]");
        let mut stats = ForestStats::compute(&forest, &placement);
        let frag = FragmentId(2);
        let parent = node_of(&forest, frag, "b");
        apply_update_tracked(
            &mut forest,
            &mut placement,
            &mut stats,
            Update::InsNode {
                frag,
                parent,
                label: "goal".into(),
                text: None,
            },
        )
        .unwrap();
        assert_eq!(stats, ForestStats::compute(&forest, &placement));
        let y = node_of(&forest, frag, "y");
        apply_update_tracked(
            &mut forest,
            &mut placement,
            &mut stats,
            Update::SplitFragments {
                frag,
                node: y,
                to_site: Some(SiteId(5)),
            },
        )
        .unwrap();
        assert_eq!(stats, ForestStats::compute(&forest, &placement));
        let vnode = {
            let t = &forest.fragment(frag).tree;
            t.virtual_nodes(t.root())[0].0
        };
        apply_update_tracked(
            &mut forest,
            &mut placement,
            &mut stats,
            Update::MergeFragments { frag, node: vnode },
        )
        .unwrap();
        assert_eq!(stats, ForestStats::compute(&forest, &placement));
    }

    #[test]
    fn random_update_sequences_match_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (mut forest, mut placement, mut view) = setup("[//x = \"1\" or //goal]");
        let mut rng = StdRng::seed_from_u64(42);
        for step in 0..40 {
            let frags: Vec<FragmentId> = forest.fragment_ids().collect();
            let frag = frags[rng.random_range(0..frags.len())];
            let tree = &forest.fragment(frag).tree;
            let nodes: Vec<NodeId> = tree
                .descendants(tree.root())
                .filter(|&n| !tree.node(n).kind.is_virtual())
                .collect();
            let node = nodes[rng.random_range(0..nodes.len())];
            let update = match rng.random_range(0..3) {
                0 => Update::InsNode {
                    frag,
                    parent: node,
                    label: if rng.random_bool(0.2) {
                        "goal".into()
                    } else {
                        "pad".into()
                    },
                    text: None,
                },
                1 => {
                    if node == tree.root() || !tree.virtual_nodes(node).is_empty() {
                        continue;
                    }
                    Update::DelNode { frag, node }
                }
                _ => {
                    if node == tree.root() || tree.subtree_size(node) < 2 {
                        continue;
                    }
                    Update::SplitFragments {
                        frag,
                        node,
                        to_site: None,
                    }
                }
            };
            view.apply(&mut forest, &mut placement, update).unwrap();
            assert_eq!(
                view.answer(),
                oracle(&forest, &placement, view.query()),
                "divergence at step {step}"
            );
            forest.validate().unwrap();
        }
    }
}

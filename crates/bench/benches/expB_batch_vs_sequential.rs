//! Criterion bench for Experiment B: one batched round vs N sequential
//! ParBoX runs over the same queries, wall-clock.

// The experiment is named expB in the issue tracker; keep the bench name.
#![allow(non_snake_case)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbox_bench::{ft1, Scale};
use parbox_core::{parbox, run_batch};
use parbox_net::{Cluster, NetworkModel};
use parbox_query::{compile, compile_batch};
use parbox_xmark::batch_workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 96 * 1024,
        seed: 2006,
    };
    let (forest, placement) = ft1(scale, 4);
    let mut group = c.benchmark_group("expB");
    group.sample_size(10);
    for n in [8usize, 32] {
        let queries = batch_workload(n, scale.seed);
        let batch = compile_batch(&queries);
        let compiled: Vec<_> = queries.iter().map(compile).collect();
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| {
                let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
                black_box(run_batch(&cluster, &batch).answers.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
                let mut trues = 0usize;
                for q in &compiled {
                    if parbox(&cluster, q).answer {
                        trues += 1;
                    }
                }
                black_box(trues)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

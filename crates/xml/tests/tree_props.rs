//! Property-based tests of the XML store: serialization round-trips,
//! structural surgery preserves invariants, and iterators agree.

use parbox_xml::{FragmentId, NodeId, Tree};
use proptest::prelude::*;

const LABELS: [&str; 6] = ["a", "b", "item", "name", "x-y", "ns:tag"];
const TEXTS: [&str; 5] = ["", "hello", "two words", "<&\"'>", "päyload ≤ ∞"];

/// Builds a random tree from a preorder (depth, label, text, attr) script.
fn tree_strategy() -> impl Strategy<Value = Tree> {
    let row = (
        0usize..5,
        0usize..LABELS.len(),
        proptest::option::of(0usize..TEXTS.len()),
        proptest::bool::ANY,
    );
    proptest::collection::vec(row, 0..50).prop_map(|rows| {
        let mut tree = Tree::new("root");
        let mut stack: Vec<(usize, NodeId)> = vec![(0, tree.root())];
        for (depth, label, text, attr) in rows {
            let depth = depth + 1;
            while stack
                .last()
                .map(|&(d, _)| d + 1 > depth && d > 0)
                .unwrap_or(false)
            {
                stack.pop();
            }
            let parent = stack.last().expect("root kept").1;
            let node = tree.add_child(parent, LABELS[label]);
            if let Some(t) = text {
                if !TEXTS[t].is_empty() {
                    tree.set_text(node, TEXTS[t]);
                }
            }
            if attr {
                tree.set_attr(node, "k", TEXTS[(label + 1) % TEXTS.len()]);
            }
            stack.push((stack.last().unwrap().0 + 1, node));
        }
        tree
    })
}

proptest! {
    #[test]
    fn serialize_parse_round_trip(tree in tree_strategy()) {
        let xml = tree.to_xml();
        let back = Tree::parse(&xml).unwrap();
        prop_assert!(tree.structural_eq(&back), "xml: {xml}");
    }

    #[test]
    fn pretty_print_round_trip(tree in tree_strategy()) {
        let xml = parbox_xml::write_tree(&tree, &parbox_xml::WriteOptions { indent: true });
        let back = Tree::parse(&xml).unwrap();
        prop_assert!(tree.structural_eq(&back), "xml: {xml}");
    }

    #[test]
    fn traversals_are_consistent(tree in tree_strategy()) {
        let pre: Vec<NodeId> = tree.descendants(tree.root()).collect();
        let post: Vec<NodeId> = tree.postorder(tree.root()).collect();
        prop_assert_eq!(pre.len(), tree.len());
        prop_assert_eq!(post.len(), tree.len());
        // Same node sets.
        let mut a = pre.clone();
        let mut b = post.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // Postorder: every node after all of its descendants.
        let pos: std::collections::HashMap<NodeId, usize> =
            post.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &n in &post {
            for c in tree.children(n) {
                prop_assert!(pos[&c] < pos[&n]);
            }
        }
    }

    #[test]
    fn split_then_graft_is_identity(tree in tree_strategy(), pick in 0usize..1000) {
        let candidates: Vec<NodeId> =
            tree.descendants(tree.root()).skip(1).collect();
        if candidates.is_empty() {
            return Ok(());
        }
        let node = candidates[pick % candidates.len()];
        let before = tree.clone();
        let mut work = tree;
        let sub = work.split_off(node, FragmentId(9)).unwrap();
        work.validate().unwrap();
        sub.validate().unwrap();
        // The cut-out subtree matches the original subtree.
        prop_assert!(sub.structural_eq(&before.extract_subtree(node)));
        // Grafting it back restores the original.
        let v = work
            .virtual_nodes(work.root())
            .into_iter()
            .find(|&(_, f)| f == FragmentId(9))
            .unwrap()
            .0;
        work.graft(v, &sub).unwrap();
        prop_assert!(work.structural_eq(&before));
        work.validate().unwrap();
    }

    #[test]
    fn remove_subtree_shrinks_consistently(tree in tree_strategy(), pick in 0usize..1000) {
        let candidates: Vec<NodeId> =
            tree.descendants(tree.root()).skip(1).collect();
        if candidates.is_empty() {
            return Ok(());
        }
        let node = candidates[pick % candidates.len()];
        let removed = tree.subtree_size(node);
        let before = tree.len();
        let mut work = tree;
        work.remove_subtree(node).unwrap();
        prop_assert_eq!(work.len(), before - removed);
        work.validate().unwrap();
        // Removed ids are dead; re-removal errors.
        prop_assert!(!work.is_live(node));
        prop_assert!(work.remove_subtree(node).is_err());
    }

    #[test]
    fn byte_size_monotone_under_growth(tree in tree_strategy()) {
        let before = tree.byte_size(tree.root());
        let mut work = tree;
        let root = work.root();
        work.add_text_child(root, "extra", "some text payload");
        prop_assert!(work.byte_size(root) > before);
    }

    #[test]
    fn append_tree_preserves_both(host in tree_strategy(), guest in tree_strategy()) {
        let host_before = host.clone();
        let mut work = host;
        let root = work.root();
        let at = work.append_tree(root, &guest);
        work.validate().unwrap();
        prop_assert_eq!(work.len(), host_before.len() + guest.len());
        prop_assert!(work.extract_subtree(at).structural_eq(&guest));
    }
}

//! A small, dependency-free XML parser producing [`Tree`]s.
//!
//! Supported syntax: prolog (`<?xml …?>`), processing instructions,
//! comments, CDATA sections, elements with attributes, character data and
//! the five predefined entities plus numeric character references.
//!
//! Character data directly inside an element is concatenated, optionally
//! whitespace-trimmed, and stored as the element's `text` (the paper's
//! `text()` accessor). Elements named [`crate::writer::VIRTUAL_TAG`] with a
//! `ref="k"` attribute are decoded as virtual nodes referencing fragment
//! `F_k`, so fragments round-trip through serialization.

use crate::writer::VIRTUAL_TAG;
use crate::{FragmentId, Node, NodeKind, Tree, XmlError};

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Trim leading/trailing whitespace of text content (default true:
    /// pretty-printed documents round-trip to the same tree).
    pub trim_text: bool,
    /// Decode `VIRTUAL_TAG` elements into virtual nodes (default true).
    pub decode_virtual: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            trim_text: true,
            decode_virtual: true,
        }
    }
}

/// Parses an XML document into a [`Tree`].
pub fn parse_str(input: &str, opts: &ParseOptions) -> Result<Tree, XmlError> {
    Parser {
        input: input.as_bytes(),
        pos: 0,
        opts,
    }
    .parse_document()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    opts: &'a ParseOptions,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Tree, XmlError> {
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return Err(XmlError::NoRootElement);
        }
        let mut tree = Tree::new("#doc");
        let root_id = self.parse_element_tree(&mut tree)?;
        // Rebuild the tree rooted at the parsed element (drop the dummy).
        let tree = tree.extract_subtree(root_id);
        self.skip_misc()?;
        if self.pos < self.input.len() {
            return Err(XmlError::TrailingContent { at: self.pos });
        }
        Ok(tree)
    }

    /// Parses one element and its whole subtree iteratively (no recursion,
    /// so document depth is bounded only by memory). The cursor must be on
    /// `<`. The element is appended under the dummy root; its id is
    /// returned.
    fn parse_element_tree(&mut self, tree: &mut Tree) -> Result<crate::NodeId, XmlError> {
        // Stack of open elements: (node id, name, accumulated text).
        let mut open: Vec<(crate::NodeId, String, String)> = Vec::new();
        let root_parent = tree.root();
        loop {
            if open.is_empty() {
                // Expect exactly the first opening tag.
                let id = self.parse_open_tag(tree, root_parent, &mut open)?;
                if let Some(id) = id {
                    return Ok(id); // self-closing root element
                }
                continue;
            }
            match self.peek() {
                None => return Err(XmlError::UnexpectedEof { at: self.pos }),
                Some(b'<') => {
                    if self.starts_with(b"</") {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        self.skip_ws();
                        self.expect(b'>')?;
                        let (id, name, text) = open.pop().expect("checked non-empty");
                        if close != name {
                            return Err(XmlError::MismatchedTag {
                                open: name,
                                close,
                                at: self.pos,
                            });
                        }
                        self.store_text(tree, id, text);
                        self.finish_node(tree, id, &name)?;
                        if open.is_empty() {
                            return Ok(id);
                        }
                    } else if self.starts_with(b"<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with(b"<![CDATA[") {
                        let data = self.parse_cdata()?;
                        open.last_mut()
                            .expect("checked non-empty")
                            .2
                            .push_str(&data);
                    } else if self.starts_with(b"<?") {
                        self.skip_pi()?;
                    } else {
                        let parent = open.last().expect("checked non-empty").0;
                        if let Some(_leaf) = self.parse_open_tag(tree, parent, &mut open)? {
                            // Self-closing child: nothing left open for it.
                        }
                    }
                }
                Some(_) => {
                    let data = self.parse_char_data()?;
                    open.last_mut()
                        .expect("checked non-empty")
                        .2
                        .push_str(&data);
                }
            }
        }
    }

    /// Parses `<name attr=… >` or `<name …/>` with the cursor on `<`.
    /// Self-closing elements are finished immediately and returned;
    /// otherwise the element is pushed onto `open` and `None` is returned.
    fn parse_open_tag(
        &mut self,
        tree: &mut Tree,
        parent: crate::NodeId,
        open: &mut Vec<(crate::NodeId, String, String)>,
    ) -> Result<Option<crate::NodeId>, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let id = tree.add_child(parent, &name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    self.finish_node(tree, id, &name)?;
                    return Ok(Some(id));
                }
                Some(b'>') => {
                    self.pos += 1;
                    open.push((id, name, String::new()));
                    return Ok(None);
                }
                Some(c) if is_name_start(c) => {
                    let (k, v) = self.parse_attribute()?;
                    tree.set_attr(id, &k, &v);
                }
                Some(c) => {
                    return Err(XmlError::UnexpectedChar {
                        found: c as char,
                        expected: "attribute, '/>' or '>'",
                        at: self.pos,
                    })
                }
                None => return Err(XmlError::UnexpectedEof { at: self.pos }),
            }
        }
    }

    /// Applies trimming and stores non-empty text on the node.
    fn store_text(&self, tree: &mut Tree, id: crate::NodeId, text: String) {
        let value = if self.opts.trim_text {
            text.trim()
        } else {
            &text
        };
        if !value.is_empty() {
            tree.set_text(id, value);
        }
    }

    /// Decodes virtual-node elements after the subtree has been parsed.
    fn finish_node(&self, tree: &mut Tree, id: crate::NodeId, name: &str) -> Result<(), XmlError> {
        if self.opts.decode_virtual && name == VIRTUAL_TAG {
            let value = tree.node(id).attr("ref").unwrap_or("").to_string();
            let num: u32 = value
                .strip_prefix('F')
                .unwrap_or(&value)
                .parse()
                .map_err(|_| XmlError::BadVirtualRef {
                    value: value.clone(),
                    at: self.pos,
                })?;
            let node = tree.node_mut(id);
            node.kind = NodeKind::Virtual(FragmentId(num));
            node.attrs.retain(|(k, _)| k.as_ref() != "ref");
        }
        Ok(())
    }

    fn parse_attribute(&mut self) -> Result<(String, String), XmlError> {
        let name = self.parse_name()?;
        self.skip_ws();
        self.expect(b'=')?;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(c) => {
                return Err(XmlError::UnexpectedChar {
                    found: c as char,
                    expected: "a quoted attribute value",
                    at: self.pos,
                })
            }
            None => return Err(XmlError::UnexpectedEof { at: self.pos }),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek() != Some(quote) {
            if self.pos >= self.input.len() {
                return Err(XmlError::UnexpectedEof { at: self.pos });
            }
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos]).expect("utf8 input");
        self.pos += 1;
        Ok((name, decode_entities(raw, start)?))
    }

    fn parse_char_data(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos]).expect("utf8 input");
        decode_entities(raw, start)
    }

    fn parse_cdata(&mut self) -> Result<String, XmlError> {
        self.pos += b"<![CDATA[".len();
        let start = self.pos;
        loop {
            if self.pos + 3 > self.input.len() {
                return Err(XmlError::UnexpectedEof { at: self.pos });
            }
            if &self.input[self.pos..self.pos + 3] == b"]]>" {
                let raw = std::str::from_utf8(&self.input[start..self.pos]).expect("utf8 input");
                self.pos += 3;
                return Ok(raw.to_string());
            }
            self.pos += 1;
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => self.pos += 1,
            Some(c) => {
                return Err(XmlError::UnexpectedChar {
                    found: c as char,
                    expected: "a tag name",
                    at: self.pos,
                })
            }
            None => return Err(XmlError::UnexpectedEof { at: self.pos }),
        }
        while let Some(c) = self.peek() {
            if is_name_char(c) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("utf8 input")
            .to_string())
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with(b"<?") {
                self.skip_pi()?;
            } else if self.starts_with(b"<!--") {
                self.skip_comment()?;
            } else if self.starts_with(b"<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), XmlError> {
        self.pos += 2;
        while !self.starts_with(b"?>") {
            if self.pos >= self.input.len() {
                return Err(XmlError::UnexpectedEof { at: self.pos });
            }
            self.pos += 1;
        }
        self.pos += 2;
        Ok(())
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        self.pos += 4;
        while !self.starts_with(b"-->") {
            if self.pos >= self.input.len() {
                return Err(XmlError::UnexpectedEof { at: self.pos });
            }
            self.pos += 1;
        }
        self.pos += 3;
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // Skip to the matching '>' (internal subsets with brackets handled
        // by depth counting).
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(XmlError::UnexpectedEof { at: self.pos })
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        match self.peek() {
            Some(got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => Err(XmlError::UnexpectedChar {
                found: got as char,
                expected: "a specific delimiter",
                at: self.pos,
            }),
            None => Err(XmlError::UnexpectedEof { at: self.pos }),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }
}

#[inline]
fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':' || c >= 0x80
}

#[inline]
fn is_name_char(c: u8) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == b'-' || c == b'.'
}

/// Decodes the predefined entities and numeric character references.
pub(crate) fn decode_entities(raw: &str, offset: usize) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or(XmlError::UnknownEntity {
            name: after.chars().take(8).collect(),
            at: offset + amp,
        })?;
        let name = &after[..semi];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16).ok();
                match cp.and_then(char::from_u32) {
                    Some(c) => out.push(c),
                    None => {
                        return Err(XmlError::UnknownEntity {
                            name: name.to_string(),
                            at: offset + amp,
                        })
                    }
                }
            }
            _ if name.starts_with('#') => {
                let cp = name[1..].parse::<u32>().ok();
                match cp.and_then(char::from_u32) {
                    Some(c) => out.push(c),
                    None => {
                        return Err(XmlError::UnknownEntity {
                            name: name.to_string(),
                            at: offset + amp,
                        })
                    }
                }
            }
            _ => {
                return Err(XmlError::UnknownEntity {
                    name: name.to_string(),
                    at: offset + amp,
                })
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

// `Node` is referenced by the doc comment only; silence unused import in
// non-doc builds.
#[allow(unused)]
fn _doc_refs(_: Node) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    #[test]
    fn parses_minimal_document() {
        let t = Tree::parse("<a/>").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.label_str(t.root()), "a");
    }

    #[test]
    fn parses_nested_elements_and_text() {
        let t = Tree::parse("<a><b>hello</b><c><d>world</d></c></a>").unwrap();
        assert_eq!(t.len(), 4);
        let b = t.children(t.root()).next().unwrap();
        assert_eq!(t.node(b).text.as_deref(), Some("hello"));
    }

    #[test]
    fn parses_attributes() {
        let t = Tree::parse(r#"<a x="1" y='two &amp; three'/>"#).unwrap();
        let r = t.root();
        assert_eq!(t.node(r).attr("x"), Some("1"));
        assert_eq!(t.node(r).attr("y"), Some("two & three"));
    }

    #[test]
    fn skips_prolog_comments_and_pis() {
        let t = Tree::parse(
            "<?xml version=\"1.0\"?><!-- hi --><!DOCTYPE a><a><?pi data?><!-- in --><b/></a>",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn decodes_entities_in_text() {
        let t = Tree::parse("<a>&lt;tag&gt; &#65;&#x42;</a>").unwrap();
        assert_eq!(t.node(t.root()).text.as_deref(), Some("<tag> AB"));
    }

    #[test]
    fn cdata_is_literal() {
        let t = Tree::parse("<a><![CDATA[<not-a-tag> & stuff]]></a>").unwrap();
        assert_eq!(
            t.node(t.root()).text.as_deref(),
            Some("<not-a-tag> & stuff")
        );
    }

    #[test]
    fn mismatched_tags_error() {
        let err = Tree::parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }));
    }

    #[test]
    fn trailing_content_errors() {
        let err = Tree::parse("<a/><b/>").unwrap_err();
        assert!(matches!(err, XmlError::TrailingContent { .. }));
    }

    #[test]
    fn unknown_entity_errors() {
        let err = Tree::parse("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err, XmlError::UnknownEntity { .. }));
    }

    #[test]
    fn truncated_document_errors() {
        assert!(matches!(
            Tree::parse("<a><b>").unwrap_err(),
            XmlError::UnexpectedEof { .. }
        ));
        assert!(matches!(
            Tree::parse("").unwrap_err(),
            XmlError::NoRootElement
        ));
    }

    #[test]
    fn virtual_nodes_decode() {
        let t = Tree::parse(r#"<a><parbox:virtual ref="3"/></a>"#).unwrap();
        let v = t.children(t.root()).next().unwrap();
        assert_eq!(t.node(v).kind, NodeKind::Virtual(FragmentId(3)));
    }

    #[test]
    fn virtual_decode_can_be_disabled() {
        let opts = ParseOptions {
            decode_virtual: false,
            ..Default::default()
        };
        let t = parse_str(r#"<a><parbox:virtual ref="3"/></a>"#, &opts).unwrap();
        let v = t.children(t.root()).next().unwrap();
        assert_eq!(t.node(v).kind, NodeKind::Element);
    }

    #[test]
    fn bad_virtual_ref_errors() {
        let err = Tree::parse(r#"<a><parbox:virtual ref="xyz"/></a>"#).unwrap_err();
        assert!(matches!(err, XmlError::BadVirtualRef { .. }));
    }

    #[test]
    fn whitespace_only_text_is_dropped_when_trimming() {
        let t = Tree::parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(t.node(t.root()).text, None);
    }

    #[test]
    fn untrimmed_mode_preserves_whitespace() {
        let opts = ParseOptions {
            trim_text: false,
            ..Default::default()
        };
        let t = parse_str("<a> x </a>", &opts).unwrap();
        assert_eq!(t.node(t.root()).text.as_deref(), Some(" x "));
    }
}

//! Binary wire encodings for formulas and triplets.
//!
//! The network layer ships triplets between sites; encoding them gives
//! honest byte counts for the paper's communication-cost measurements
//! (`O(|q| · card(F))` per query). Two formats exist:
//!
//! * the **tree format** ([`encode_formula`] / [`encode_triplet`] /
//!   [`encode_site_envelope`]) — the seed's compact tagged preorder
//!   serialization, kept as the baseline the `expD` experiment compares
//!   against. Shared subformulas are re-encoded once per occurrence.
//! * the **DAG format** ([`encode_triplet_dag`] /
//!   [`encode_site_envelope_dag`]) — a varint-compressed *node table*
//!   (children before parents, operands as table indices) followed by
//!   per-entry root indices. Shared subformulas are encoded **once**, and
//!   an envelope shares one table across every triplet it carries; this
//!   is the format the production algorithms account traffic in.
//!
//! All encoders and decoders are iterative (explicit work stacks over
//! arena snapshots), so a deep `Not`/`And` chain cannot overflow the call
//! stack in either direction.

use crate::arena::DagNode;
use crate::formula::Formula;
use crate::triplet::{Triplet, TripletDelta};
use crate::var::{Var, VecKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parbox_xml::FragmentId;
use std::fmt;

const TAG_FALSE: u8 = 0;
const TAG_TRUE: u8 = 1;
const TAG_VAR: u8 = 2;
const TAG_NOT: u8 = 3;
const TAG_AND: u8 = 4;
const TAG_OR: u8 = 5;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended mid-value.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// An n-ary node with fewer than two operands.
    BadArity(u32),
    /// A DAG reference pointing at itself, forward, or out of the table —
    /// or a varint wider than the format allows.
    BadIndex(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated formula encoding"),
            DecodeError::BadTag(t) => write!(f, "unknown formula tag {t}"),
            DecodeError::BadArity(n) => write!(f, "n-ary formula with arity {n}"),
            DecodeError::BadIndex(i) => write!(f, "invalid DAG node reference {i}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Never pre-allocate more than this many elements from an
/// attacker-controlled count; the vectors still grow to the real size.
const MAX_PREALLOC: usize = 1024;

// ---------------------------------------------------------------------------
// Tree format (seed-compatible bytes, iterative traversal)
// ---------------------------------------------------------------------------

/// Encodes a formula into `buf` (tree format: tagged preorder, shared
/// subformulas expanded per occurrence).
pub fn encode_formula(f: &Formula, buf: &mut BytesMut) {
    let dag = Formula::snapshot_many(std::slice::from_ref(f));
    encode_tree_from(&dag, dag.roots[0], buf);
}

fn encode_var(v: &Var, buf: &mut BytesMut) {
    buf.put_u8(TAG_VAR);
    buf.put_u32_le(v.frag.0);
    buf.put_u8(match v.vec {
        VecKind::V => 0,
        VecKind::CV => 1,
        VecKind::DV => 2,
    });
    buf.put_u32_le(v.sub);
}

fn encode_tree_from(dag: &crate::arena::Dag, root: u32, buf: &mut BytesMut) {
    let mut stack = vec![root];
    while let Some(ix) = stack.pop() {
        match &dag.nodes[ix as usize] {
            DagNode::Const(false) => buf.put_u8(TAG_FALSE),
            DagNode::Const(true) => buf.put_u8(TAG_TRUE),
            DagNode::Var(v) => encode_var(v, buf),
            DagNode::Not(x) => {
                buf.put_u8(TAG_NOT);
                stack.push(*x);
            }
            DagNode::And(r) | DagNode::Or(r) => {
                let conj = matches!(&dag.nodes[ix as usize], DagNode::And(_));
                buf.put_u8(if conj { TAG_AND } else { TAG_OR });
                let ops = dag.ops(r);
                buf.put_u32_le(ops.len() as u32);
                for &x in ops.iter().rev() {
                    stack.push(x);
                }
            }
        }
    }
}

fn decode_var(buf: &mut Bytes) -> Result<Formula, DecodeError> {
    if buf.remaining() < 9 {
        return Err(DecodeError::Truncated);
    }
    let frag = FragmentId(buf.get_u32_le());
    let vec = match buf.get_u8() {
        0 => VecKind::V,
        1 => VecKind::CV,
        2 => VecKind::DV,
        t => return Err(DecodeError::BadTag(t)),
    };
    let sub = buf.get_u32_le();
    Ok(Formula::var(Var::new(frag, vec, sub)))
}

/// Decodes one formula from `buf` (tree format). Iterative: an explicit
/// continuation stack replaces recursion.
pub fn decode_formula(buf: &mut Bytes) -> Result<Formula, DecodeError> {
    enum Pending {
        Not,
        Nary {
            conj: bool,
            remaining: u32,
            ops: Vec<Formula>,
        },
    }
    let mut pending: Vec<Pending> = Vec::new();
    loop {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let mut value: Option<Formula> = match buf.get_u8() {
            TAG_FALSE => Some(Formula::FALSE),
            TAG_TRUE => Some(Formula::TRUE),
            TAG_VAR => Some(decode_var(buf)?),
            TAG_NOT => {
                pending.push(Pending::Not);
                None
            }
            tag @ (TAG_AND | TAG_OR) => {
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let n = buf.get_u32_le();
                if n < 2 {
                    return Err(DecodeError::BadArity(n));
                }
                pending.push(Pending::Nary {
                    conj: tag == TAG_AND,
                    remaining: n,
                    ops: Vec::with_capacity((n as usize).min(MAX_PREALLOC)),
                });
                None
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        while let Some(v) = value.take() {
            match pending.last_mut() {
                None => return Ok(v),
                Some(Pending::Not) => {
                    pending.pop();
                    value = Some(v.not());
                }
                Some(Pending::Nary { remaining, ops, .. }) => {
                    ops.push(v);
                    *remaining -= 1;
                    if *remaining == 0 {
                        let Some(Pending::Nary { conj, ops, .. }) = pending.pop() else {
                            unreachable!("just matched")
                        };
                        value = Some(if conj {
                            Formula::all(ops)
                        } else {
                            Formula::any(ops)
                        });
                    }
                }
            }
        }
    }
}

/// Encodes a triplet (tree format: three length-prefixed vectors).
pub fn encode_triplet(t: &Triplet, buf: &mut BytesMut) {
    for vec in [&t.v, &t.cv, &t.dv] {
        buf.put_u32_le(vec.len() as u32);
        for f in vec {
            encode_formula(f, buf);
        }
    }
}

/// Decodes a triplet (tree format).
pub fn decode_triplet(buf: &mut Bytes) -> Result<Triplet, DecodeError> {
    let mut vecs = Vec::with_capacity(3);
    for _ in 0..3 {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n = buf.get_u32_le();
        let mut v = Vec::with_capacity((n as usize).min(MAX_PREALLOC));
        for _ in 0..n {
            v.push(decode_formula(buf)?);
        }
        vecs.push(v);
    }
    let dv = vecs.pop().expect("three vectors");
    let cv = vecs.pop().expect("two vectors");
    let v = vecs.pop().expect("one vector");
    Ok(Triplet { v, cv, dv })
}

/// Exact wire size in bytes of a triplet in the **tree format** — kept as
/// the baseline figure; production accounting uses
/// [`triplet_dag_wire_size`].
pub fn triplet_wire_size(t: &Triplet) -> usize {
    let mut buf = BytesMut::new();
    encode_triplet(t, &mut buf);
    buf.len()
}

/// Encodes a *site envelope* in the tree format: every
/// `(fragment, triplet)` pair one site computed for a query batch, packed
/// into a single message (count followed by `fragment id + triplet`
/// records).
pub fn encode_site_envelope(entries: &[(FragmentId, &Triplet)], buf: &mut BytesMut) {
    buf.put_u32_le(entries.len() as u32);
    for (frag, t) in entries {
        buf.put_u32_le(frag.0);
        encode_triplet(t, buf);
    }
}

/// Decodes a tree-format site envelope back into `(fragment, triplet)`
/// pairs.
pub fn decode_site_envelope(buf: &mut Bytes) -> Result<Vec<(FragmentId, Triplet)>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le();
    let mut entries = Vec::with_capacity((n as usize).min(MAX_PREALLOC));
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let frag = FragmentId(buf.get_u32_le());
        entries.push((frag, decode_triplet(buf)?));
    }
    Ok(entries)
}

/// Exact wire size in bytes of a tree-format site envelope:
/// `4 + Σ (4 + triplet_wire_size)`.
pub fn site_envelope_wire_size(entries: &[(FragmentId, &Triplet)]) -> usize {
    4 + entries
        .iter()
        .map(|(_, t)| 4 + triplet_wire_size(t))
        .sum::<usize>()
}

// ---------------------------------------------------------------------------
// DAG format (node table + root indices, varint-compressed)
// ---------------------------------------------------------------------------

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut out: u64 = 0;
    for shift in (0..64).step_by(7) {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let byte = buf.get_u8();
        // The 10th byte holds only bit 63: anything above is overflow,
        // not silently droppable (a malformed stream must not decode to
        // a small, plausible value).
        if shift == 63 && byte & !0x01 != 0 {
            return Err(DecodeError::BadIndex(out));
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
    }
    Err(DecodeError::BadIndex(out))
}

/// Writes the DAG node table: varint node count, then one record per
/// node with operand references as varint indices of strictly earlier
/// table entries.
fn encode_dag_nodes(dag: &crate::arena::Dag, buf: &mut BytesMut) {
    put_varint(buf, dag.nodes.len() as u64);
    for node in &dag.nodes {
        match node {
            DagNode::Const(false) => buf.put_u8(TAG_FALSE),
            DagNode::Const(true) => buf.put_u8(TAG_TRUE),
            DagNode::Var(v) => {
                buf.put_u8(TAG_VAR);
                put_varint(buf, u64::from(v.frag.0));
                buf.put_u8(match v.vec {
                    VecKind::V => 0,
                    VecKind::CV => 1,
                    VecKind::DV => 2,
                });
                put_varint(buf, u64::from(v.sub));
            }
            DagNode::Not(x) => {
                buf.put_u8(TAG_NOT);
                put_varint(buf, u64::from(*x));
            }
            DagNode::And(r) | DagNode::Or(r) => {
                buf.put_u8(if matches!(node, DagNode::And(_)) {
                    TAG_AND
                } else {
                    TAG_OR
                });
                let ops = dag.ops(r);
                put_varint(buf, ops.len() as u64);
                for &x in ops {
                    put_varint(buf, u64::from(x));
                }
            }
        }
    }
}

/// Reads a DAG node table back into interned formulas, one per table
/// entry. References must point strictly backwards (acyclic by
/// construction); anything else is a [`DecodeError::BadIndex`].
fn decode_dag_nodes(buf: &mut Bytes) -> Result<Vec<Formula>, DecodeError> {
    let n = get_varint(buf)? as usize;
    let mut table: Vec<Formula> = Vec::with_capacity(n.min(MAX_PREALLOC));
    for i in 0..n {
        let back_ref = |ix: u64| -> Result<usize, DecodeError> {
            if (ix as usize) < i {
                Ok(ix as usize)
            } else {
                Err(DecodeError::BadIndex(ix))
            }
        };
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let f = match buf.get_u8() {
            TAG_FALSE => Formula::FALSE,
            TAG_TRUE => Formula::TRUE,
            TAG_VAR => {
                let frag = FragmentId(
                    u32::try_from(get_varint(buf)?).map_err(|_| DecodeError::Truncated)?,
                );
                if buf.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                let vec = match buf.get_u8() {
                    0 => VecKind::V,
                    1 => VecKind::CV,
                    2 => VecKind::DV,
                    t => return Err(DecodeError::BadTag(t)),
                };
                let sub = u32::try_from(get_varint(buf)?).map_err(|_| DecodeError::Truncated)?;
                Formula::var(Var::new(frag, vec, sub))
            }
            TAG_NOT => table[back_ref(get_varint(buf)?)?].not(),
            tag @ (TAG_AND | TAG_OR) => {
                let arity = get_varint(buf)?;
                if arity < 2 {
                    return Err(DecodeError::BadArity(arity as u32));
                }
                let mut ops = Vec::with_capacity((arity as usize).min(MAX_PREALLOC));
                for _ in 0..arity {
                    ops.push(table[back_ref(get_varint(buf)?)?]);
                }
                if tag == TAG_AND {
                    Formula::all(ops)
                } else {
                    Formula::any(ops)
                }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        table.push(f);
    }
    Ok(table)
}

fn encode_root_rows(dag: &crate::arena::Dag, rows: &[usize], buf: &mut BytesMut) {
    // `dag.roots` holds one local index per requested root formula, in
    // request order; `rows` gives the length of each row to emit.
    let mut next = 0usize;
    for &len in rows {
        put_varint(buf, len as u64);
        for _ in 0..len {
            put_varint(buf, u64::from(dag.roots[next]));
            next += 1;
        }
    }
    debug_assert_eq!(next, dag.roots.len());
}

fn decode_root_row(buf: &mut Bytes, table: &[Formula]) -> Result<Vec<Formula>, DecodeError> {
    let len = get_varint(buf)? as usize;
    let mut out = Vec::with_capacity(len.min(MAX_PREALLOC));
    for _ in 0..len {
        let ix = get_varint(buf)?;
        let f = table.get(ix as usize).ok_or(DecodeError::BadIndex(ix))?;
        out.push(*f);
    }
    Ok(out)
}

/// Encodes one formula in the DAG format (node table + root index).
pub fn encode_formula_dag(f: &Formula, buf: &mut BytesMut) {
    let dag = Formula::snapshot_many(std::slice::from_ref(f));
    encode_dag_nodes(&dag, buf);
    put_varint(buf, u64::from(dag.roots[0]));
}

/// Decodes one DAG-format formula.
pub fn decode_formula_dag(buf: &mut Bytes) -> Result<Formula, DecodeError> {
    let table = decode_dag_nodes(buf)?;
    let ix = get_varint(buf)?;
    table
        .get(ix as usize)
        .copied()
        .ok_or(DecodeError::BadIndex(ix))
}

/// Encodes a triplet in the DAG format: one node table shared by all
/// `3·|QList|` entries, then the three root-index vectors. Subformulas
/// shared across entries — the common case, since `DV` accumulates `V` —
/// are encoded once.
pub fn encode_triplet_dag(t: &Triplet, buf: &mut BytesMut) {
    let roots: Vec<Formula> = t.v.iter().chain(&t.cv).chain(&t.dv).copied().collect();
    let dag = Formula::snapshot_many(&roots);
    encode_dag_nodes(&dag, buf);
    encode_root_rows(&dag, &[t.v.len(), t.cv.len(), t.dv.len()], buf);
}

/// Decodes a DAG-format triplet.
pub fn decode_triplet_dag(buf: &mut Bytes) -> Result<Triplet, DecodeError> {
    let table = decode_dag_nodes(buf)?;
    let v = decode_root_row(buf, &table)?;
    let cv = decode_root_row(buf, &table)?;
    let dv = decode_root_row(buf, &table)?;
    Ok(Triplet { v, cv, dv })
}

/// Exact wire size in bytes of a DAG-format triplet — the unit in which
/// the production algorithms account data-plane traffic.
pub fn triplet_dag_wire_size(t: &Triplet) -> usize {
    let mut buf = BytesMut::new();
    encode_triplet_dag(t, &mut buf);
    buf.len()
}

/// Encodes a [`TripletDelta`] in the DAG format: varint width and record
/// count, one node table shared by every changed formula, then per
/// record the vector tag, entry index, and root table index. An update
/// that perturbs `k` of the `3·|QList|` entries costs `O(k)` on the
/// wire instead of a full triplet re-ship.
pub fn encode_triplet_delta_dag(d: &TripletDelta, buf: &mut BytesMut) {
    let roots: Vec<Formula> = d.changed.iter().map(|&(_, _, f)| f).collect();
    let dag = Formula::snapshot_many(&roots);
    put_varint(buf, u64::from(d.width));
    put_varint(buf, d.changed.len() as u64);
    encode_dag_nodes(&dag, buf);
    for (rec, &(kind, ix, _)) in d.changed.iter().enumerate() {
        buf.put_u8(match kind {
            VecKind::V => 0,
            VecKind::CV => 1,
            VecKind::DV => 2,
        });
        put_varint(buf, u64::from(ix));
        put_varint(buf, u64::from(dag.roots[rec]));
    }
}

/// Decodes a DAG-format triplet delta. Entry indices are validated
/// against the declared width so [`TripletDelta::apply`] cannot panic on
/// decoded input.
pub fn decode_triplet_delta_dag(buf: &mut Bytes) -> Result<TripletDelta, DecodeError> {
    let width = u32::try_from(get_varint(buf)?).map_err(|_| DecodeError::Truncated)?;
    let n = get_varint(buf)? as usize;
    let table = decode_dag_nodes(buf)?;
    let mut changed = Vec::with_capacity(n.min(MAX_PREALLOC));
    for _ in 0..n {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let kind = match buf.get_u8() {
            0 => VecKind::V,
            1 => VecKind::CV,
            2 => VecKind::DV,
            t => return Err(DecodeError::BadTag(t)),
        };
        let ix = get_varint(buf)?;
        if ix >= u64::from(width) {
            return Err(DecodeError::BadIndex(ix));
        }
        let root = get_varint(buf)?;
        let f = table
            .get(root as usize)
            .copied()
            .ok_or(DecodeError::BadIndex(root))?;
        changed.push((kind, ix as u32, f));
    }
    Ok(TripletDelta { width, changed })
}

/// Exact wire size in bytes of a DAG-format triplet delta — what the
/// serving engine accounts for a repaired cache entry instead of
/// [`triplet_dag_wire_size`].
pub fn triplet_delta_dag_wire_size(d: &TripletDelta) -> usize {
    let mut buf = BytesMut::new();
    encode_triplet_delta_dag(d, &mut buf);
    buf.len()
}

/// Encodes a site envelope in the DAG format: **one node table for the
/// whole envelope**, shared across every fragment's triplet, then per
/// entry the fragment id and its three root-index vectors.
pub fn encode_site_envelope_dag(entries: &[(FragmentId, &Triplet)], buf: &mut BytesMut) {
    let roots: Vec<Formula> = entries
        .iter()
        .flat_map(|(_, t)| t.v.iter().chain(&t.cv).chain(&t.dv).copied())
        .collect();
    let dag = Formula::snapshot_many(&roots);
    put_varint(buf, entries.len() as u64);
    encode_dag_nodes(&dag, buf);
    // `dag.roots` holds one index per entry formula, in request order.
    let mut next = 0usize;
    for (frag, t) in entries {
        put_varint(buf, u64::from(frag.0));
        for len in [t.v.len(), t.cv.len(), t.dv.len()] {
            put_varint(buf, len as u64);
            for _ in 0..len {
                put_varint(buf, u64::from(dag.roots[next]));
                next += 1;
            }
        }
    }
    debug_assert_eq!(next, dag.roots.len());
}

/// Decodes a DAG-format site envelope.
pub fn decode_site_envelope_dag(
    buf: &mut Bytes,
) -> Result<Vec<(FragmentId, Triplet)>, DecodeError> {
    let n = get_varint(buf)? as usize;
    let table = decode_dag_nodes(buf)?;
    let mut entries = Vec::with_capacity(n.min(MAX_PREALLOC));
    for _ in 0..n {
        let frag = FragmentId(u32::try_from(get_varint(buf)?).map_err(|_| DecodeError::Truncated)?);
        let v = decode_root_row(buf, &table)?;
        let cv = decode_root_row(buf, &table)?;
        let dv = decode_root_row(buf, &table)?;
        entries.push((frag, Triplet { v, cv, dv }));
    }
    Ok(entries)
}

/// Exact wire size in bytes of a DAG-format site envelope.
pub fn site_envelope_dag_wire_size(entries: &[(FragmentId, &Triplet)]) -> usize {
    let mut buf = BytesMut::new();
    encode_site_envelope_dag(entries, &mut buf);
    buf.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(f: &Formula) -> Formula {
        let mut buf = BytesMut::new();
        encode_formula(f, &mut buf);
        let mut bytes = buf.freeze();
        let out = decode_formula(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0, "trailing bytes");
        out
    }

    fn rt_dag(f: &Formula) -> Formula {
        let mut buf = BytesMut::new();
        encode_formula_dag(f, &mut buf);
        let mut bytes = buf.freeze();
        let out = decode_formula_dag(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0, "trailing bytes");
        out
    }

    fn var(frag: u32, vec: VecKind, sub: u32) -> Formula {
        Formula::var(Var::new(FragmentId(frag), vec, sub))
    }

    #[test]
    fn round_trip_constants_and_vars() {
        for f in [Formula::TRUE, Formula::FALSE, var(7, VecKind::CV, 3)] {
            assert_eq!(rt(&f), f);
            assert_eq!(rt_dag(&f), f);
        }
    }

    #[test]
    fn round_trip_nested() {
        let a = var(1, VecKind::V, 0);
        let b = var(2, VecKind::DV, 9);
        let f = Formula::and(Formula::or(a, b), b.not()).not();
        assert_eq!(rt(&f), f);
        assert_eq!(rt_dag(&f), f);
    }

    #[test]
    fn round_trip_triplet_both_formats() {
        let mut t = Triplet::fresh_vars(FragmentId(3), 5);
        t.v[0] = Formula::TRUE;
        t.cv[4] = Formula::or(var(1, VecKind::V, 2), var(2, VecKind::V, 2));
        let mut buf = BytesMut::new();
        encode_triplet(&t, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_triplet(&mut bytes).unwrap(), t);
        assert_eq!(bytes.remaining(), 0);

        let mut buf = BytesMut::new();
        encode_triplet_dag(&t, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_triplet_dag(&mut bytes).unwrap(), t);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let t = Triplet::fresh_vars(FragmentId(3), 4);
        let mut buf = BytesMut::new();
        encode_triplet(&t, &mut buf);
        assert_eq!(triplet_wire_size(&t), buf.len());
        let mut buf = BytesMut::new();
        encode_triplet_dag(&t, &mut buf);
        assert_eq!(triplet_dag_wire_size(&t), buf.len());
    }

    #[test]
    fn wire_size_scales_with_qlist_not_data() {
        // Constant-entry triplets, tree format: 3*(4 + n) bytes.
        let small = Triplet::all_false(2);
        let big = Triplet::all_false(23);
        let s = triplet_wire_size(&small);
        let b = triplet_wire_size(&big);
        assert!(b > s);
        assert_eq!(s, 3 * (4 + 2));
        assert_eq!(b, 3 * (4 + 23));
    }

    #[test]
    fn dag_never_larger_than_tree_on_shared_triplets() {
        // DV accumulates V, so entries share structure: the DAG format
        // encodes the shared parts once and must win (or tie).
        let shared = Formula::any((0..12).map(|i| var(i, VecKind::DV, 0)));
        let mut t = Triplet::all_false(4);
        for i in 0..4 {
            t.v[i] = Formula::or(shared, var(20, VecKind::V, i as u32));
            t.dv[i] = t.v[i];
            t.cv[i] = shared;
        }
        assert!(
            triplet_dag_wire_size(&t) <= triplet_wire_size(&t),
            "dag {} vs tree {}",
            triplet_dag_wire_size(&t),
            triplet_wire_size(&t)
        );
        // Constant triplets too (varint headers beat fixed u32 headers).
        let c = Triplet::all_false(8);
        assert!(triplet_dag_wire_size(&c) <= triplet_wire_size(&c));
        // And fresh-variable triplets.
        let f = Triplet::fresh_vars(FragmentId(3), 8);
        assert!(triplet_dag_wire_size(&f) <= triplet_wire_size(&f));
    }

    #[test]
    fn round_trip_site_envelope() {
        let a = Triplet::fresh_vars(FragmentId(1), 3);
        let b = Triplet::all_false(3);
        let entries = vec![(FragmentId(1), &a), (FragmentId(4), &b)];
        let mut buf = BytesMut::new();
        encode_site_envelope(&entries, &mut buf);
        assert_eq!(buf.len(), site_envelope_wire_size(&entries));
        let mut bytes = buf.freeze();
        let back = decode_site_envelope(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0);
        assert_eq!(
            back,
            vec![(FragmentId(1), a.clone()), (FragmentId(4), b.clone())]
        );

        let mut buf = BytesMut::new();
        encode_site_envelope_dag(&entries, &mut buf);
        assert_eq!(buf.len(), site_envelope_dag_wire_size(&entries));
        let mut bytes = buf.freeze();
        let back = decode_site_envelope_dag(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0);
        assert_eq!(back, vec![(FragmentId(1), a), (FragmentId(4), b)]);
    }

    #[test]
    fn dag_envelope_shares_one_table_across_fragments() {
        // Two fragments with identical triplets: the DAG envelope stores
        // the formulas once, so it beats per-fragment tree encoding by
        // nearly 2x — and is never larger.
        let t = Triplet::fresh_vars(FragmentId(9), 6);
        let entries = vec![(FragmentId(1), &t), (FragmentId(2), &t)];
        let dag = site_envelope_dag_wire_size(&entries);
        let tree = site_envelope_wire_size(&entries);
        assert!(dag <= tree, "dag {dag} vs tree {tree}");
        let single = site_envelope_dag_wire_size(&entries[..1]);
        assert!(
            dag < single + single / 2,
            "sharing failed: 2 frags {dag} vs 1 frag {single}"
        );
    }

    #[test]
    fn empty_envelope_is_just_a_count() {
        let mut buf = BytesMut::new();
        encode_site_envelope(&[], &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(site_envelope_wire_size(&[]), 4);
        let back = decode_site_envelope(&mut buf.freeze()).unwrap();
        assert!(back.is_empty());
        // DAG format: varint count + varint empty table = 2 bytes.
        assert_eq!(site_envelope_dag_wire_size(&[]), 2);
        let mut buf = BytesMut::new();
        encode_site_envelope_dag(&[], &mut buf);
        let back = decode_site_envelope_dag(&mut buf.freeze()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn envelope_beats_per_query_messages_on_shared_width() {
        // A batch of 8 two-sub-query members with full overlap: the
        // envelope carries one width-2 triplet instead of 8.
        let t = Triplet::all_false(2);
        let batched = site_envelope_wire_size(&[(FragmentId(0), &t)]);
        let sequential = 8 * triplet_wire_size(&t);
        assert!(batched < sequential, "{batched} vs {sequential}");
    }

    #[test]
    fn truncated_envelope_errors() {
        let mut empty = Bytes::new();
        assert_eq!(
            decode_site_envelope(&mut empty),
            Err(DecodeError::Truncated)
        );
        // Count says one record but the payload is missing.
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_site_envelope(&mut bytes),
            Err(DecodeError::Truncated)
        );
        let mut empty = Bytes::new();
        assert_eq!(
            decode_site_envelope_dag(&mut empty),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn decode_errors() {
        let mut empty = Bytes::new();
        assert_eq!(decode_formula(&mut empty), Err(DecodeError::Truncated));
        let mut bad = Bytes::from_static(&[99]);
        assert_eq!(decode_formula(&mut bad), Err(DecodeError::BadTag(99)));
        let mut trunc = Bytes::from_static(&[TAG_VAR, 1, 2]);
        assert_eq!(decode_formula(&mut trunc), Err(DecodeError::Truncated));
        // Arity 1 and-node.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_AND);
        buf.put_u32_le(1);
        buf.put_u8(TAG_TRUE);
        let mut bytes = buf.freeze();
        assert_eq!(decode_formula(&mut bytes), Err(DecodeError::BadArity(1)));
    }

    #[test]
    fn dag_decode_rejects_forward_references() {
        // Table of one Not node referencing itself (index 0 at index 0).
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1);
        buf.put_u8(TAG_NOT);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 0);
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_formula_dag(&mut bytes),
            Err(DecodeError::BadIndex(0))
        );
        // Root index past the table.
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1);
        buf.put_u8(TAG_TRUE);
        put_varint(&mut buf, 7);
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_formula_dag(&mut bytes),
            Err(DecodeError::BadIndex(7))
        );
    }

    #[test]
    fn triplet_delta_diff_apply_round_trips() {
        let old = Triplet::fresh_vars(FragmentId(3), 6);
        let mut new = old.clone();
        new.v[1] = Formula::TRUE;
        new.dv[4] = Formula::or(var(1, VecKind::DV, 4), var(2, VecKind::DV, 4));
        let d = TripletDelta::diff(&old, &new);
        assert_eq!(d.len(), 2);
        assert_eq!(d.apply(&old), new);

        let empty = TripletDelta::diff(&old, &old);
        assert!(empty.is_empty());
        assert_eq!(empty.apply(&old), old);
    }

    #[test]
    fn triplet_delta_dag_round_trips() {
        let old = Triplet::fresh_vars(FragmentId(3), 6);
        let mut new = old.clone();
        let shared = Formula::any((0..8).map(|i| var(i, VecKind::DV, 0)));
        new.v[0] = shared;
        new.cv[2] = Formula::or(shared, var(9, VecKind::V, 2));
        new.dv[5] = shared.not();
        let d = TripletDelta::diff(&old, &new);
        let mut buf = BytesMut::new();
        encode_triplet_delta_dag(&d, &mut buf);
        assert_eq!(buf.len(), triplet_delta_dag_wire_size(&d));
        let mut bytes = buf.freeze();
        let back = decode_triplet_delta_dag(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0);
        assert_eq!(back, d);
        assert_eq!(back.apply(&old), new);
    }

    #[test]
    fn sparse_delta_beats_full_triplet_on_the_wire() {
        // One changed entry out of 3·32: the delta ships a single
        // formula, the full triplet ships 96 roots plus fresh variables.
        let old = Triplet::fresh_vars(FragmentId(3), 32);
        let mut new = old.clone();
        new.dv[17] = Formula::TRUE;
        let d = TripletDelta::diff(&old, &new);
        assert_eq!(d.len(), 1);
        let delta = triplet_delta_dag_wire_size(&d);
        let full = triplet_dag_wire_size(&new);
        assert!(delta * 4 < full, "delta {delta} vs full {full}");
    }

    #[test]
    fn triplet_delta_decode_rejects_out_of_range_index() {
        // Width 2 but a record targeting entry 5.
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 2); // width
        put_varint(&mut buf, 1); // one record
        put_varint(&mut buf, 1); // table: one node
        buf.put_u8(TAG_TRUE);
        buf.put_u8(0); // VecKind::V
        put_varint(&mut buf, 5); // entry index out of range
        put_varint(&mut buf, 0); // root
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_triplet_delta_dag(&mut bytes),
            Err(DecodeError::BadIndex(5))
        );
        let mut empty = Bytes::new();
        assert_eq!(
            decode_triplet_delta_dag(&mut empty),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
            assert_eq!(bytes.remaining(), 0);
        }
    }

    #[test]
    fn deep_chain_encodes_and_decodes_iteratively() {
        // Alternating ∧/¬ chain ~60k deep: recursive codecs would
        // overflow the stack in both directions; ours must not.
        let mut f = var(0, VecKind::V, 0);
        for i in 1..30_000u32 {
            f = Formula::and(var(i, VecKind::V, 0), f.not());
        }
        assert_eq!(rt(&f), f);
        assert_eq!(rt_dag(&f), f);
        // Display is iterative too (length check keeps output unused).
        assert!(f.to_string().len() > 100_000);
    }
}

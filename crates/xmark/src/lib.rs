#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # parbox-xmark
//!
//! Synthetic workloads for the ParBoX experiments (paper, Section 6):
//!
//! * [`generate`] — a deterministic XMark-style auction-site document
//!   generator, sized in bytes (substitution for the closed-source XMark
//!   `xmlgen`; see DESIGN.md §5);
//! * [`portfolio`] — the stock-portfolio document of Fig. 1(b);
//! * [`query_with_qlist`] — XBL queries with an exact `|QList|`, covering
//!   the paper's sweep sizes {2, 8, 15, 23};
//! * [`plant_marker`] / [`marker_query`] — per-fragment satisfaction
//!   targets for the `qF0` / `qFn` / `qF⌈n/2⌉` experiments;
//! * [`mixed_workload`] — serving streams interleaving repeated queries
//!   with Section-5 updates, for the resident-engine experiments.

mod gen;
mod portfolio;
mod queries;
mod workload;

pub use gen::{generate, marker_query, plant_marker, XmarkConfig};
pub use portfolio::{add_stock, portfolio, PortfolioConfig, BROKERS, CODES, MARKETS};
pub use queries::{
    batch_workload, heterogeneous_workload, query_with_qlist, standard_sweep, XMARK_VOCAB,
};
pub use workload::{
    drive_stream, drive_stream_with, mixed_workload, resolve_data_update, resolve_update,
    update_heavy_workload, MixedConfig, MixedOp, StreamReport,
};

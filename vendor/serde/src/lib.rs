//! Offline stand-in for the [`serde`](https://docs.rs/serde) crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! external dependencies are vendored as API-compatible subsets (see
//! `vendor/README.md`). The workspace only *derives* `Serialize` /
//! `Deserialize` to mark wire-shaped types — the one JSON emitter
//! (`parbox-bench`'s result tables) formats rows manually — so the traits
//! here are empty markers and the derives emit empty impls. Swapping in
//! real serde later requires no source changes at the use sites.

#![warn(missing_docs)]

// Lets the `::serde::…` paths the derives emit resolve even inside this
// crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Point {
        _x: f64,
        _y: f64,
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        _Dot,
        _Line(u8),
    }

    fn assert_both<T: Serialize + Deserialize>() {}

    #[test]
    fn derives_produce_impls() {
        assert_both::<Point>();
        assert_both::<Shape>();
    }
}

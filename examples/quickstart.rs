//! Quickstart: fragment a document, distribute it, and evaluate a
//! Boolean XPath query with partial evaluation.
//!
//! Run with: `cargo run --example quickstart`

use parbox::prelude::*;

fn main() {
    // 1. A whole XML document (the paper's Fig. 1(b) portfolio, abridged).
    let tree = Tree::parse(
        r#"<portofolio>
             <broker>
               <name>Merill Lynch</name>
               <market><name>NASDAQ</name>
                 <stock><code>GOOG</code><buy>374</buy><sell>373</sell></stock>
                 <stock><code>YHOO</code><buy>33</buy><sell>35</sell></stock>
               </market>
             </broker>
             <broker>
               <name>Bache</name>
               <market><name>NYSE</name>
                 <stock><code>IBM</code><buy>80</buy><sell>78</sell></stock>
               </market>
             </broker>
           </portofolio>"#,
    )
    .expect("valid XML");

    // 2. Fragment it: each broker subtree becomes its own fragment, as if
    //    each brokerage kept its data on its own servers.
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let brokers: Vec<_> = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).collect()
    };
    for broker in brokers {
        forest
            .split(f0, broker)
            .expect("broker subtrees are splittable");
    }
    println!("fragments: {}", forest.card());

    // 3. Place the fragments on sites (one site each) and build a cluster
    //    with a LAN cost model.
    let placement = Placement::one_per_fragment(&forest);
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());

    // 4. Ask whether GOOG can currently be sold at 373.
    let query = parse_query("[//stock[code/text() = \"GOOG\" and sell/text() = \"373\"]]")
        .expect("valid XBL");
    let compiled = compile(&query);
    println!("query: {query}");
    println!(
        "compiled QList ({} sub-queries):\n{compiled}",
        compiled.len()
    );

    // 5. Evaluate with ParBoX: one visit per site, triplet-sized traffic.
    let out = parbox(&cluster, &compiled);
    println!("answer: {}", out.answer);
    println!(
        "visits (max/site): {}   messages: {}   traffic: {} bytes",
        out.report.max_visits(),
        out.report.total_messages(),
        out.report.total_bytes()
    );
    assert!(out.answer);

    // 6. Compare with shipping all the data to the coordinator.
    let naive = naive_centralized(&cluster, &compiled);
    println!(
        "NaiveCentralized would have shipped {} bytes instead",
        naive.report.total_bytes()
    );
    assert_eq!(naive.answer, out.answer);
}

//! Paper-style result tables.

use serde::Serialize;

/// One row of an experiment series (one iteration of a figure).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// The x-axis value (number of machines, data size, …).
    pub x: f64,
    /// The series label (algorithm or query size).
    pub series: String,
    /// Modeled runtime in seconds (compute ∥ + network model) — the
    /// quantity the paper's runtime figures plot.
    pub runtime_s: f64,
    /// Measured wall-clock seconds of the run.
    pub wall_s: f64,
    /// Total network traffic in bytes.
    pub bytes: usize,
    /// Total work units (node × sub-query evaluations).
    pub work: u64,
    /// Maximum number of visits to any one site.
    pub max_visits: usize,
}

impl Row {
    /// Builds a row from an outcome.
    pub fn from_outcome(x: f64, series: impl Into<String>, out: &parbox_core::EvalOutcome) -> Row {
        Row {
            x,
            series: series.into(),
            runtime_s: out.report.elapsed_model_s,
            wall_s: out.report.elapsed_wall_s,
            bytes: out.report.total_bytes(),
            work: out.report.total_work(),
            max_visits: out.report.max_visits(),
        }
    }
}

/// Prints a series table in the style of the paper's figures: one line
/// per x value, one column per series.
pub fn print_table(title: &str, x_label: &str, rows: &[Row]) {
    println!("## {title}");
    let mut series: Vec<String> = rows.iter().map(|r| r.series.clone()).collect();
    series.sort();
    series.dedup();
    let mut xs: Vec<f64> = rows.iter().map(|r| r.x).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    print!("{x_label:>14}");
    for s in &series {
        print!("  {s:>18}");
    }
    println!();
    for &x in &xs {
        print!("{x:>14.2}");
        for s in &series {
            match rows.iter().find(|r| r.x == x && &r.series == s) {
                Some(r) => print!("  {:>15.4}s  ", r.runtime_s),
                None => print!("  {:>18}", "-"),
            }
        }
        println!();
    }
    println!();
}

/// Prints the rows as JSON lines (for plotting pipelines).
pub fn print_json(rows: &[Row]) {
    for r in rows {
        println!("{}", serde_json::to_string_stub(r));
    }
}

// Minimal JSON encoding without the serde_json dependency: the offline
// crate set includes serde but not serde_json, so format manually.
mod serde_json {
    use super::Row;

    pub fn to_string_stub(r: &Row) -> String {
        format!(
            "{{\"x\":{},\"series\":\"{}\",\"runtime_s\":{},\"wall_s\":{},\"bytes\":{},\"work\":{},\"max_visits\":{}}}",
            r.x, r.series, r.runtime_s, r.wall_s, r.bytes, r.work, r.max_visits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(x: f64, s: &str) -> Row {
        Row {
            x,
            series: s.into(),
            runtime_s: 1.5,
            wall_s: 0.1,
            bytes: 10,
            work: 5,
            max_visits: 1,
        }
    }

    #[test]
    fn print_table_does_not_panic() {
        let rows = vec![row(1.0, "ParBoX"), row(2.0, "ParBoX"), row(1.0, "Central")];
        print_table("test", "machines", &rows);
        print_json(&rows);
    }

    #[test]
    fn json_row_is_wellformed() {
        let s = serde_json::to_string_stub(&row(1.0, "ParBoX"));
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"series\":\"ParBoX\""));
    }
}

//! Publish–subscribe filtering: the paper's motivating use case for
//! Boolean XPath (Section 1). Several subscriptions are materialized as
//! views over one distributed document; after each published update only
//! the changed fragment is re-evaluated, and subscribers whose predicate
//! flipped are notified.
//!
//! Run with: `cargo run --example pubsub_filter`

use parbox::core::{MaterializedView, Update};
use parbox::frag::{Forest, Placement};
use parbox::net::NetworkModel;
use parbox::query::{compile, parse_query, CompiledQuery};
use parbox::xmark::{generate, XmarkConfig};

/// One subscription: a name and a Boolean XPath predicate.
struct Subscription {
    name: &'static str,
    query: CompiledQuery,
}

fn main() {
    // The "publisher": an auction site whose top-level sections live on
    // different machines (regions, categories, people, auctions…).
    let tree = generate(XmarkConfig {
        target_bytes: 40_000,
        seed: 99,
    });
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let sections: Vec<_> = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).collect()
    };
    for s in sections {
        forest
            .split(f0, s)
            .expect("top-level sections split cleanly");
    }
    let mut placement = Placement::one_per_fragment(&forest);
    println!(
        "publisher: {} fragments over {} sites",
        forest.card(),
        placement.sites().len()
    );

    // Subscriptions, from plain structural to negated compound.
    let subs: Vec<Subscription> = [
        ("cash-items", "[//item[payment/text() = \"Cash\"]]"),
        (
            "recall-watch",
            "[//item[name/text() = \"recalled-widget\"]]",
        ),
        ("empty-site", "[not(//item) and not(//person)]"),
        ("combo", "[//person and //item[payment/text() = \"Cash\"]]"),
    ]
    .into_iter()
    .map(|(name, src)| Subscription {
        name,
        query: compile(&parse_query(src).expect("valid subscription")),
    })
    .collect();

    // Materialize one view per subscription.
    let mut views: Vec<MaterializedView> = subs
        .iter()
        .map(|s| {
            MaterializedView::materialize(&forest, &placement, NetworkModel::lan(), &s.query).0
        })
        .collect();
    for (s, v) in subs.iter().zip(&views) {
        println!("subscribe {:<14} initially {}", s.name, v.answer());
    }

    // A batch of published updates: a recalled item appears in a region.
    let regions_frag = forest
        .fragment_ids()
        .find(|&f| {
            let t = &forest.fragment(f).tree;
            t.label_str(t.root()) == "regions"
        })
        .expect("regions fragment");
    let region_node = {
        let t = &forest.fragment(regions_frag).tree;
        t.children(t.root()).next().expect("a region")
    };
    println!("\npublish: recalled-widget listed under {regions_frag}");

    // Apply the mutation once, through the first view…
    views[0]
        .apply(
            &mut forest,
            &mut placement,
            Update::InsNode {
                frag: regions_frag,
                parent: region_node,
                label: "item".into(),
                text: None,
            },
        )
        .unwrap();
    let item_node = {
        let t = &forest.fragment(regions_frag).tree;
        t.children(region_node).last().expect("just inserted")
    };
    views[0]
        .apply(
            &mut forest,
            &mut placement,
            Update::InsNode {
                frag: regions_frag,
                parent: item_node,
                label: "name".into(),
                text: Some("recalled-widget".into()),
            },
        )
        .unwrap();

    // …then notify the rest: each re-evaluates only the changed fragment.
    let mut fired: Vec<(&str, bool)> = Vec::new();
    for (i, (s, v)) in subs.iter().zip(views.iter_mut()).enumerate() {
        if i > 0 {
            let rep = v.refresh(&forest, &placement, regions_frag);
            if rep.answer_changed {
                fired.push((s.name, rep.answer));
            }
            println!(
                "refresh {:<14} work={} units, traffic={}B",
                s.name,
                rep.report.total_work(),
                rep.report.total_bytes()
            );
        }
    }
    for (name, now) in &fired {
        println!("notify {:<14} predicate is now {}", name, now);
    }
    assert!(
        fired.iter().any(|(n, now)| *n == "recall-watch" && *now),
        "the recall subscription must fire"
    );

    println!("\nfinal state:");
    for (s, v) in subs.iter().zip(&views) {
        println!("  {:<14} {}", s.name, v.answer());
    }
}

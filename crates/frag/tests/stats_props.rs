//! `ForestStats` incremental maintenance vs the recompute-from-scratch
//! oracle, under random insert / remove / split / merge sequences.
//!
//! The maintenance contract mirrors `parbox-core`'s
//! `apply_update_tracked`: after a mutation, re-measure the touched
//! fragments, forget removed ones, and refresh the structural columns
//! when the fragment tree changed shape. The property is that the
//! maintained statistics are *equal* (field for field) to
//! [`ForestStats::compute`] over the final forest at every step.

use parbox_frag::{Forest, ForestStats, Placement, SiteId};
use parbox_xml::{NodeId, Tree};
use proptest::prelude::*;

/// One random mutation, resolved against the live forest by index.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { frag: usize, node: usize },
    Remove { frag: usize, node: usize },
    Split { frag: usize, node: usize, site: u32 },
    Merge { frag: usize, vnode: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..1000, 0usize..1000).prop_map(|(frag, node)| Op::Insert { frag, node }),
        (0usize..1000, 0usize..1000).prop_map(|(frag, node)| Op::Remove { frag, node }),
        (0usize..1000, 0usize..1000, 0u32..6).prop_map(|(frag, node, site)| Op::Split {
            frag,
            node,
            site
        }),
        (0usize..1000, 0usize..1000).prop_map(|(frag, vnode)| Op::Merge { frag, vnode }),
    ]
}

fn seed_forest() -> (Forest, Placement) {
    let tree =
        Tree::parse("<r><a><x>1</x><y/><z>deep</z></a><b><p/><q>2</q></b><c><u/><v/><w/></c></r>")
            .unwrap();
    let mut forest = Forest::from_tree(tree);
    let root = forest.root_fragment();
    let cut = {
        let t = &forest.fragment(root).tree;
        t.children(t.root()).next().unwrap()
    };
    forest.split(root, cut).unwrap();
    let placement = Placement::round_robin(&forest, 2);
    (forest, placement)
}

/// Applies one op, incrementally maintaining `stats` exactly the way
/// `apply_update_tracked` does. Unresolvable picks are skipped.
fn apply(op: Op, forest: &mut Forest, placement: &mut Placement, stats: &mut ForestStats) {
    let frags: Vec<_> = forest.fragment_ids().collect();
    let (frag, node_idx) = match op {
        Op::Insert { frag, node }
        | Op::Remove { frag, node }
        | Op::Split { frag, node, .. }
        | Op::Merge { frag, vnode: node } => (frags[frag % frags.len()], node),
    };
    let nodes: Vec<NodeId> = {
        let t = &forest.fragment(frag).tree;
        t.descendants(t.root()).collect()
    };
    match op {
        Op::Insert { .. } => {
            let parent = {
                let t = &forest.fragment(frag).tree;
                *nodes
                    .iter()
                    .find(|&&n| !t.node(n).kind.is_virtual())
                    .expect("a fragment always has a live root")
            };
            forest.tree_mut(frag).add_child(parent, "grown");
            stats.refresh_fragment(forest, placement, frag);
        }
        Op::Remove { .. } => {
            let target = {
                let t = &forest.fragment(frag).tree;
                nodes
                    .iter()
                    .copied()
                    .cycle()
                    .skip(node_idx % nodes.len())
                    .take(nodes.len())
                    .find(|&n| n != t.root() && t.virtual_nodes(n).is_empty())
            };
            let Some(target) = target else { return };
            forest.tree_mut(frag).remove_subtree(target).unwrap();
            stats.refresh_fragment(forest, placement, frag);
        }
        Op::Split { site, .. } => {
            let target = {
                let t = &forest.fragment(frag).tree;
                nodes
                    .iter()
                    .copied()
                    .cycle()
                    .skip(node_idx % nodes.len())
                    .take(nodes.len())
                    .find(|&n| {
                        n != t.root() && !t.node(n).kind.is_virtual() && t.subtree_size(n) >= 2
                    })
            };
            let Some(target) = target else { return };
            let new = forest.split(frag, target).unwrap();
            placement.assign(new, SiteId(site));
            stats.refresh_fragment(forest, placement, frag);
            stats.refresh_fragment(forest, placement, new);
            stats.refresh_structure(forest, placement);
        }
        Op::Merge { .. } => {
            let vnodes = {
                let t = &forest.fragment(frag).tree;
                t.virtual_nodes(t.root())
            };
            if vnodes.is_empty() {
                return;
            }
            let (vnode, _) = vnodes[node_idx % vnodes.len()];
            let gone = forest.merge(frag, vnode).unwrap().expect("virtual node");
            stats.remove_fragment(gone);
            stats.refresh_fragment(forest, placement, frag);
            stats.refresh_structure(forest, placement);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The satellite acceptance property: incrementally maintained
    /// statistics equal the from-scratch oracle after every mutation.
    #[test]
    fn incremental_stats_equal_recompute_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..25),
    ) {
        let (mut forest, mut placement) = seed_forest();
        let mut stats = ForestStats::compute(&forest, &placement);
        for (i, op) in ops.into_iter().enumerate() {
            apply(op, &mut forest, &mut placement, &mut stats);
            forest.validate().unwrap();
            prop_assert_eq!(
                &stats,
                &ForestStats::compute(&forest, &placement),
                "diverged after op {}", i
            );
        }
    }
}

//! Deterministic fault injection and supervision policy for the
//! resident site workers.
//!
//! The paper's protocol — and the seed implementation — assume every
//! site answers every visit. A real deployment will not: actors panic,
//! wedge, and messages stall or vanish. This module provides the two
//! halves of the chaos-hardening story:
//!
//! * [`FaultPlan`] — a deterministic, seedable schedule of injected
//!   faults ([`FaultKind`]) threaded into the `SitePool` worker loop.
//!   The zero-fault default ([`FaultPlan::none`]) is provably inert:
//!   workers check a single precomputed flag and touch nothing else.
//!   Faults are decided per *request* from a splitmix hash of
//!   `(seed, site, per-site op counter)`; the counters live in the plan
//!   (not the worker) so a restarted actor does not deterministically
//!   re-fault on the same request and wedge forever.
//! * [`SupervisorConfig`] — the coordinator-side policy: a per-request
//!   deadline derived from the [`NetworkModel`], bounded retries with
//!   exponential backoff plus deterministic jitter, and a restart
//!   threshold for wedged actors.
//!
//! Injected panics carry an [`InjectedFault`] payload; the pool installs
//! a quiet panic hook (once, process-wide) that swallows exactly those
//! payloads so chaos runs do not spray backtraces, while every other
//! panic still reports normally.

use crate::model::NetworkModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

/// The kinds of failure the injector can produce at a site actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The actor thread panics while evaluating a request.
    Panic,
    /// The actor stops replying but stays alive, holding every request
    /// (and its reply channel) open so the coordinator must time out.
    Wedge,
    /// The reply is computed but delivered late — after the plan's
    /// configured delay, typically past the round deadline.
    DelayReply,
    /// The reply envelope is lost in flight: the work happens, the
    /// reply never arrives, and the coordinator waits out the deadline.
    DropEnvelope,
    /// The actor panics while applying a fragment load — the
    /// crash-during-apply case, detected at the next send.
    CrashApply,
}

impl FaultKind {
    /// Stable lowercase name, used by the CLI `--fault-plan` spec and
    /// the chaos experiment's JSON rows.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Wedge => "wedge",
            FaultKind::DelayReply => "delay",
            FaultKind::DropEnvelope => "drop",
            FaultKind::CrashApply => "crash",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "panic" => FaultKind::Panic,
            "wedge" => FaultKind::Wedge,
            "delay" => FaultKind::DelayReply,
            "drop" => FaultKind::DropEnvelope,
            "crash" => FaultKind::CrashApply,
            _ => return None,
        })
    }

    fn index(self) -> usize {
        match self {
            FaultKind::Panic => 0,
            FaultKind::Wedge => 1,
            FaultKind::DelayReply => 2,
            FaultKind::DropEnvelope => 3,
            FaultKind::CrashApply => 4,
        }
    }

    fn applies(self, ctx: FaultContext) -> bool {
        match ctx {
            FaultContext::Eval => self != FaultKind::CrashApply,
            FaultContext::Apply => self == FaultKind::CrashApply,
        }
    }
}

/// Where in the worker loop a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultContext {
    /// Deciding the fate of an evaluation request.
    Eval,
    /// Deciding the fate of a fragment load (apply path).
    Apply,
}

/// Per-kind injection probabilities, each in `[0, 1]`, evaluated
/// cumulatively per request.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// Probability an evaluation request panics the actor.
    pub panic: f64,
    /// Probability an evaluation request wedges the actor.
    pub wedge: f64,
    /// Probability a reply is delayed by the plan's delay.
    pub delay: f64,
    /// Probability a reply envelope is dropped.
    pub drop_envelope: f64,
    /// Probability a fragment load crashes the actor.
    pub crash_apply: f64,
}

impl FaultRates {
    /// Uniform rate for a single fault kind, all others zero.
    pub fn only(kind: FaultKind, rate: f64) -> FaultRates {
        let mut r = FaultRates::default();
        match kind {
            FaultKind::Panic => r.panic = rate,
            FaultKind::Wedge => r.wedge = rate,
            FaultKind::DelayReply => r.delay = rate,
            FaultKind::DropEnvelope => r.drop_envelope = rate,
            FaultKind::CrashApply => r.crash_apply = rate,
        }
        r
    }

    /// Every kind injected at `rate / 5` — the "mixed" chaos cell.
    pub fn mixed(rate: f64) -> FaultRates {
        let each = rate / 5.0;
        FaultRates {
            panic: each,
            wedge: each,
            delay: each,
            drop_envelope: each,
            crash_apply: each,
        }
    }

    fn is_zero(&self) -> bool {
        self.panic == 0.0
            && self.wedge == 0.0
            && self.delay == 0.0
            && self.drop_envelope == 0.0
            && self.crash_apply == 0.0
    }
}

struct PlanInner {
    seed: u64,
    rates: FaultRates,
    delay: Duration,
    scripted: Vec<(u32, u64, FaultKind)>,
    /// Statically inert: no rates, no script. Never changes.
    inert: bool,
    /// Dynamically armed; [`FaultPlan::disarm`] clears it so a chaos
    /// run can prove post-fault recovery with the hooks still in place.
    armed: AtomicBool,
    /// Per-site request counters. Shared across worker restarts so a
    /// fresh actor does not replay its predecessor's fault schedule.
    ops: Mutex<HashMap<u32, u64>>,
    injected: [AtomicU64; 5],
}

/// A deterministic, seedable fault schedule shared by every worker in a
/// `SitePool`. Cloning is cheap (an `Arc`); all clones observe the same
/// per-site op counters, injection tallies, and armed flag.
#[derive(Clone)]
pub struct FaultPlan(Arc<PlanInner>);

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.0.seed)
            .field("rates", &self.0.rates)
            .field("scripted", &self.0.scripted.len())
            .field("inert", &self.0.inert)
            .field("armed", &self.0.armed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    fn build(
        seed: u64,
        rates: FaultRates,
        delay: Duration,
        scripted: Vec<(u32, u64, FaultKind)>,
    ) -> FaultPlan {
        let inert = rates.is_zero() && scripted.is_empty();
        FaultPlan(Arc::new(PlanInner {
            seed,
            rates,
            delay,
            scripted,
            inert,
            armed: AtomicBool::new(true),
            ops: Mutex::new(HashMap::new()),
            injected: Default::default(),
        }))
    }

    /// The inert zero-fault plan: every decision is `None` via a single
    /// precomputed flag, with no counter traffic at all.
    pub fn none() -> FaultPlan {
        FaultPlan::build(0, FaultRates::default(), Duration::ZERO, Vec::new())
    }

    /// A rate-driven plan: each request at each site draws a
    /// deterministic uniform variate from `(seed, site, op)` and
    /// compares it against the cumulative `rates`.
    pub fn random(seed: u64, rates: FaultRates, delay: Duration) -> FaultPlan {
        FaultPlan::build(seed, rates, delay, Vec::new())
    }

    /// A scripted plan: fault kind `k` fires exactly at the `op`-th
    /// request site `site` receives (counting from zero, shared across
    /// restarts). Used by the deterministic supervisor tests.
    pub fn scripted(faults: Vec<(u32, u64, FaultKind)>, delay: Duration) -> FaultPlan {
        FaultPlan::build(0, FaultRates::default(), delay, faults)
    }

    /// Parse a CLI spec like `"panic:0.01,wedge:0.02"` into a
    /// rate-driven plan. Kinds are the [`FaultKind::name`] strings.
    pub fn parse(spec: &str, seed: u64, delay: Duration) -> Result<FaultPlan, String> {
        let mut rates = FaultRates::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (kind, rate) = part
                .split_once(':')
                .ok_or_else(|| format!("bad fault spec `{part}`: expected kind:rate"))?;
            let k = FaultKind::parse(kind)
                .ok_or_else(|| format!("unknown fault kind `{kind}` in `{spec}`"))?;
            let r: f64 = rate
                .parse()
                .map_err(|_| format!("bad fault rate `{rate}` in `{spec}`"))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("fault rate `{rate}` out of [0, 1]"));
            }
            match k {
                FaultKind::Panic => rates.panic = r,
                FaultKind::Wedge => rates.wedge = r,
                FaultKind::DelayReply => rates.delay = r,
                FaultKind::DropEnvelope => rates.drop_envelope = r,
                FaultKind::CrashApply => rates.crash_apply = r,
            }
        }
        Ok(FaultPlan::random(seed, rates, delay))
    }

    /// True when the plan can never inject anything (the default).
    /// Workers use this as their fast path; an inert plan adds one
    /// branch per request to the zero-fault engine.
    pub fn is_inert(&self) -> bool {
        self.0.inert
    }

    /// Stop injecting from now on, leaving the hooks in place. The
    /// chaos experiment disarms after the fault phase and asserts the
    /// engine then recovers to all-complete, all-correct answers.
    pub fn disarm(&self) {
        self.0.armed.store(false, Ordering::Relaxed);
    }

    /// The delay applied by [`FaultKind::DelayReply`].
    pub fn reply_delay(&self) -> Duration {
        self.0.delay
    }

    /// How many faults of `kind` have actually been injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.0.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.0
            .injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Decide the fate of one request at `site`. Advances the site's op
    /// counter (even when armed-off, so disarming does not shift the
    /// schedule of a later re-arm) unless the plan is statically inert.
    pub fn decide(&self, site: u32, ctx: FaultContext) -> Option<FaultKind> {
        if self.0.inert {
            return None;
        }
        let op = {
            let mut ops = self.0.ops.lock().expect("fault-plan counter lock");
            let c = ops.entry(site).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        if !self.0.armed.load(Ordering::Relaxed) {
            return None;
        }
        for &(s, o, k) in &self.0.scripted {
            if s == site && o == op && k.applies(ctx) {
                self.0.injected[k.index()].fetch_add(1, Ordering::Relaxed);
                return Some(k);
            }
        }
        if self.0.rates.is_zero() {
            return None;
        }
        let u = unit_variate(self.0.seed, site, op);
        let r = &self.0.rates;
        let picked = match ctx {
            FaultContext::Eval => {
                let mut edge = r.panic;
                if u < edge {
                    Some(FaultKind::Panic)
                } else if u < {
                    edge += r.wedge;
                    edge
                } {
                    Some(FaultKind::Wedge)
                } else if u < {
                    edge += r.delay;
                    edge
                } {
                    Some(FaultKind::DelayReply)
                } else if u < {
                    edge += r.drop_envelope;
                    edge
                } {
                    Some(FaultKind::DropEnvelope)
                } else {
                    None
                }
            }
            FaultContext::Apply => (u < r.crash_apply).then_some(FaultKind::CrashApply),
        };
        if let Some(k) = picked {
            self.0.injected[k.index()].fetch_add(1, Ordering::Relaxed);
        }
        picked
    }
}

/// Deterministic uniform variate in `[0, 1)` from `(seed, site, op)`.
fn unit_variate(seed: u64, site: u32, op: u64) -> f64 {
    let mut z = seed
        ^ (site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ op.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The payload of an injected panic. The quiet panic hook recognises
/// this type and suppresses the report; genuine panics pass through.
#[derive(Debug)]
pub struct InjectedFault {
    /// The site whose actor was killed.
    pub site: u32,
    /// What was injected.
    pub kind: FaultKind,
}

/// Install (once, process-wide) a panic hook that silences panics whose
/// payload is an [`InjectedFault`] and delegates everything else to the
/// previous hook. Idempotent; called by the pool when a non-inert plan
/// is attached.
pub fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Coordinator-side supervision policy for one evaluation round: how
/// long to wait for each site, how often to retry, and when a silent
/// actor is declared wedged and restarted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Per-request deadline, measured from the send. A site that has
    /// not replied by then is counted as a timeout and retried.
    pub deadline: Duration,
    /// Total attempts per site per round (first try included). A site
    /// still silent after the last attempt fails the round for its
    /// fragments and the answer degrades to `Partial`.
    pub max_attempts: u32,
    /// Consecutive timeouts after which the actor thread is presumed
    /// wedged, torn down, restarted, and re-seeded from the
    /// coordinator's authoritative fragment handles.
    pub restart_after_timeouts: u32,
    /// Base of the exponential backoff between attempts.
    pub backoff_base: Duration,
    /// Seed for the deterministic jitter added to each backoff.
    pub jitter_seed: u64,
}

impl SupervisorConfig {
    /// Derive a policy from the network model: the deadline covers a
    /// full request/reply exchange with generous margin (a floor keeps
    /// the zero-latency [`NetworkModel::infinite`] model from producing
    /// a zero deadline), and the backoff starts at a quarter deadline.
    pub fn from_model(model: &NetworkModel) -> SupervisorConfig {
        let deadline = Duration::from_secs_f64(0.5 + 16.0 * model.latency_s);
        SupervisorConfig {
            deadline,
            max_attempts: 4,
            restart_after_timeouts: 2,
            backoff_base: deadline / 4,
            jitter_seed: 0x000C_1A05,
        }
    }

    /// The pre-supervision contract: one attempt, a long deadline, and
    /// no tolerance — any failure is a hard error. Legacy
    /// `SitePool::eval_round` callers run under this.
    pub fn strict() -> SupervisorConfig {
        SupervisorConfig {
            deadline: Duration::from_secs(60),
            max_attempts: 1,
            restart_after_timeouts: u32::MAX,
            backoff_base: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Backoff before retry `attempt` (1-based): exponential in the
    /// base plus deterministic jitter in `[0, base)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self.backoff_base.as_secs_f64();
        if base == 0.0 {
            return Duration::ZERO;
        }
        let exp = base * (1u64 << (attempt - 1).min(16)) as f64;
        let jitter = base * unit_variate(self.jitter_seed, 0, attempt as u64);
        Duration::from_secs_f64(exp + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert_and_decides_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        for site in 0..4 {
            for _ in 0..100 {
                assert_eq!(plan.decide(site, FaultContext::Eval), None);
                assert_eq!(plan.decide(site, FaultContext::Apply), None);
            }
        }
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn rate_plan_is_deterministic_and_roughly_calibrated() {
        let rates = FaultRates::only(FaultKind::Panic, 0.2);
        let a = FaultPlan::random(7, rates, Duration::ZERO);
        let b = FaultPlan::random(7, rates, Duration::ZERO);
        let draws: Vec<_> = (0..2000).map(|_| a.decide(3, FaultContext::Eval)).collect();
        let again: Vec<_> = (0..2000).map(|_| b.decide(3, FaultContext::Eval)).collect();
        assert_eq!(draws, again, "same seed, same schedule");
        let hits = draws.iter().filter(|d| d.is_some()).count();
        assert!(
            (200..600).contains(&hits),
            "0.2 rate over 2000 draws landed {hits} faults"
        );
        assert_eq!(a.injected(FaultKind::Panic) as usize, hits);
    }

    #[test]
    fn scripted_faults_fire_once_at_their_op_and_respect_context() {
        let plan = FaultPlan::scripted(
            vec![(1, 0, FaultKind::Panic), (1, 2, FaultKind::CrashApply)],
            Duration::ZERO,
        );
        assert!(!plan.is_inert());
        // site 0 sees nothing
        assert_eq!(plan.decide(0, FaultContext::Eval), None);
        // site 1, op 0: panic on eval
        assert_eq!(plan.decide(1, FaultContext::Eval), Some(FaultKind::Panic));
        // op 1: nothing
        assert_eq!(plan.decide(1, FaultContext::Eval), None);
        // op 2 as an *apply*: crash; the same op as eval would not fire.
        assert_eq!(
            plan.decide(1, FaultContext::Apply),
            Some(FaultKind::CrashApply)
        );
        assert_eq!(plan.total_injected(), 2);
    }

    #[test]
    fn disarm_stops_injection_without_shifting_counters() {
        let plan = FaultPlan::scripted(vec![(0, 5, FaultKind::Wedge)], Duration::ZERO);
        for _ in 0..3 {
            assert_eq!(plan.decide(0, FaultContext::Eval), None);
        }
        plan.disarm();
        // ops 3 and 4 burn while disarmed...
        assert_eq!(plan.decide(0, FaultContext::Eval), None);
        assert_eq!(plan.decide(0, FaultContext::Eval), None);
        // ...and op 5 passes quietly too: disarmed means inert.
        assert_eq!(plan.decide(0, FaultContext::Eval), None);
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn parse_round_trips_kinds_and_rejects_junk() {
        let plan = FaultPlan::parse("panic:0.1,wedge:0.05", 1, Duration::from_millis(5)).unwrap();
        assert!(!plan.is_inert());
        assert_eq!(plan.reply_delay(), Duration::from_millis(5));
        assert!(FaultPlan::parse("explode:0.1", 1, Duration::ZERO).is_err());
        assert!(FaultPlan::parse("panic:2.0", 1, Duration::ZERO).is_err());
        assert!(FaultPlan::parse("panic", 1, Duration::ZERO).is_err());
    }

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let cfg = SupervisorConfig {
            deadline: Duration::from_millis(40),
            max_attempts: 4,
            restart_after_timeouts: 2,
            backoff_base: Duration::from_millis(4),
            jitter_seed: 9,
        };
        let b1 = cfg.backoff(1);
        let b2 = cfg.backoff(2);
        let b3 = cfg.backoff(3);
        assert!(b1 >= Duration::from_millis(4));
        assert!(b2 > b1 && b3 > b2, "exponential growth");
        assert_eq!(cfg.backoff(2), b2, "jitter is deterministic");
        assert_eq!(SupervisorConfig::strict().backoff(3), Duration::ZERO);
    }

    #[test]
    fn from_model_floors_the_zero_latency_model() {
        let inf = SupervisorConfig::from_model(&NetworkModel::infinite());
        assert!(inf.deadline >= Duration::from_millis(100));
        let wan = SupervisorConfig::from_model(&NetworkModel::wan());
        assert!(wan.deadline > inf.deadline, "latency term contributes");
    }
}

//! Regenerates **Fig. 7**: ParBoX vs NaiveCentralized, 1→10 machines,
//! constant corpus, |QList| = 8.
//!
//! Usage: `cargo run --release -p parbox-bench --bin fig7_parbox_vs_central [--scale BYTES]`

use parbox_bench::experiments::experiment1_fig7;
use parbox_bench::{print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = experiment1_fig7(scale, 10);
    print_table(
        &format!(
            "Fig. 7 — ParBoX vs NaiveCentralized (corpus {} bytes)",
            scale.corpus_bytes
        ),
        "machines",
        &rows,
    );
}

//! Binary wire encoding for formulas and triplets.
//!
//! The network layer ships triplets between sites; encoding them gives
//! honest byte counts for the paper's communication-cost measurements
//! (`O(|q| · card(F))` per query). The format is a compact tagged
//! preorder serialization.

use crate::formula::Formula;
use crate::triplet::Triplet;
use crate::var::{Var, VecKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parbox_xml::FragmentId;
use std::fmt;
use std::sync::Arc;

const TAG_FALSE: u8 = 0;
const TAG_TRUE: u8 = 1;
const TAG_VAR: u8 = 2;
const TAG_NOT: u8 = 3;
const TAG_AND: u8 = 4;
const TAG_OR: u8 = 5;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended mid-value.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// An n-ary node with fewer than two operands.
    BadArity(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated formula encoding"),
            DecodeError::BadTag(t) => write!(f, "unknown formula tag {t}"),
            DecodeError::BadArity(n) => write!(f, "n-ary formula with arity {n}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a formula into `buf`.
pub fn encode_formula(f: &Formula, buf: &mut BytesMut) {
    match f {
        Formula::Const(false) => buf.put_u8(TAG_FALSE),
        Formula::Const(true) => buf.put_u8(TAG_TRUE),
        Formula::Var(v) => {
            buf.put_u8(TAG_VAR);
            buf.put_u32_le(v.frag.0);
            buf.put_u8(match v.vec {
                VecKind::V => 0,
                VecKind::CV => 1,
                VecKind::DV => 2,
            });
            buf.put_u32_le(v.sub);
        }
        Formula::Not(inner) => {
            buf.put_u8(TAG_NOT);
            encode_formula(inner, buf);
        }
        Formula::And(xs) => {
            buf.put_u8(TAG_AND);
            buf.put_u32_le(xs.len() as u32);
            for x in xs.iter() {
                encode_formula(x, buf);
            }
        }
        Formula::Or(xs) => {
            buf.put_u8(TAG_OR);
            buf.put_u32_le(xs.len() as u32);
            for x in xs.iter() {
                encode_formula(x, buf);
            }
        }
    }
}

/// Decodes one formula from `buf`.
pub fn decode_formula(buf: &mut Bytes) -> Result<Formula, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    match buf.get_u8() {
        TAG_FALSE => Ok(Formula::FALSE),
        TAG_TRUE => Ok(Formula::TRUE),
        TAG_VAR => {
            if buf.remaining() < 9 {
                return Err(DecodeError::Truncated);
            }
            let frag = FragmentId(buf.get_u32_le());
            let vec = match buf.get_u8() {
                0 => VecKind::V,
                1 => VecKind::CV,
                2 => VecKind::DV,
                t => return Err(DecodeError::BadTag(t)),
            };
            let sub = buf.get_u32_le();
            Ok(Formula::Var(Var::new(frag, vec, sub)))
        }
        TAG_NOT => Ok(Formula::Not(Arc::new(decode_formula(buf)?))),
        TAG_AND | TAG_OR if buf.remaining() < 4 => Err(DecodeError::Truncated),
        tag @ (TAG_AND | TAG_OR) => {
            let n = buf.get_u32_le();
            if n < 2 {
                return Err(DecodeError::BadArity(n));
            }
            let mut xs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                xs.push(decode_formula(buf)?);
            }
            if tag == TAG_AND {
                Ok(Formula::And(xs.into()))
            } else {
                Ok(Formula::Or(xs.into()))
            }
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

/// Encodes a triplet (three length-prefixed vectors).
pub fn encode_triplet(t: &Triplet, buf: &mut BytesMut) {
    for vec in [&t.v, &t.cv, &t.dv] {
        buf.put_u32_le(vec.len() as u32);
        for f in vec {
            encode_formula(f, buf);
        }
    }
}

/// Decodes a triplet.
pub fn decode_triplet(buf: &mut Bytes) -> Result<Triplet, DecodeError> {
    let mut vecs = Vec::with_capacity(3);
    for _ in 0..3 {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n = buf.get_u32_le();
        let mut v = Vec::with_capacity(n as usize);
        for _ in 0..n {
            v.push(decode_formula(buf)?);
        }
        vecs.push(v);
    }
    let dv = vecs.pop().expect("three vectors");
    let cv = vecs.pop().expect("two vectors");
    let v = vecs.pop().expect("one vector");
    Ok(Triplet { v, cv, dv })
}

/// Exact wire size in bytes of a triplet — the unit in which the network
/// simulator accounts traffic.
pub fn triplet_wire_size(t: &Triplet) -> usize {
    let mut buf = BytesMut::new();
    encode_triplet(t, &mut buf);
    buf.len()
}

/// Encodes a *site envelope*: every `(fragment, triplet)` pair one site
/// computed for a query batch, packed into a single message.
///
/// The batch engine ships one envelope per site and visit instead of one
/// triplet message per fragment and query; the envelope is a count
/// followed by `fragment id + triplet` records.
pub fn encode_site_envelope(entries: &[(FragmentId, &Triplet)], buf: &mut BytesMut) {
    buf.put_u32_le(entries.len() as u32);
    for (frag, t) in entries {
        buf.put_u32_le(frag.0);
        encode_triplet(t, buf);
    }
}

/// Decodes a site envelope back into `(fragment, triplet)` pairs.
pub fn decode_site_envelope(buf: &mut Bytes) -> Result<Vec<(FragmentId, Triplet)>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le();
    let mut entries = Vec::with_capacity(n as usize);
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let frag = FragmentId(buf.get_u32_le());
        entries.push((frag, decode_triplet(buf)?));
    }
    Ok(entries)
}

/// Exact wire size in bytes of a site envelope:
/// `4 + Σ (4 + triplet_wire_size)`.
pub fn site_envelope_wire_size(entries: &[(FragmentId, &Triplet)]) -> usize {
    4 + entries
        .iter()
        .map(|(_, t)| 4 + triplet_wire_size(t))
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(f: &Formula) -> Formula {
        let mut buf = BytesMut::new();
        encode_formula(f, &mut buf);
        let mut bytes = buf.freeze();
        let out = decode_formula(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0, "trailing bytes");
        out
    }

    #[test]
    fn round_trip_constants_and_vars() {
        assert_eq!(rt(&Formula::TRUE), Formula::TRUE);
        assert_eq!(rt(&Formula::FALSE), Formula::FALSE);
        let v = Formula::Var(Var::new(FragmentId(7), VecKind::CV, 3));
        assert_eq!(rt(&v), v);
    }

    #[test]
    fn round_trip_nested() {
        let a = Formula::Var(Var::new(FragmentId(1), VecKind::V, 0));
        let b = Formula::Var(Var::new(FragmentId(2), VecKind::DV, 9));
        let f = Formula::and(Formula::or(a, b.clone()), b).not();
        assert_eq!(rt(&f), f);
    }

    #[test]
    fn round_trip_triplet() {
        let mut t = Triplet::fresh_vars(FragmentId(3), 5);
        t.v[0] = Formula::TRUE;
        t.cv[4] = Formula::or(
            Formula::Var(Var::new(FragmentId(1), VecKind::V, 2)),
            Formula::Var(Var::new(FragmentId(2), VecKind::V, 2)),
        );
        let mut buf = BytesMut::new();
        encode_triplet(&t, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_triplet(&mut bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let t = Triplet::fresh_vars(FragmentId(3), 4);
        let mut buf = BytesMut::new();
        encode_triplet(&t, &mut buf);
        assert_eq!(triplet_wire_size(&t), buf.len());
    }

    #[test]
    fn wire_size_scales_with_qlist_not_data() {
        // Constant-entry triplets: 3*(4 + n) bytes.
        let small = Triplet::all_false(2);
        let big = Triplet::all_false(23);
        let s = triplet_wire_size(&small);
        let b = triplet_wire_size(&big);
        assert!(b > s);
        assert_eq!(s, 3 * (4 + 2));
        assert_eq!(b, 3 * (4 + 23));
    }

    #[test]
    fn round_trip_site_envelope() {
        let a = Triplet::fresh_vars(FragmentId(1), 3);
        let b = Triplet::all_false(3);
        let entries = vec![(FragmentId(1), &a), (FragmentId(4), &b)];
        let mut buf = BytesMut::new();
        encode_site_envelope(&entries, &mut buf);
        assert_eq!(buf.len(), site_envelope_wire_size(&entries));
        let mut bytes = buf.freeze();
        let back = decode_site_envelope(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0);
        assert_eq!(back, vec![(FragmentId(1), a), (FragmentId(4), b)]);
    }

    #[test]
    fn empty_envelope_is_just_a_count() {
        let mut buf = BytesMut::new();
        encode_site_envelope(&[], &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(site_envelope_wire_size(&[]), 4);
        let back = decode_site_envelope(&mut buf.freeze()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn envelope_beats_per_query_messages_on_shared_width() {
        // A batch of 8 two-sub-query members with full overlap: the
        // envelope carries one width-2 triplet instead of 8.
        let t = Triplet::all_false(2);
        let batched = site_envelope_wire_size(&[(FragmentId(0), &t)]);
        let sequential = 8 * triplet_wire_size(&t);
        assert!(batched < sequential, "{batched} vs {sequential}");
    }

    #[test]
    fn truncated_envelope_errors() {
        let mut empty = Bytes::new();
        assert_eq!(
            decode_site_envelope(&mut empty),
            Err(DecodeError::Truncated)
        );
        // Count says one record but the payload is missing.
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_site_envelope(&mut bytes),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn decode_errors() {
        let mut empty = Bytes::new();
        assert_eq!(decode_formula(&mut empty), Err(DecodeError::Truncated));
        let mut bad = Bytes::from_static(&[99]);
        assert_eq!(decode_formula(&mut bad), Err(DecodeError::BadTag(99)));
        let mut trunc = Bytes::from_static(&[TAG_VAR, 1, 2]);
        assert_eq!(decode_formula(&mut trunc), Err(DecodeError::Truncated));
        // Arity 1 and-node.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_AND);
        buf.put_u32_le(1);
        buf.put_u8(TAG_TRUE);
        let mut bytes = buf.freeze();
        assert_eq!(decode_formula(&mut bytes), Err(DecodeError::BadArity(1)));
    }
}

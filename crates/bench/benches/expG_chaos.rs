//! Criterion bench for Experiment G: the serving loop's fault-handling
//! overhead. Three kernels over the same warm resident deployment: the
//! inert-plan round (the zero-fault hot path — its cost *is* the chaos
//! subsystem's overhead when nothing is injected), a panic-heavy plan
//! (restart + re-seed + retry per injection), and a supervised round's
//! bookkeeping with faults armed but never firing.

// The experiment is named expG in the issue tracker; keep the bench name.
#![allow(non_snake_case)]

use criterion::{criterion_group, criterion_main, Criterion};
use parbox_bench::{ft1, Scale};
use parbox_core::{Engine, EngineConfig};
use parbox_net::{FaultKind, FaultPlan, FaultRates, SupervisorConfig};
use parbox_xmark::batch_workload;
use std::hint::black_box;
use std::time::Duration;

fn chaos_supervisor(seed: u64) -> SupervisorConfig {
    SupervisorConfig {
        deadline: Duration::from_millis(30),
        max_attempts: 4,
        restart_after_timeouts: 1,
        backoff_base: Duration::from_millis(1),
        jitter_seed: seed,
    }
}

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 64 * 1024,
        seed: 2006,
    };
    let queries = batch_workload(32, scale.seed ^ 0xF0F0);

    let mut group = c.benchmark_group("expG");
    group.sample_size(10);

    // Zero-fault baseline: the inert plan must cost nothing beyond one
    // branch per request.
    let (forest, placement) = ft1(scale, 8);
    let mut inert = Engine::new(forest, placement, EngineConfig::default()).unwrap();
    for q in &queries {
        inert.query(q);
    }
    group.bench_function("inert_plan_closed_loop_32q", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for q in &queries {
                answered += usize::from(inert.query(black_box(q)).answer);
            }
            black_box(answered)
        })
    });

    // Armed but never firing: supervised-round bookkeeping (deadlines,
    // per-request fault decisions) on an otherwise healthy engine.
    let (forest, placement) = ft1(scale, 8);
    let armed_config = EngineConfig {
        fault_plan: FaultPlan::random(7, FaultRates::only(FaultKind::Panic, 0.0), Duration::ZERO),
        supervisor: Some(chaos_supervisor(7)),
        ..EngineConfig::default()
    };
    let mut armed = Engine::new(forest, placement, armed_config).unwrap();
    for q in &queries {
        armed.query(q);
    }
    group.bench_function("armed_zero_rate_closed_loop_32q", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for q in &queries {
                answered += usize::from(armed.query(black_box(q)).answer);
            }
            black_box(answered)
        })
    });

    // Panic-heavy: each injection costs a restart, a re-seed and a
    // retry — the recovery path itself. Caches are cleared per pass so
    // rounds keep reaching the data plane (and its injector).
    let (forest, placement) = ft1(scale, 8);
    let chaos_config = EngineConfig {
        fault_plan: FaultPlan::random(7, FaultRates::only(FaultKind::Panic, 0.05), Duration::ZERO),
        supervisor: Some(chaos_supervisor(7)),
        ..EngineConfig::default()
    };
    let mut chaotic = Engine::new(forest, placement, chaos_config).unwrap();
    group.bench_function("panic_5pct_closed_loop_32q", |b| {
        b.iter(|| {
            chaotic.clear_solve_cache();
            let mut answered = 0usize;
            for q in &queries {
                answered += usize::from(chaotic.query(black_box(q)).answer);
            }
            black_box(answered)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

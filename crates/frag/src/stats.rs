//! Cheap, incrementally maintained statistics over a fragmented
//! document — the inputs a cost-based planner reads.
//!
//! Every distributed strategy's cost depends on the same handful of
//! aggregates: how many fragments there are, how big each one is (nodes
//! and serialized bytes), how deep it sits in the fragment tree, how
//! many sub-fragments hang off it, and how the fragments spread over
//! sites. Recomputing those from the trees is `O(|T|)` per query — far
//! too slow to consult on every planning decision — so [`ForestStats`]
//! caches them and is maintained *incrementally*: after an update only
//! the touched fragments are re-measured (`O(|F_j|)`), plus an
//! `O(card(F) · depth)` structural refresh when the fragment tree
//! changed shape.
//!
//! The maintained figures are asserted equal to a recompute-from-scratch
//! oracle under random insert/remove/split sequences (see the proptest
//! in `crates/frag/tests` and `parbox-core`'s serve suite).

use crate::{Forest, Placement, SiteId};
use parbox_xml::FragmentId;
use std::collections::{BTreeMap, HashMap};

/// Per-fragment statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentStats {
    /// Live nodes in the fragment, virtual nodes included.
    pub nodes: usize,
    /// Approximate serialized size in bytes (what `NaiveCentralized`
    /// ships).
    pub bytes: usize,
    /// Depth in the fragment tree (root fragment = 0).
    pub depth: usize,
    /// Virtual-node fan-out: number of direct sub-fragments.
    pub fanout: usize,
    /// Site storing the fragment.
    pub site: SiteId,
    /// Parent fragment in the fragment tree.
    pub parent: Option<FragmentId>,
}

/// Per-site placement totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Fragments stored at the site (`card(F_Si)`).
    pub fragments: usize,
    /// Total nodes stored at the site (`|F_Si|`).
    pub nodes: usize,
    /// Total approximate bytes stored at the site.
    pub bytes: usize,
}

/// Aggregate statistics of a fragmented, placed document, cached so
/// planning reads them in `O(1)`–`O(card(F))` instead of walking trees.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestStats {
    per_fragment: HashMap<FragmentId, FragmentStats>,
    per_site: BTreeMap<u32, SiteStats>,
    root: FragmentId,
}

impl ForestStats {
    /// Measures the whole forest from scratch — the oracle the
    /// incremental maintenance is tested against.
    pub fn compute(forest: &Forest, placement: &Placement) -> ForestStats {
        let mut stats = ForestStats {
            per_fragment: HashMap::with_capacity(forest.card()),
            per_site: BTreeMap::new(),
            root: forest.root_fragment(),
        };
        for f in forest.fragment_ids() {
            stats.insert_fragment(forest, placement, f);
        }
        stats
    }

    fn measure(forest: &Forest, placement: &Placement, f: FragmentId) -> FragmentStats {
        let frag = forest.fragment(f);
        FragmentStats {
            nodes: frag.len(),
            bytes: frag.byte_size(),
            depth: forest.depth(f),
            fanout: frag.sub_fragments().len(),
            site: placement.site_of(f),
            parent: frag.parent,
        }
    }

    fn insert_fragment(&mut self, forest: &Forest, placement: &Placement, f: FragmentId) {
        let entry = Self::measure(forest, placement, f);
        let site = self.per_site.entry(entry.site.0).or_default();
        site.fragments += 1;
        site.nodes += entry.nodes;
        site.bytes += entry.bytes;
        if let Some(old) = self.per_fragment.insert(f, entry) {
            self.debit_site(&old);
        }
    }

    fn debit_site(&mut self, old: &FragmentStats) {
        let site = self
            .per_site
            .get_mut(&old.site.0)
            .expect("every tracked fragment has a site entry");
        site.fragments -= 1;
        site.nodes -= old.nodes;
        site.bytes -= old.bytes;
        if site.fragments == 0 {
            self.per_site.remove(&old.site.0);
        }
    }

    /// Re-measures one fragment after its tree changed (or it was just
    /// created). `O(|F_j|)` — the cost of walking only the touched
    /// fragment.
    pub fn refresh_fragment(&mut self, forest: &Forest, placement: &Placement, f: FragmentId) {
        self.insert_fragment(forest, placement, f);
    }

    /// Adjusts one fragment's node/byte figures by a known pure-data
    /// delta (`insNode`/`delNode`) without re-walking the fragment —
    /// `O(1)`, against `refresh_fragment`'s `O(|F_j|)`. The deltas must
    /// be exact (callers measure the inserted/removed nodes at mutation
    /// time) so the maintained figures stay equal to the
    /// recompute-from-scratch oracle. Untracked fragments are ignored.
    pub fn adjust_fragment(&mut self, f: FragmentId, nodes_delta: isize, bytes_delta: isize) {
        let Some(entry) = self.per_fragment.get_mut(&f) else {
            return;
        };
        entry.nodes = entry.nodes.saturating_add_signed(nodes_delta);
        entry.bytes = entry.bytes.saturating_add_signed(bytes_delta);
        if let Some(site) = self.per_site.get_mut(&entry.site.0) {
            site.nodes = site.nodes.saturating_add_signed(nodes_delta);
            site.bytes = site.bytes.saturating_add_signed(bytes_delta);
        }
    }

    /// Forgets a fragment that ceased to exist (`mergeFragments`).
    pub fn remove_fragment(&mut self, f: FragmentId) {
        if let Some(old) = self.per_fragment.remove(&f) {
            self.debit_site(&old);
        }
    }

    /// Refreshes the structural columns (depth, fan-out, parent, site) of
    /// every tracked fragment after the fragment tree changed shape —
    /// `O(card(F) · depth)`, without re-walking any fragment's nodes.
    pub fn refresh_structure(&mut self, forest: &Forest, placement: &Placement) {
        self.root = forest.root_fragment();
        for (f, entry) in self.per_fragment.iter_mut() {
            let frag = forest.fragment(*f);
            entry.depth = forest.depth(*f);
            entry.fanout = frag.sub_fragments().len();
            entry.parent = frag.parent;
            entry.site = placement.site_of(*f);
        }
        // Rebuild the (small) per-site table from the per-fragment rows;
        // placement changes are rare and the table is O(sites).
        let mut per_site: BTreeMap<u32, SiteStats> = BTreeMap::new();
        for entry in self.per_fragment.values() {
            let site = per_site.entry(entry.site.0).or_default();
            site.fragments += 1;
            site.nodes += entry.nodes;
            site.bytes += entry.bytes;
        }
        self.per_site = per_site;
    }

    /// Statistics of one fragment.
    ///
    /// # Panics
    /// Panics if the fragment is not tracked.
    pub fn fragment(&self, f: FragmentId) -> &FragmentStats {
        self.per_fragment
            .get(&f)
            .unwrap_or_else(|| panic!("fragment {f} is not tracked"))
    }

    /// Statistics of one fragment, if tracked.
    pub fn try_fragment(&self, f: FragmentId) -> Option<&FragmentStats> {
        self.per_fragment.get(&f)
    }

    /// Iterator over `(fragment, stats)` in unspecified order.
    pub fn fragments(&self) -> impl Iterator<Item = (FragmentId, &FragmentStats)> {
        self.per_fragment.iter().map(|(&f, s)| (f, s))
    }

    /// Iterator over `(site, totals)`, ascending by site.
    pub fn sites(&self) -> impl Iterator<Item = (SiteId, &SiteStats)> {
        self.per_site.iter().map(|(&s, t)| (SiteId(s), t))
    }

    /// Placement totals of one site (default-empty when the site stores
    /// nothing).
    pub fn site(&self, site: SiteId) -> SiteStats {
        self.per_site.get(&site.0).copied().unwrap_or_default()
    }

    /// The root fragment.
    pub fn root(&self) -> FragmentId {
        self.root
    }

    /// `card(F)`.
    pub fn card(&self) -> usize {
        self.per_fragment.len()
    }

    /// Number of distinct sites in use.
    pub fn site_count(&self) -> usize {
        self.per_site.len()
    }

    /// Total live nodes over all fragments (`|T|` plus one virtual node
    /// per non-root fragment).
    pub fn total_nodes(&self) -> usize {
        self.per_fragment.values().map(|e| e.nodes).sum()
    }

    /// Total approximate bytes over all fragments.
    pub fn total_bytes(&self) -> usize {
        self.per_fragment.values().map(|e| e.bytes).sum()
    }

    /// Maximum fragment-tree depth.
    pub fn max_depth(&self) -> usize {
        self.per_fragment
            .values()
            .map(|e| e.depth)
            .max()
            .unwrap_or(0)
    }

    /// Largest per-site node total `max_Si |F_Si|` — the parallel-
    /// computation bound of the paper's Fig. 4.
    pub fn max_site_nodes(&self) -> usize {
        self.per_site.values().map(|t| t.nodes).max().unwrap_or(0)
    }

    /// Fragment-tree edges whose endpoints live on *different* sites —
    /// the edges that cost a message in the distributed-resolution
    /// strategies (`NaiveDistributed`, `FullDistParBoX`).
    pub fn cross_site_edges(&self) -> usize {
        self.per_fragment
            .values()
            .filter(|e| {
                e.parent
                    .and_then(|p| self.per_fragment.get(&p))
                    .is_some_and(|p| p.site != e.site)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_xml::Tree;

    fn forest() -> (Forest, Placement) {
        let tree = Tree::parse("<r><a><x>1</x><y/></a><b><z>22</z></b><c/></r>").unwrap();
        let mut forest = Forest::from_tree(tree);
        let root = forest.root_fragment();
        crate::strategies::star(&mut forest, root).unwrap();
        let placement = Placement::round_robin(&forest, 2);
        (forest, placement)
    }

    #[test]
    fn compute_measures_every_fragment() {
        let (forest, placement) = forest();
        let stats = ForestStats::compute(&forest, &placement);
        assert_eq!(stats.card(), forest.card());
        assert_eq!(stats.total_nodes(), forest.total_nodes());
        assert_eq!(stats.total_bytes(), forest.total_bytes());
        assert_eq!(stats.site_count(), placement.sites().len());
        for f in forest.fragment_ids() {
            let s = stats.fragment(f);
            assert_eq!(s.nodes, forest.fragment(f).len());
            assert_eq!(s.bytes, forest.fragment(f).byte_size());
            assert_eq!(s.depth, forest.depth(f));
            assert_eq!(s.fanout, forest.children(f).len());
            assert_eq!(s.site, placement.site_of(f));
        }
        // Root has fanout 3 (the star), depth 0.
        let root = stats.fragment(forest.root_fragment());
        assert_eq!((root.depth, root.fanout), (0, 3));
        assert_eq!(stats.max_depth(), 1);
    }

    #[test]
    fn per_site_totals_partition_the_forest() {
        let (forest, placement) = forest();
        let stats = ForestStats::compute(&forest, &placement);
        let nodes: usize = stats.sites().map(|(_, t)| t.nodes).sum();
        let frags: usize = stats.sites().map(|(_, t)| t.fragments).sum();
        assert_eq!(nodes, forest.total_nodes());
        assert_eq!(frags, forest.card());
        assert!(stats.max_site_nodes() >= forest.total_nodes() / 2);
        assert_eq!(stats.site(SiteId(99)), SiteStats::default());
    }

    #[test]
    fn refresh_fragment_tracks_growth() {
        let (mut forest, placement) = forest();
        let mut stats = ForestStats::compute(&forest, &placement);
        let f = FragmentId(1);
        let root = forest.fragment(f).tree.root();
        forest.tree_mut(f).add_child(root, "grown");
        stats.refresh_fragment(&forest, &placement, f);
        assert_eq!(stats, ForestStats::compute(&forest, &placement));
    }

    #[test]
    fn split_then_structure_refresh_matches_oracle() {
        let (mut forest, mut placement) = forest();
        let mut stats = ForestStats::compute(&forest, &placement);
        let f1 = FragmentId(1);
        let cut = {
            let t = &forest.fragment(f1).tree;
            t.children(t.root()).next().unwrap()
        };
        let new = forest.split(f1, cut).unwrap();
        placement.assign(new, SiteId(7));
        stats.refresh_fragment(&forest, &placement, f1);
        stats.refresh_fragment(&forest, &placement, new);
        stats.refresh_structure(&forest, &placement);
        assert_eq!(stats, ForestStats::compute(&forest, &placement));
        assert_eq!(stats.fragment(new).depth, 2);
    }

    #[test]
    fn remove_fragment_tracks_merges() {
        let (mut forest, placement) = forest();
        let mut stats = ForestStats::compute(&forest, &placement);
        let root = forest.root_fragment();
        let vnode = {
            let t = &forest.fragment(root).tree;
            t.virtual_nodes(t.root())[0].0
        };
        let gone = forest.merge(root, vnode).unwrap().unwrap();
        stats.remove_fragment(gone);
        stats.refresh_fragment(&forest, &placement, root);
        stats.refresh_structure(&forest, &placement);
        assert_eq!(stats, ForestStats::compute(&forest, &placement));
    }

    #[test]
    fn cross_site_edges_counts_remote_parents() {
        let (forest, _) = forest();
        // All on one site: no cross edges.
        let single = Placement::single_site(&forest);
        assert_eq!(ForestStats::compute(&forest, &single).cross_site_edges(), 0);
        // One site per fragment: every non-root fragment crosses.
        let spread = Placement::one_per_fragment(&forest);
        assert_eq!(
            ForestStats::compute(&forest, &spread).cross_site_edges(),
            forest.card() - 1
        );
    }
}

//! Beyond Boolean queries: node selection and aggregation over a
//! distributed document — the extensions sketched in the paper's
//! conclusions, both built on the same partial-evaluation machinery.
//!
//! Run with: `cargo run --example analytics`

use parbox::core::{
    count_centralized, count_distributed, select_centralized, select_distributed, sum_distributed,
};
use parbox::frag::{Forest, Placement};
use parbox::net::{Cluster, NetworkModel};
use parbox::query::{compile, compile_selection, parse_query};
use parbox::xmark::{portfolio, PortfolioConfig};

fn main() {
    // A larger portfolio: 4 brokers × 3 markets × 5 stocks, fragmented so
    // every broker subtree lives on its own site.
    let tree = portfolio(PortfolioConfig {
        brokers: 4,
        markets_per_broker: 3,
        stocks_per_market: 5,
        seed: 7,
    });
    let whole = tree.clone();
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let brokers: Vec<_> = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).collect()
    };
    for b in brokers {
        forest.split(f0, b).unwrap();
    }
    let placement = Placement::one_per_fragment(&forest);
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    println!(
        "portfolio: {} nodes, {} fragments, {} sites\n",
        forest.total_nodes(),
        forest.card(),
        placement.sites().len()
    );

    // --- Selection: which stocks are GOOG positions? -------------------
    let sel =
        compile_selection(&parse_query("[//stock[code/text() = \"GOOG\"]]").unwrap()).unwrap();
    let picked = select_distributed(&cluster, &sel);
    println!("GOOG positions ({} found):", picked.nodes.len());
    for &(frag, node) in &picked.nodes {
        let t = &forest.fragment(frag).tree;
        let sell = t
            .children(node)
            .find(|&c| t.label_str(c) == "sell")
            .and_then(|c| t.node(c).text.as_deref().map(str::to_string))
            .unwrap_or_default();
        println!("  {frag}: stock sell={sell}");
    }
    // Oracle agreement.
    assert_eq!(picked.nodes.len(), select_centralized(&whole, &sel).len());
    // The two-visit guarantee.
    assert!(picked.report.max_visits() <= 2);

    // --- Aggregation: portfolio analytics without moving the data. -----
    let stocks = compile(&parse_query("[label() = stock]").unwrap());
    let count = count_distributed(&cluster, &stocks);
    println!("\ntotal positions:        {}", count.value);
    assert_eq!(count.value, count_centralized(&whole, &stocks) as f64);

    let sell_values = compile(&parse_query("[label() = sell]").unwrap());
    let total = sum_distributed(&cluster, &sell_values);
    println!("portfolio sell value:   {}", total.value);

    // A cross-fragment predicate: nodes with a GOOG code anywhere below
    // (the residual formulas of F0's spine resolve against the brokers'
    // triplets at the coordinator).
    let goog_holders = compile(&parse_query("[//code = \"GOOG\"]").unwrap());
    let holders = count_distributed(&cluster, &goog_holders);
    println!("nodes above a GOOG code: {}", holders.value);

    // Every aggregate visited each site exactly once:
    for out in [&count.report, &total.report, &holders.report] {
        assert_eq!(out.max_visits(), 1);
    }
    println!(
        "\ntraffic: selection {}B, count {}B, sum {}B — document is {}B",
        picked.report.total_bytes(),
        count.report.total_bytes(),
        total.report.total_bytes(),
        forest.total_bytes()
    );
}

//! Integration tests of the incremental view maintenance of Section 5:
//! long random update sequences against a from-scratch oracle, locality
//! of recomputation, and traffic independence from data and update size.

use parbox::core::{parbox, Engine, EngineConfig, MaterializedView, Update};
use parbox::frag::{Forest, Placement, SiteId};
use parbox::net::{Cluster, NetworkModel};
use parbox::query::{compile, parse_query, CompiledQuery, Query};
use parbox::xmark::{generate, resolve_data_update, resolve_update, XmarkConfig};
use parbox::xml::{FragmentId, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(bytes: usize, frags: usize, q: &str) -> (Forest, Placement, MaterializedView) {
    let mut tree = parbox::xml::Tree::new("corpus");
    let root = tree.root();
    for i in 0..frags {
        let doc = generate(XmarkConfig {
            target_bytes: bytes / frags,
            seed: 31 + i as u64,
        });
        tree.append_tree(root, &doc);
    }
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let cuts: Vec<_> = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).skip(1).collect()
    };
    for c in cuts {
        forest.split(f0, c).unwrap();
    }
    let placement = Placement::one_per_fragment(&forest);
    let compiled = compile(&parse_query(q).unwrap());
    let (view, _) =
        MaterializedView::materialize(&forest, &placement, NetworkModel::lan(), &compiled);
    (forest, placement, view)
}

fn oracle(forest: &Forest, placement: &Placement, q: &CompiledQuery) -> bool {
    let cluster = Cluster::new(forest, placement, NetworkModel::lan());
    parbox(&cluster, q).answer
}

/// Picks a random non-virtual node inside a random fragment.
fn random_node(forest: &Forest, rng: &mut StdRng) -> (FragmentId, NodeId) {
    let frags: Vec<FragmentId> = forest.fragment_ids().collect();
    let frag = frags[rng.random_range(0..frags.len())];
    let tree = &forest.fragment(frag).tree;
    let nodes: Vec<NodeId> = tree
        .descendants(tree.root())
        .filter(|&n| !tree.node(n).kind.is_virtual())
        .collect();
    (frag, nodes[rng.random_range(0..nodes.len())])
}

#[test]
fn long_random_update_sequence_stays_consistent() {
    let (mut forest, mut placement, mut view) = setup(
        24_000,
        4,
        "[//item[payment/text() = \"Cash\"] or //sentinel]",
    );
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let mut applied = 0;
    for step in 0..120 {
        let (frag, node) = random_node(&forest, &mut rng);
        let tree = &forest.fragment(frag).tree;
        let update = match rng.random_range(0..10) {
            0..=4 => Update::InsNode {
                frag,
                parent: node,
                label: if rng.random_bool(0.1) {
                    "sentinel"
                } else {
                    "filler"
                }
                .into(),
                text: rng.random_bool(0.5).then(|| "Cash".to_string()),
            },
            5..=6 => {
                if node == tree.root() || !tree.virtual_nodes(node).is_empty() {
                    continue;
                }
                Update::DelNode { frag, node }
            }
            7..=8 => {
                if node == tree.root() || tree.subtree_size(node) < 2 {
                    continue;
                }
                Update::SplitFragments {
                    frag,
                    node,
                    to_site: Some(SiteId(rng.random_range(0..6))),
                }
            }
            _ => {
                let vnodes = tree.virtual_nodes(tree.root());
                if vnodes.is_empty() {
                    continue;
                }
                let (vn, _) = vnodes[rng.random_range(0..vnodes.len())];
                Update::MergeFragments { frag, node: vn }
            }
        };
        view.apply(&mut forest, &mut placement, update).unwrap();
        applied += 1;
        forest.validate().unwrap();
        assert_eq!(
            view.answer(),
            oracle(&forest, &placement, view.query()),
            "divergence at step {step}"
        );
    }
    assert!(applied > 60, "too few updates exercised: {applied}");
}

#[test]
fn maintenance_visits_only_the_updated_fragments_site() {
    let (mut forest, mut placement, mut view) = setup(20_000, 5, "[//nothing-here]");
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..25 {
        let (frag, node) = random_node(&forest, &mut rng);
        let expected_site = placement.site_of(frag);
        let rep = view
            .apply(
                &mut forest,
                &mut placement,
                Update::InsNode {
                    frag,
                    parent: node,
                    label: "filler".into(),
                    text: None,
                },
            )
            .unwrap();
        let visited: Vec<SiteId> = rep
            .report
            .sites()
            .filter(|(_, r)| r.visits > 0)
            .map(|(s, _)| s)
            .collect();
        assert_eq!(visited, vec![expected_site]);
    }
}

#[test]
fn maintenance_traffic_constant_as_document_grows() {
    let (mut forest, mut placement, mut view) = setup(20_000, 4, "[//needle]");
    let frag = forest.fragment_ids().last().unwrap();
    let parent = forest.fragment(frag).tree.root();

    let probe = |view: &mut MaterializedView, forest: &mut Forest, placement: &mut Placement| {
        view.apply(
            forest,
            placement,
            Update::InsNode {
                frag,
                parent,
                label: "probe".into(),
                text: None,
            },
        )
        .unwrap()
        .report
        .total_bytes()
    };

    let before = probe(&mut view, &mut forest, &mut placement);
    // Grow the fragment by three orders of magnitude more nodes.
    for i in 0..2_000 {
        view.apply(
            &mut forest,
            &mut placement,
            Update::InsNode {
                frag,
                parent,
                label: "bulk".into(),
                text: Some(format!("row {i}")),
            },
        )
        .unwrap();
    }
    let after = probe(&mut view, &mut forest, &mut placement);
    assert_eq!(before, after, "maintenance traffic grew with |T|");
}

#[test]
fn view_survives_full_defragmentation() {
    // Merge everything back into one fragment, one merge at a time, with
    // the view staying consistent throughout.
    let (mut forest, mut placement, mut view) = setup(16_000, 4, "[//item]");
    loop {
        let root = forest.root_fragment();
        let vnode = {
            let t = &forest.fragment(root).tree;
            t.virtual_nodes(t.root()).first().map(|&(n, _)| n)
        };
        let Some(vnode) = vnode else { break };
        view.apply(
            &mut forest,
            &mut placement,
            Update::MergeFragments {
                frag: root,
                node: vnode,
            },
        )
        .unwrap();
        assert_eq!(view.answer(), oracle(&forest, &placement, view.query()));
    }
    assert_eq!(forest.card(), 1);
    assert!(view.answer(), "items exist in every XMark document");
}

// ---------------------------------------------------------------------
// Delta repair vs invalidate-and-recompute: the resident engine's two
// maintenance modes must be observationally equivalent on any update
// schedule. The delta engine repairs cached triplets in place (O(depth));
// the legacy engine drops and recomputes them (O(|fragment|)) — both must
// produce the same answers as one-shot ParBoX at every step.

/// Two engines over identical deployments, differing only in
/// [`EngineConfig::delta_maintenance`], plus a small standing query pool.
fn twin_engines(doc_seed: u64) -> (Engine, Engine, Vec<Query>) {
    let tree = generate(XmarkConfig {
        target_bytes: 6_000,
        seed: doc_seed,
    });
    let mut forest = Forest::from_tree(tree);
    parbox::frag::strategies::fragment_evenly(&mut forest, 4).unwrap();
    let placement = Placement::round_robin(&forest, 2);
    let delta = Engine::new(forest.clone(), placement.clone(), EngineConfig::default())
        .expect("valid deployment");
    let legacy = Engine::new(
        forest,
        placement,
        EngineConfig {
            delta_maintenance: false,
            ..EngineConfig::default()
        },
    )
    .expect("valid deployment");
    let queries = [
        "[//item[payment/text() = \"Cash\"]]",
        "[//item and //person]",
        "[not(//no-such-label)]",
    ]
    .iter()
    .map(|s| parse_query(s).unwrap())
    .collect();
    (delta, legacy, queries)
}

proptest! {
    // Each case spawns two engines' worth of site workers, so fewer
    // cases than a pure-function property would use.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On a random schedule of Section-5 updates (inserts, deletes,
    /// splits, merges — the structural ones exercise the invalidation
    /// fallback inside the delta engine), both maintenance modes agree
    /// with the one-shot oracle after every step.
    #[test]
    fn delta_repair_equals_invalidate_and_recompute(
        doc_seed in 0u64..500,
        update_seeds in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let (mut delta, mut legacy, queries) = twin_engines(doc_seed);
        // Warm both caches so the delta engine has entries to repair.
        for q in &queries {
            prop_assert_eq!(delta.query(q).answer, legacy.query(q).answer);
        }
        for (step, seed) in update_seeds.iter().enumerate() {
            // Both forests evolve identically, so resolving against the
            // delta engine yields an update valid for both.
            let Some(update) = resolve_update(delta.forest(), *seed) else {
                continue;
            };
            delta.apply(update.clone()).unwrap();
            legacy.apply(update).unwrap();
            for q in &queries {
                let expected = oracle(delta.forest(), delta.placement(), &compile(q));
                prop_assert_eq!(delta.query(q).answer, expected, "delta, step {}: {}", step, q);
                prop_assert_eq!(legacy.query(q).answer, expected, "legacy, step {}: {}", step, q);
            }
        }
        // The invalidation engine must never have repaired in place.
        prop_assert_eq!(legacy.stats().entries_repaired, 0);
    }
}

/// Deterministic direction of the same property: a pure data-update
/// schedule (no splits/merges) is serviced *entirely* by in-place repair
/// on the delta engine — zero invalidations — while still agreeing with
/// the invalidate-and-recompute engine at every step.
#[test]
fn data_update_schedule_repairs_in_place_and_agrees() {
    let (mut delta, mut legacy, queries) = twin_engines(2006);
    for q in &queries {
        assert_eq!(delta.query(q).answer, legacy.query(q).answer);
    }
    let mut applied = 0;
    for seed in 0..60u64 {
        let Some(update) = resolve_data_update(delta.forest(), seed) else {
            continue;
        };
        delta.apply(update.clone()).unwrap();
        legacy.apply(update).unwrap();
        applied += 1;
        for q in &queries {
            let expected = oracle(delta.forest(), delta.placement(), &compile(q));
            assert_eq!(delta.query(q).answer, expected, "delta after seed {seed}");
            assert_eq!(legacy.query(q).answer, expected, "legacy after seed {seed}");
        }
    }
    assert!(applied > 10, "schedule too thin: {applied} updates");
    let stats = delta.stats();
    assert!(stats.entries_repaired > 0, "delta engine never repaired");
    assert_eq!(
        stats.entries_invalidated, 0,
        "data updates must repair, not invalidate"
    );
    assert_eq!(legacy.stats().entries_repaired, 0);
    assert!(legacy.stats().entries_invalidated > 0);
}

#[test]
fn refresh_tracks_external_mutations() {
    let (mut forest, mut placement, mut view) = setup(16_000, 3, "[//external-marker]");
    assert!(!view.answer());
    // Mutate the forest directly (not through the view), as a second
    // writer would, then refresh the view for the changed fragment.
    let frag = forest.fragment_ids().last().unwrap();
    let root = forest.fragment(frag).tree.root();
    forest.tree_mut(frag).add_child(root, "external-marker");
    let rep = view.refresh(&forest, &placement, frag);
    assert!(rep.answer_changed);
    assert!(view.answer());
    assert_eq!(view.answer(), oracle(&forest, &placement, view.query()));
    let _ = &mut placement;
}

//! Cluster builders reproducing the fragment-tree shapes of Fig. 6.

use parbox_frag::{strategies, Forest, Placement, SiteId};
use parbox_xmark::{generate, plant_marker, XmarkConfig};
use parbox_xml::{FragmentId, Tree};

/// Experiment scale: the byte budget standing in for the paper's "50MB".
///
/// The default (256 KiB) keeps each experiment iteration in the tens of
/// milliseconds while leaving compute comfortably above the modeled
/// network costs, preserving the paper's runtime shapes.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Bytes standing in for the paper's constant 50 MB corpus.
    pub corpus_bytes: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            corpus_bytes: 256 * 1024,
            seed: 2006,
        }
    }
}

impl Scale {
    /// Scale with an explicit byte budget.
    pub fn bytes(corpus_bytes: usize) -> Scale {
        Scale {
            corpus_bytes,
            ..Default::default()
        }
    }

    /// Parses `--scale <bytes>` from argv, defaulting to [`Scale::default`].
    pub fn from_args() -> Scale {
        let mut scale = Scale::default();
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" {
                scale.corpus_bytes = w[1]
                    .parse()
                    .unwrap_or_else(|_| panic!("--scale expects bytes, got {:?}", w[1]));
            }
        }
        scale
    }
}

/// Plants one `qmarker` with key `F<i>` at the root of every fragment so
/// experiments can target queries at specific fragments.
pub fn plant_markers(forest: &mut Forest) {
    let ids: Vec<FragmentId> = forest.fragment_ids().collect();
    for id in ids {
        let tree = forest.tree_mut(id);
        let root = tree.root();
        plant_marker(tree, root, &id.to_string());
    }
}

/// **FT1** (Experiment 1): a star of `n` equally sized fragments over a
/// constant-size corpus, one fragment per site.
///
/// As in the paper, "each fragment corresponds to a single XMark site":
/// the corpus is `n` whole XMark documents of `corpus / n` bytes hanging
/// off a common collection root; `F0` keeps the root and the first site,
/// `F1 … F_{n-1}` are the remaining sites.
pub fn ft1(scale: Scale, n: usize) -> (Forest, Placement) {
    assert!(n >= 1);
    let per = (scale.corpus_bytes / n).max(1024);
    let mut tree = Tree::new("collection");
    let root = tree.root();
    for i in 0..n {
        let site = generate(XmarkConfig {
            target_bytes: per,
            seed: scale.seed ^ i as u64,
        });
        tree.append_tree(root, &site);
    }
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    // Split every site but the first off the root fragment.
    let cuts: Vec<_> = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).skip(1).collect()
    };
    for cut in cuts {
        forest.split(f0, cut).expect("site subtrees are splittable");
    }
    plant_markers(&mut forest);
    let placement = Placement::one_per_fragment(&forest);
    (forest, placement)
}

/// **FT2** (Experiment 2): a chain `F0 ⊃ F1 ⊃ … ⊃ F_{n-1}` over a
/// constant-size corpus — the paper's temporal-database reading: each
/// fragment is one version of an XMark site, nested under its
/// predecessor. One fragment per site, with a marker planted in every
/// fragment so `qF0` / `qFn` / `qF⌈n/2⌉` can be targeted.
pub fn ft2_chain(scale: Scale, n: usize) -> (Forest, Placement) {
    assert!(n >= 1);
    let per = (scale.corpus_bytes / n).max(1024);
    let mut tree = Tree::new("history");
    let mut cur = tree.root();
    for i in 0..n {
        let version = tree.add_child(cur, "version");
        tree.set_attr(version, "seq", &i.to_string());
        let slice = generate(XmarkConfig {
            target_bytes: per,
            seed: scale.seed ^ (i as u64),
        });
        tree.append_tree(version, &slice);
        cur = version;
    }
    // Split at each version node, deepest-last, so F_{j+1} ⊂ F_j.
    let mut forest = Forest::from_tree(tree);
    let mut last = forest.root_fragment();
    for i in 1..n {
        let cut = {
            let t = &forest.fragment(last).tree;
            t.descendants(t.root())
                .find(|&nd| {
                    t.label_str(nd) == "version" && t.node(nd).attr("seq") == Some(&i.to_string())
                })
                .expect("version node present")
        };
        last = forest
            .split(last, cut)
            .expect("version subtrees are splittable");
    }
    plant_markers(&mut forest);
    let placement = Placement::one_per_fragment(&forest);
    (forest, placement)
}

/// **FT3** (Experiment 3): the two-level, eight-fragment tree of Fig. 6
/// with skewed sizes. `growth ∈ [0, 1]` sweeps the paper's 45 MB → 160 MB
/// axis: `F0` stays constant while the others grow linearly, `F1` being
/// the largest throughout.
///
/// Structure: `F0 → {F1, F2, F3}`, `F1 → {F4, F5}`, `F3 → {F6, F7}`.
pub fn ft3(scale: Scale, growth: f64) -> (Forest, Placement) {
    let unit = scale.corpus_bytes as f64 / 50.0; // bytes standing in for 1 MB
                                                 // (lo, hi) in "MB" for F0..F7, F0 constant, F1 dominant (paper text).
    let ranges: [(f64, f64); 8] = [
        (10.0, 10.0), // F0
        (10.0, 50.0), // F1
        (3.5, 15.0),  // F2
        (5.0, 20.0),  // F3
        (4.0, 16.0),  // F4
        (4.0, 16.0),  // F5
        (2.0, 10.0),  // F6
        (0.7, 3.7),   // F7
    ];
    let size = |i: usize| -> usize {
        let (lo, hi) = ranges[i];
        ((lo + growth * (hi - lo)) * unit) as usize
    };

    // Assemble the whole document with nested attachment points:
    // sections 4 and 5 live inside section 1; sections 6 and 7 inside 3.
    let mut tree = generate(XmarkConfig {
        target_bytes: size(0),
        seed: scale.seed,
    });
    let root = tree.root();
    let section = |tree: &mut Tree, parent, i: usize| {
        let slot = tree.add_child(parent, "section");
        tree.set_attr(slot, "frag", &i.to_string());
        let content = generate(XmarkConfig {
            target_bytes: size(i),
            seed: scale.seed ^ (100 + i as u64),
        });
        tree.append_tree(slot, &content);
        slot
    };
    let s1 = section(&mut tree, root, 1);
    section(&mut tree, s1, 4);
    section(&mut tree, s1, 5);
    section(&mut tree, root, 2);
    let s3 = section(&mut tree, root, 3);
    section(&mut tree, s3, 6);
    section(&mut tree, s3, 7);

    // Split hierarchically: parents first, then the nested sections out
    // of the fragments that now own them.
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let find_slot = |forest: &Forest, frag: FragmentId, i: usize| {
        let t = &forest.fragment(frag).tree;
        t.descendants(t.root())
            .find(|&n| {
                t.label_str(n) == "section" && t.node(n).attr("frag") == Some(&i.to_string())
            })
            .expect("section slot present")
    };
    let f1 = forest.split(f0, find_slot(&forest, f0, 1)).unwrap();
    forest.split(f0, find_slot(&forest, f0, 2)).unwrap();
    let f3 = forest.split(f0, find_slot(&forest, f0, 3)).unwrap();
    forest.split(f1, find_slot(&forest, f1, 4)).unwrap();
    forest.split(f1, find_slot(&forest, f1, 5)).unwrap();
    forest.split(f3, find_slot(&forest, f3, 6)).unwrap();
    forest.split(f3, find_slot(&forest, f3, 7)).unwrap();

    plant_markers(&mut forest);
    let placement = Placement::one_per_fragment(&forest);
    (forest, placement)
}

/// **Experiment 4**: a single site holding the whole corpus split into
/// `n` equal fragments — evaluation time must stay constant in `n`.
pub fn single_site_split(scale: Scale, n: usize) -> (Forest, Placement) {
    let tree = generate(XmarkConfig {
        target_bytes: scale.corpus_bytes,
        seed: scale.seed,
    });
    let mut forest = Forest::from_tree(tree);
    strategies::fragment_evenly(&mut forest, n).expect("corpus large enough");
    let mut placement = Placement::new();
    for f in forest.fragment_ids() {
        placement.assign(f, SiteId(0));
    }
    (forest, placement)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            corpus_bytes: 40_000,
            seed: 7,
        }
    }

    #[test]
    fn ft1_builds_requested_fragment_count() {
        for n in [1usize, 4, 10] {
            let (forest, placement) = ft1(tiny(), n);
            assert_eq!(forest.card(), n);
            forest.validate().unwrap();
            placement.validate(&forest).unwrap();
            // One fragment per site.
            assert_eq!(placement.sites().len(), n);
        }
    }

    #[test]
    fn ft1_fragments_roughly_equal() {
        let (forest, _) = ft1(tiny(), 5);
        let sizes: Vec<usize> = forest
            .fragment_ids()
            .map(|f| forest.fragment(f).len())
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max <= min * 2, "imbalanced: {sizes:?}");
    }

    #[test]
    fn ft2_is_a_chain_with_markers() {
        let (forest, _) = ft2_chain(tiny(), 5);
        assert_eq!(forest.card(), 5);
        forest.validate().unwrap();
        // Linear fragment tree.
        for f in forest.fragment_ids() {
            assert!(forest.children(f).len() <= 1);
        }
        assert_eq!(forest.depth(FragmentId(4)), 4);
    }

    #[test]
    fn ft3_has_eight_fragments_with_skew() {
        let (forest, placement) = ft3(tiny(), 0.5);
        assert_eq!(forest.card(), 8);
        forest.validate().unwrap();
        placement.validate(&forest).unwrap();
        // F1's section is the largest non-root fragment.
        let sizes: Vec<(FragmentId, usize)> = forest
            .fragment_ids()
            .map(|f| (f, forest.fragment(f).byte_size()))
            .collect();
        let f1 = sizes.iter().find(|(f, _)| *f == FragmentId(1)).unwrap().1;
        for (f, s) in &sizes {
            if *f != FragmentId(0) && *f != FragmentId(1) {
                assert!(f1 >= *s, "F1 ({f1}) smaller than {f} ({s})");
            }
        }
    }

    #[test]
    fn ft3_growth_grows_everything_but_f0() {
        let (small, _) = ft3(tiny(), 0.0);
        let (large, _) = ft3(tiny(), 1.0);
        let sz = |forest: &Forest, i: u32| forest.fragment(FragmentId(i)).byte_size();
        // F0 roughly constant (generator granularity aside).
        let f0_small = sz(&small, 0) as f64;
        let f0_large = sz(&large, 0) as f64;
        assert!((f0_large / f0_small) < 1.5);
        // F1 roughly 5×.
        assert!(sz(&large, 1) > 3 * sz(&small, 1));
    }

    #[test]
    fn single_site_split_keeps_one_site() {
        let (forest, placement) = single_site_split(tiny(), 6);
        assert_eq!(forest.card(), 6);
        assert_eq!(placement.sites(), vec![SiteId(0)]);
    }
}

//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The container this workspace builds in has no crates.io access, so
//! external dependencies are vendored as API-compatible subsets (see
//! `vendor/README.md`). This one implements the shape the `parbox-bench`
//! benches use — [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] / [`criterion_main!`]
//! — over a simple wall-clock timing loop: calibrate the per-iteration
//! cost, batch iterations into samples, and print mean / min / max per
//! benchmark. No statistical analysis, plots, or baselines; swap in real
//! criterion later without touching the bench sources.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(500);

/// How benchmark inputs are scoped in [`Bencher::iter_batched`].
/// Accepted for API compatibility; the stub times the routine the same
/// way for every size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; many per batch in real criterion.
    SmallInput,
    /// Routine input is large; few per batch in real criterion.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Identifies one parameterized benchmark, e.g. `ParBoX/10`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, amortizing the clock over calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1/10 of the budget?
        let start = Instant::now();
        let mut calibration_iters: u64 = 0;
        while start.elapsed() < MEASURE_BUDGET / 10 {
            std::hint::black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = start.elapsed() / calibration_iters.max(1) as u32;
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;

        let deadline = Instant::now() + MEASURE_BUDGET;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + MEASURE_BUDGET;
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(group: Option<&str>, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full:<48} (no samples)");
        return;
    }
    let n = bencher.samples.len() as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = *bencher.samples.iter().min().expect("non-empty");
    let max = *bencher.samples.iter().max().expect("non-empty");
    println!(
        "{full:<48} mean {:>12}  min {:>12}  max {:>12}  ({n} samples)",
        format_duration(mean),
        format_duration(min),
        format_duration(max),
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes samples by a time
    /// budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), id, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.id, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing happens eagerly per benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("— bench group `{name}` —");
        BenchmarkGroup {
            name,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, id, &mut f);
        self
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("push", |b| b.iter(|| (0..4u8).collect::<Vec<_>>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}

//! Criterion bench for Experiment C: a repeated-heavy query stream
//! through the resident engine vs spawn-per-query one-shot ParBoX,
//! wall-clock. The engine's threads, caches and admission batching stay
//! warm across iterations — that residency is exactly what is measured.

// The experiment is named expC in the issue tracker; keep the bench name.
#![allow(non_snake_case)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbox_bench::{ft1, Scale};
use parbox_core::{parbox, Engine, EngineConfig};
use parbox_net::{Cluster, NetworkModel};
use parbox_query::compile;
use parbox_xmark::{mixed_workload, MixedConfig, MixedOp};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 96 * 1024,
        seed: 2006,
    };
    let sites = 8;
    let (forest, placement) = ft1(scale, sites);
    // Query-only stream (updates would mutate state across iterations).
    let queries: Vec<_> = mixed_workload(MixedConfig {
        ops: 64,
        repeat_fraction: 0.2,
        update_fraction: 0.0,
        seed: scale.seed,
    })
    .into_iter()
    .filter_map(|op| match op {
        MixedOp::Query(q) => Some(q),
        MixedOp::Update { .. } => None,
    })
    .collect();

    let mut group = c.benchmark_group("expC");
    group.sample_size(10);
    let n = queries.len();

    let mut engine = Engine::new(
        forest.clone(),
        placement.clone(),
        EngineConfig {
            max_batch: 32,
            batch_window: Duration::from_secs(3600),
            ..EngineConfig::default()
        },
    )
    .expect("valid deployment");
    group.bench_with_input(BenchmarkId::new("resident", n), &n, |b, _| {
        b.iter(|| {
            let mut trues = 0usize;
            for q in &queries {
                engine.submit(q);
                if let Some(out) = engine.poll() {
                    trues += out.answers.iter().filter(|&&(_, a)| a).count();
                }
            }
            if let Some(out) = engine.flush() {
                trues += out.answers.iter().filter(|&&(_, a)| a).count();
            }
            black_box(trues)
        })
    });

    group.bench_with_input(BenchmarkId::new("oneshot", n), &n, |b, _| {
        b.iter(|| {
            let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
            let mut trues = 0usize;
            for q in &queries {
                if parbox(&cluster, &compile(q)).answer {
                    trues += 1;
                }
            }
            black_box(trues)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

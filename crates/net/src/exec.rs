//! Parallel per-site execution.
//!
//! ParBoX's stage 2 runs the same partial evaluation on every site *in
//! parallel* — here each site is a scoped worker thread that really
//! performs its fragment evaluations concurrently, and reports how long
//! its local work took. The measured per-site durations feed the
//! elapsed-time model (parallel compute = max over sites).

use parbox_frag::SiteId;
use std::time::{Duration, Instant};

/// Result of one site's work.
#[derive(Debug)]
pub struct SiteRun<R> {
    /// The site.
    pub site: SiteId,
    /// The value the site computed.
    pub output: R,
    /// Measured wall-clock duration of the site's local work.
    pub elapsed: Duration,
}

/// Runs `work` for every site concurrently (one thread per site) and
/// collects outputs with per-site timings, in the input order of `sites`.
///
/// Panics in a worker propagate to the caller with their original
/// payload (via [`std::panic::resume_unwind`]), so an injected-fault
/// payload or assertion message survives the thread boundary intact
/// instead of being wrapped in a generic "site worker panicked" expect.
pub fn run_sites_parallel<R, F>(sites: &[SiteId], work: F) -> Vec<SiteRun<R>>
where
    R: Send,
    F: Fn(SiteId) -> R + Sync,
{
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = sites
            .iter()
            .map(|&site| {
                scope.spawn(move || {
                    let start = Instant::now();
                    let output = work(site);
                    SiteRun {
                        site,
                        output,
                        elapsed: start.elapsed(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(run) => run,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Runs `work` for every site sequentially (the naive baselines), still
/// recording per-site timings.
pub fn run_sites_sequential<R, F>(sites: &[SiteId], mut work: F) -> Vec<SiteRun<R>>
where
    F: FnMut(SiteId) -> R,
{
    sites
        .iter()
        .map(|&site| {
            let start = Instant::now();
            let output = work(site);
            SiteRun {
                site,
                output,
                elapsed: start.elapsed(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_runs_all_sites_and_preserves_order() {
        let sites: Vec<SiteId> = (0..8).map(SiteId).collect();
        let counter = AtomicUsize::new(0);
        let runs = run_sites_parallel(&sites, |s| {
            counter.fetch_add(1, Ordering::SeqCst);
            s.0 * 2
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.site, SiteId(i as u32));
            assert_eq!(r.output, i as u32 * 2);
        }
    }

    #[test]
    fn parallel_actually_overlaps() {
        // 4 sites sleeping 30 ms each: parallel wall time must be well
        // under the 120 ms a sequential run would need.
        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        let start = Instant::now();
        let runs = run_sites_parallel(&sites, |_| {
            std::thread::sleep(Duration::from_millis(30));
        });
        let wall = start.elapsed();
        assert!(wall < Duration::from_millis(100), "no overlap: {wall:?}");
        for r in &runs {
            assert!(r.elapsed >= Duration::from_millis(25));
        }
    }

    #[test]
    fn sequential_runs_in_order() {
        let sites: Vec<SiteId> = (0..3).map(SiteId).collect();
        let mut seen = Vec::new();
        let runs = run_sites_sequential(&sites, |s| {
            seen.push(s);
            s.0
        });
        assert_eq!(seen, sites);
        assert_eq!(runs.len(), 3);
    }

    #[test]
    fn empty_site_list_is_fine() {
        let runs = run_sites_parallel::<(), _>(&[], |_| ());
        assert!(runs.is_empty());
    }
}

//! Optimal centralized evaluation of Boolean XPath.
//!
//! One bottom-up traversal computing the values of all sub-queries in
//! `QList(q)` at every node — the `O(|T| · |q|)` strategy of Gottlob,
//! Koch & Pichler cited as the best-known centralized algorithm in the
//! paper (Section 2.2). This is both the correctness oracle for all
//! distributed algorithms and the compute kernel of `NaiveCentralized`.

use crate::eval::bitset::BitSet;
use parbox_query::{CompiledQuery, Op, ResolvedQuery};
use parbox_xml::{NodeId, Tree};

/// Result of a counted centralized evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CentralizedRun {
    /// The query answer at the tree root.
    pub answer: bool,
    /// Work units: `nodes visited × |QList|`.
    pub work_units: u64,
}

/// Evaluates `q` at the root of `tree`.
///
/// Virtual nodes, if present, are treated as opaque leaves that satisfy
/// no predicate (callers evaluating fragmented documents should use the
/// distributed algorithms instead).
pub fn centralized_eval(tree: &Tree, q: &CompiledQuery) -> bool {
    centralized_eval_counted(tree, q).answer
}

/// Evaluates `q` and reports the work performed.
pub fn centralized_eval_counted(tree: &Tree, q: &CompiledQuery) -> CentralizedRun {
    let resolved = q.resolve(tree.labels());
    let (v, _cv, _dv, nodes) = eval_vectors(tree, &resolved);
    CentralizedRun {
        answer: v.get(resolved.root as usize),
        work_units: nodes * resolved.len() as u64,
    }
}

/// Runs the bitset kernel and returns the root's `(V, CV, DV)` vectors
/// and the number of nodes visited. Shared with `bottomUp`, which uses
/// it as a fast path for fragments without virtual nodes (where partial
/// evaluation degenerates to full evaluation).
pub(crate) fn eval_vectors(tree: &Tree, resolved: &ResolvedQuery) -> (BitSet, BitSet, BitSet, u64) {
    eval_vectors_at(tree, resolved, tree.root())
}

/// Like [`eval_vectors`] but rooted at an arbitrary subtree. `bottomUp`
/// uses this to evaluate virtual-free subtrees at bitset speed, keeping
/// formula construction confined to the spine above virtual nodes.
pub(crate) fn eval_vectors_at(
    tree: &Tree,
    resolved: &ResolvedQuery,
    start: NodeId,
) -> (BitSet, BitSet, BitSet, u64) {
    let m = resolved.len();
    let mut eval = Evaluator {
        tree,
        q: resolved,
        m,
        pool: Vec::new(),
        nodes: 0,
    };
    let (v, cv, dv) = eval.run(start);
    (v, cv, dv, eval.nodes)
}

struct Evaluator<'a> {
    tree: &'a Tree,
    q: &'a ResolvedQuery,
    m: usize,
    /// Pool of zeroed bitsets for frame reuse (at most O(depth) live).
    pool: Vec<BitSet>,
    nodes: u64,
}

struct Frame {
    node: NodeId,
    child_idx: usize,
    cv: BitSet,
    dv: BitSet,
}

impl<'a> Evaluator<'a> {
    /// Returns a zeroed bitset, reusing pooled ones.
    fn alloc(&mut self) -> BitSet {
        match self.pool.pop() {
            Some(mut b) => {
                b.clear();
                b
            }
            None => BitSet::zeros(self.m),
        }
    }

    /// Iterative postorder evaluation; returns `(V, CV, DV)` of `start`.
    fn run(&mut self, start: NodeId) -> (BitSet, BitSet, BitSet) {
        let (cv, dv) = (self.alloc(), self.alloc());
        let mut stack = vec![Frame {
            node: start,
            child_idx: 0,
            cv,
            dv,
        }];
        // (V, DV) of the most recently completed child.
        let mut done: Option<(BitSet, BitSet)> = None;
        loop {
            let frame = stack.last_mut().expect("non-empty until return");
            // Fold the child that just completed into the accumulators.
            if let Some((v_w, dv_w)) = done.take() {
                frame.cv.or_assign(&v_w);
                frame.dv.or_assign(&dv_w);
                self.pool.push(v_w);
                self.pool.push(dv_w);
            }
            let kids = self.tree.node(frame.node).child_ids();
            if frame.child_idx < kids.len() {
                let child = kids[frame.child_idx];
                frame.child_idx += 1;
                let (cv, dv) = (self.alloc(), self.alloc());
                stack.push(Frame {
                    node: child,
                    child_idx: 0,
                    cv,
                    dv,
                });
                continue;
            }
            // All children folded: compute V at this node.
            let frame = stack.pop().expect("just peeked");
            let keep_cv = stack.is_empty();
            let cv_root = if keep_cv {
                Some(frame.cv.clone())
            } else {
                None
            };
            let (v, dv) = self.compute_node(frame);
            if let Some(cv) = cv_root {
                return (v, cv, dv);
            }
            done = Some((v, dv));
        }
    }

    /// Computes the `V` vector at a node from its accumulated `CV`/`DV`,
    /// updating `DV` with `V` (paper, Fig. 3b lines 6–17).
    fn compute_node(&mut self, frame: Frame) -> (BitSet, BitSet) {
        self.nodes += 1;
        let Frame {
            node, cv, mut dv, ..
        } = frame;
        let n = self.tree.node(node);
        let mut v = self.alloc();
        for (i, op) in self.q.ops.iter().enumerate() {
            let value = match op {
                Op::True => true,
                // A virtual node has no label/text of its own.
                Op::LabelIs(l) => !n.kind.is_virtual() && Some(n.label) == *l,
                Op::TextIs(s) => !n.kind.is_virtual() && n.text.as_deref() == Some(s.as_ref()),
                Op::Child(j) => cv.get(*j as usize),
                Op::Desc(j) => dv.get(*j as usize),
                Op::Or(a, b) => v.get(*a as usize) || v.get(*b as usize),
                Op::And(a, b) => v.get(*a as usize) && v.get(*b as usize),
                Op::Not(a) => !v.get(*a as usize),
            };
            v.set(i, value);
            if value {
                dv.set(i, true); // line 17: DV := V ∨ DV
            }
        }
        self.pool.push(cv);
        (v, dv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_query::{compile, parse_query};

    fn eval(xml: &str, q: &str) -> bool {
        let tree = Tree::parse(xml).unwrap();
        let compiled = compile(&parse_query(q).unwrap());
        centralized_eval(&tree, &compiled)
    }

    #[test]
    fn descendant_queries() {
        assert!(eval("<a><b><c/></b></a>", "[//c]"));
        assert!(!eval("<a><b><c/></b></a>", "[//z]"));
        // Descendant-or-self includes the root itself.
        assert!(eval("<a/>", "[label() = a]"));
        assert!(eval("<a><b/></a>", "[//b]"));
    }

    #[test]
    fn child_vs_descendant() {
        let xml = "<a><b><c/></b></a>";
        assert!(eval(xml, "[b]"));
        assert!(!eval(xml, "[c]"), "c is not a child of the root");
        assert!(eval(xml, "[b/c]"));
        assert!(eval(xml, "[//c]"));
        assert!(eval(xml, "[*/c]"));
        assert!(!eval(xml, "[*/*/c]"));
    }

    #[test]
    fn text_predicates() {
        let xml = r#"<stocks><stock><code>GOOG</code></stock></stocks>"#;
        assert!(eval(xml, "[//stock/code/text() = \"GOOG\"]"));
        assert!(!eval(xml, "[//stock/code/text() = \"YHOO\"]"));
        assert!(eval(xml, "[//code = \"GOOG\"]"));
    }

    #[test]
    fn boolean_connectives() {
        let xml = "<r><a/><b/></r>";
        assert!(eval(xml, "[//a and //b]"));
        assert!(!eval(xml, "[//a and //c]"));
        assert!(eval(xml, "[//a or //c]"));
        assert!(eval(xml, "[not //c]"));
        assert!(!eval(xml, "[not //a]"));
        assert!(eval(xml, "[//a and not(//c and //b)]"));
    }

    #[test]
    fn qualifiers() {
        let xml = r#"<portfolio>
            <broker><name>Bache</name><stock><code>IBM</code></stock></broker>
            <broker><name>ML</name><stock><code>GOOG</code></stock></broker>
        </portfolio>"#;
        assert!(eval(xml, "[//broker[name/text() = \"Bache\"]]"));
        assert!(eval(
            xml,
            "[//broker[name/text() = \"Bache\"][//code = \"IBM\"]]"
        ));
        assert!(!eval(
            xml,
            "[//broker[name/text() = \"Bache\"][//code = \"GOOG\"]]"
        ));
        assert!(eval(xml, "[//broker[not(//code = \"IBM\")]]"));
    }

    #[test]
    fn paper_intro_example() {
        // Fig. 1(a): tags A and B occur in separate subtrees; Q = [//A ∧ //B].
        let xml = "<r><x><z><A/></z></x><y><B/></y></r>";
        assert!(eval(xml, "[//A ∧ //B]"));
        assert!(!eval(xml, "[//A ∧ //C]"));
    }

    #[test]
    fn paper_stock_example() {
        let xml = r#"<portofolio>
          <broker><name>Bache</name>
            <market><title>NYSE</title>
              <stock><code>IBM</code><buy>80</buy><sell>78</sell></stock>
            </market>
          </broker>
          <broker><name>Merill Lynch</name>
            <market><name>NASDAQ</name>
              <stock><code>GOOG</code><buy>374</buy><sell>373</sell></stock>
            </market>
          </broker>
        </portofolio>"#;
        assert!(eval(
            xml,
            "[//stock[code/text() = \"GOOG\" and sell/text() = \"373\"]]"
        ));
        assert!(!eval(
            xml,
            "[//stock[code/text() = \"GOOG\" and sell/text() = \"376\"]]"
        ));
        assert!(eval(xml, "[/portofolio/broker/name = \"Merill Lynch\"]"));
        assert!(!eval(xml, "[/portofolio/broker/name = \"Goldman\"]"));
    }

    #[test]
    fn wildcard_and_self() {
        let xml = "<r><a><b/></a></r>";
        assert!(eval(xml, "[*]"));
        assert!(eval(xml, "[./a]"));
        assert!(eval(xml, "[*[b]]"));
        assert!(!eval(xml, "[*[c]]"));
    }

    #[test]
    fn work_units_scale() {
        let tree = Tree::parse("<a><b/><c/><d/></a>").unwrap();
        let q = compile(&parse_query("[//b]").unwrap());
        let run = centralized_eval_counted(&tree, &q);
        assert_eq!(run.work_units, 4 * q.len() as u64);
        assert!(run.answer);
    }

    #[test]
    fn virtual_nodes_are_opaque() {
        let mut tree = Tree::parse("<a><b/></a>").unwrap();
        let r = tree.root();
        tree.add_virtual_child(r, parbox_xml::FragmentId(1));
        let q = compile(&parse_query("[//parbox:virtual]").unwrap());
        assert!(
            !centralized_eval(&tree, &q),
            "virtual nodes satisfy nothing"
        );
        let q = compile(&parse_query("[//b]").unwrap());
        assert!(centralized_eval(&tree, &q));
    }

    #[test]
    fn deep_tree_no_stack_overflow() {
        let mut xml = String::new();
        for _ in 0..50_000 {
            xml.push_str("<d>");
        }
        xml.push_str("<leaf/>");
        for _ in 0..50_000 {
            xml.push_str("</d>");
        }
        let tree = Tree::parse(&xml).unwrap();
        let q = compile(&parse_query("[//leaf]").unwrap());
        assert!(centralized_eval(&tree, &q));
    }

    #[test]
    fn nested_negation_with_descendants() {
        let xml = "<r><a><x/></a><b/></r>";
        // ¬(//a[//x]) is false (it exists), so outer not(...) and //b.
        assert!(!eval(xml, "[not(//a[//x])]"));
        assert!(eval(xml, "[not(//a[//y]) and //b]"));
    }
}

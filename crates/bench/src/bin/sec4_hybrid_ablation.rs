//! Regenerates the **Section 4** Hybrid tipping-point ablation: sweep
//! card(F) across |T| / |q| and watch HybridParBoX switch branches. The
//! decisive quantity is *communication*: ParBoX ships O(|q|·card(F))
//! bytes, NaiveCentralized ships O(|T|); Hybrid must track the minimum.

use parbox_bench::experiments::sec4_hybrid_ablation;
use parbox_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let steps = [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let rows = sec4_hybrid_ablation(scale, &steps);
    println!(
        "## Section 4 — Hybrid tipping point (corpus {} bytes)",
        scale.corpus_bytes
    );
    println!(
        "{:>9} {:>32} {:>14} {:>14} {:>10}",
        "card(F)", "hybrid chose", "ParBoX (B)", "Naive (B)", "hybrid (B)"
    );
    let mut xs: Vec<u64> = rows.iter().map(|r| r.x as u64).collect();
    xs.sort();
    xs.dedup();
    for x in xs {
        let find = |prefix: &str| {
            rows.iter()
                .find(|r| r.x as u64 == x && r.series.starts_with(prefix))
        };
        let hybrid = find("HybridParBoX").expect("hybrid row");
        let pb = find("ParBoX(forced)").expect("parbox row");
        let nc = find("NaiveCentralized(forced)").expect("naive row");
        println!(
            "{:>9} {:>32} {:>14} {:>14} {:>10}",
            x,
            hybrid.series.as_str(),
            pb.bytes,
            nc.bytes,
            hybrid.bytes
        );
    }
}

//! Regenerates **Fig. 9**: query satisfied at the root fragment (qF0) on
//! the FT2 chain — ParBoX vs FullDistParBoX vs LazyParBoX.

use parbox_bench::experiments::{experiment2, Target};
use parbox_bench::{print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = experiment2(scale, 10, Target::Root);
    print_table(
        &format!(
            "Fig. 9 — query qF0 on the FT2 chain (corpus {} bytes)",
            scale.corpus_bytes
        ),
        "machines",
        &rows,
    );
}

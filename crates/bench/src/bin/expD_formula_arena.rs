//! **Experiment D**: the hash-consed formula arena vs the seed tree
//! representation on the formula-path kernel — by default a
//! 2048-fragment wide-fan-out star deployed over 64 sites, with 8
//! coordinator solve passes, plus a wire-format sweep over the
//! expA–expC fragment-tree shapes.
//!
//! Usage:
//! `cargo run --release -p parbox-bench --bin expD_formula_arena \
//!    [--scale BYTES] [--sites N] [--fragments N] [--solves N] [--json PATH]`
//!
//! `--json PATH` additionally writes the measured row as a JSON object
//! (the CI workflow uploads it as the formula-kernel artifact). The
//! binary asserts the ISSUE acceptance criteria: ≥2x speedup over the
//! seed representation, byte-identical answers (checked inside the
//! experiment), and a DAG wire encoding never larger than the tree
//! encoding on any measured workload.

// The experiment is named expD in the issue tracker; keep the binary name.
#![allow(non_snake_case)]

use parbox_bench::experiments::{expd_dag_bytes_on_workloads, expd_formula_arena, ExpDRow};
use parbox_bench::Scale;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn to_json(r: &ExpDRow, wire: &[(String, usize, usize)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"expD_formula_arena\",\n");
    out.push_str(&format!("  \"fragments\": {},\n", r.fragments));
    out.push_str(&format!("  \"sites\": {},\n", r.sites));
    out.push_str(&format!("  \"qlist\": {},\n", r.qlist));
    out.push_str(&format!("  \"solve_repeats\": {},\n", r.solve_repeats));
    out.push_str(&format!("  \"arena_s\": {:.6},\n", r.arena_s));
    out.push_str(&format!("  \"seed_s\": {:.6},\n", r.seed_s));
    out.push_str(&format!("  \"speedup\": {:.3},\n", r.speedup));
    out.push_str(&format!(
        "  \"tree_triplet_bytes\": {},\n",
        r.tree_triplet_bytes
    ));
    out.push_str(&format!(
        "  \"dag_triplet_bytes\": {},\n",
        r.dag_triplet_bytes
    ));
    out.push_str(&format!(
        "  \"envelope_tree_bytes\": {},\n",
        r.envelope_tree_bytes
    ));
    out.push_str(&format!(
        "  \"envelope_dag_bytes\": {},\n",
        r.envelope_dag_bytes
    ));
    out.push_str("  \"workload_wire_bytes\": [\n");
    for (i, (name, tree, dag)) in wire.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{name}\", \"tree_bytes\": {tree}, \"dag_bytes\": {dag}}}{}\n",
            if i + 1 < wire.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let scale = Scale::from_args();
    let sites: usize = flag("--sites").and_then(|v| v.parse().ok()).unwrap_or(64);
    let fragments: usize = flag("--fragments")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2048);
    let solves: usize = flag("--solves").and_then(|v| v.parse().ok()).unwrap_or(8);

    let row = expd_formula_arena(scale, sites, fragments, solves);
    println!(
        "Experiment D — hash-consed formula arena vs seed tree representation \
         ({} fragments, {} sites, |QList|={}, {} solves)",
        row.fragments, row.sites, row.qlist, row.solve_repeats
    );
    println!(
        "  kernel: arena {:.4}s vs seed {:.4}s ({:.1}x)",
        row.arena_s, row.seed_s, row.speedup
    );
    println!(
        "  triplet wire bytes: DAG {} vs tree {} ({:.1}% of tree)",
        row.dag_triplet_bytes,
        row.tree_triplet_bytes,
        100.0 * row.dag_triplet_bytes as f64 / row.tree_triplet_bytes.max(1) as f64
    );
    println!(
        "  envelope wire bytes: DAG {} vs tree {}",
        row.envelope_dag_bytes, row.envelope_tree_bytes
    );

    let wire_rows = expd_dag_bytes_on_workloads(scale);
    println!("  expA–expC workload sweep (DAG must never exceed tree):");
    let mut wire = Vec::new();
    for w in &wire_rows {
        println!(
            "    {:<24} tree {:>8} B   dag {:>8} B",
            w.workload, w.tree_bytes, w.dag_bytes
        );
        assert!(
            w.dag_bytes <= w.tree_bytes,
            "{}: DAG {} > tree {}",
            w.workload,
            w.dag_bytes,
            w.tree_bytes
        );
        wire.push((w.workload.clone(), w.tree_bytes, w.dag_bytes));
    }

    assert!(
        row.speedup >= 2.0,
        "acceptance: arena must be ≥2x the seed representation, got {:.2}x",
        row.speedup
    );
    assert!(row.dag_triplet_bytes <= row.tree_triplet_bytes);
    assert!(row.envelope_dag_bytes <= row.envelope_tree_bytes);

    if let Some(path) = flag("--json") {
        std::fs::write(&path, to_json(&row, &wire))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  json row written to {path}");
    }
}

//! The two naive baselines of Section 3.
//!
//! * [`naive_centralized`] ships every fragment to the coordinating site
//!   and runs the optimal centralized algorithm there. Computation is
//!   `O(|q||T|)` but communication is `O(|T|)` — the whole document
//!   crosses the network on every query.
//! * [`naive_distributed`] performs the centralized bottom-up traversal
//!   *distributedly*, passing control between sites along the source
//!   tree. No fragment is shipped, but execution is sequential and a site
//!   is visited once per fragment it stores.

use crate::algorithms::{query_wire_size, resolved_triplet_wire_size, EvalOutcome};
use crate::eval::{bottom_up, centralized_eval_counted};
use parbox_bool::{Formula, ResolvedTriplet, Var};
use parbox_net::{Cluster, MessageKind, RunReport};
use parbox_query::CompiledQuery;
use parbox_xml::FragmentId;
use std::collections::HashMap;
use std::time::Instant;

/// `NaiveCentralized`: collect all fragments at the coordinator, then run
/// the centralized evaluator over the reassembled document.
pub fn naive_centralized(cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
    let wall = Instant::now();
    let mut report = RunReport::new();
    let coord = cluster.coordinator();

    // Every remote site is visited once and ships its fragments.
    let mut shipped: Vec<usize> = Vec::new();
    for site in cluster.sites() {
        report.record_visit(site);
        if site == coord {
            continue;
        }
        for frag in cluster.fragments_at(site) {
            let bytes = cluster.forest.fragment(frag).byte_size();
            report.record_message(site, coord, bytes, MessageKind::Data);
            shipped.push(bytes);
        }
    }

    // Reassemble and evaluate at the coordinator. (Reassembly stands in
    // for receiving + stitching the fragments; only evaluation is timed,
    // transfer is costed by the network model.)
    let whole = cluster.forest.reassemble();
    let eval_start = Instant::now();
    let run = centralized_eval_counted(&whole, q);
    let eval_time = eval_start.elapsed();
    report.record_compute(coord, eval_time);
    report.record_work(coord, run.work_units);

    report.elapsed_model_s =
        cluster.model.shared_link_time(shipped.iter().copied()) + eval_time.as_secs_f64();
    report.elapsed_wall_s = wall.elapsed().as_secs_f64();

    EvalOutcome {
        answer: run.answer,
        report,
        algorithm: "NaiveCentralized",
    }
}

/// `NaiveDistributed`: a distributed bottom-up traversal of the document.
///
/// Control moves along the source tree: a fragment can only be processed
/// after all its sub-fragments have finished (the computation is passed
/// "forth and back"), so execution is fully sequential and a site is
/// visited `card(F_Si)` times. Each finished fragment returns its
/// resolved `O(|q|)` result vectors to the site of its parent fragment.
pub fn naive_distributed(cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
    let wall = Instant::now();
    let mut report = RunReport::new();
    let qsize = query_wire_size(q);
    let st = &cluster.source_tree;
    let mut resolved: HashMap<FragmentId, ResolvedTriplet> = HashMap::new();
    let mut model_time = 0.0f64;

    for &frag in st.postorder() {
        let here = st.site_of(frag);
        // Control (and the query) arrives from the parent fragment's site.
        report.record_visit(here);
        let from = st.entry(frag).parent.map(|p| st.site_of(p)).unwrap_or(here);
        if from != here {
            report.record_message(from, here, qsize, MessageKind::Query);
            model_time += cluster.model.transfer_time(qsize);
        }

        // Sequential evaluation of this fragment.
        let start = Instant::now();
        let run = bottom_up(&cluster.forest.fragment(frag).tree, q);
        // Children are already resolved: close the triplet immediately.
        let closed = run
            .triplet
            .substitute(&|var: Var| {
                resolved
                    .get(&var.frag)
                    .map(|r| Formula::constant(r.value_of(var)))
            })
            .resolved()
            .expect("postorder guarantees children resolved");
        let elapsed = start.elapsed();
        report.record_compute(here, elapsed);
        report.record_work(here, run.work_units);
        model_time += elapsed.as_secs_f64();

        // Return the resolved result vectors to the parent's site.
        if from != here {
            let bytes = resolved_triplet_wire_size(q.len());
            report.record_message(here, from, bytes, MessageKind::Triplet);
            model_time += cluster.model.transfer_time(bytes);
        }
        resolved.insert(frag, closed);
    }

    let root = cluster.forest.root_fragment();
    let answer = resolved[&root].v[q.root() as usize];
    report.elapsed_model_s = model_time;
    report.elapsed_wall_s = wall.elapsed().as_secs_f64();
    EvalOutcome {
        answer,
        report,
        algorithm: "NaiveDistributed",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::parbox;
    use parbox_frag::{Forest, Placement, SiteId};
    use parbox_net::NetworkModel;
    use parbox_query::{compile, parse_query};
    use parbox_xml::Tree;

    /// Fig. 2 shape: F0 ⊃ {F1 ⊃ {F2}, F3}, sites S0, S1, S2={F2,F3}.
    fn fig2() -> (Forest, Placement) {
        // Padding makes fragment byte sizes realistic relative to the
        // O(|q|) triplets (real documents are MBs, triplets are bytes).
        let pad: String = (0..40)
            .map(|i| format!("<pad>row {i} data</pad>"))
            .collect();
        let tree = Tree::parse(&format!(
            "<portfolio>\
               <broker><name>Bache</name><market><title>NYSE</title>{pad}\
                 <stock><code>IBM</code><sell>78</sell></stock></market></broker>\
               <broker2><market2>{pad}<stock><code>GOOG</code><sell>373</sell>{pad}</stock>\
                 </market2></broker2>\
             </portfolio>",
        ))
        .unwrap();
        let mut forest = Forest::from_tree(tree);
        let f0 = forest.root_fragment();
        let find = |forest: &Forest, frag, label: &str| {
            let t = &forest.fragment(frag).tree;
            t.descendants(t.root())
                .find(|&n| t.label_str(n) == label)
                .unwrap()
        };
        let b2 = find(&forest, f0, "broker2");
        let f1 = forest.split(f0, b2).unwrap();
        let stock = find(&forest, f1, "stock");
        let f2 = forest.split(f1, stock).unwrap();
        let market = find(&forest, f0, "market");
        let f3 = forest.split(f0, market).unwrap();

        let mut p = Placement::new();
        p.assign(f0, SiteId(0));
        p.assign(f1, SiteId(1));
        p.assign(f2, SiteId(2));
        p.assign(f3, SiteId(2));
        (forest, p)
    }

    const QUERIES: &[&str] = &[
        "[//stock[code/text() = \"GOOG\" and sell/text() = \"373\"]]",
        "[//stock[code/text() = \"GOOG\" and sell/text() = \"376\"]]",
        "[//broker[name/text() = \"Bache\"]]",
        "[//code = \"IBM\" and //code = \"GOOG\"]",
        "[not(//code = \"MSFT\")]",
        "[/portfolio/broker/market/title = \"NYSE\"]",
    ];

    #[test]
    fn all_three_algorithms_agree() {
        let (forest, placement) = fig2();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for src in QUERIES {
            let q = compile(&parse_query(src).unwrap());
            let a = naive_centralized(&cluster, &q).answer;
            let b = naive_distributed(&cluster, &q).answer;
            let c = parbox(&cluster, &q).answer;
            assert_eq!(a, b, "naive mismatch on {src}");
            assert_eq!(a, c, "parbox mismatch on {src}");
        }
    }

    #[test]
    fn naive_centralized_ships_the_data() {
        let (forest, placement) = fig2();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//code = \"IBM\"]").unwrap());
        let out = naive_centralized(&cluster, &q);
        let data = out.report.bytes_of_kind(MessageKind::Data);
        // All bytes of the three remote fragments crossed the network.
        let remote: usize = [1u32, 2, 3]
            .iter()
            .map(|&i| forest.fragment(parbox_xml::FragmentId(i)).byte_size())
            .sum();
        assert_eq!(data, remote);
        // ParBoX ships orders of magnitude less.
        let pb = parbox(&cluster, &q).report.total_bytes();
        assert!(pb < data, "parbox {pb} >= naive {data}");
    }

    #[test]
    fn naive_distributed_visits_sites_per_fragment() {
        let (forest, placement) = fig2();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//code = \"IBM\"]").unwrap());
        let out = naive_distributed(&cluster, &q);
        // S2 holds two fragments → visited twice (the paper's complaint).
        assert_eq!(out.report.site(SiteId(2)).visits, 2);
        assert_eq!(out.report.site(SiteId(0)).visits, 1);
        // Work is still O(|q||T|): same as ParBoX's evaluation work.
        let pb = parbox(&cluster, &q);
        let solve_overhead = (q.len() * forest.card()) as u64;
        assert_eq!(
            out.report.total_work() + solve_overhead,
            pb.report.total_work()
        );
    }

    #[test]
    fn naive_distributed_traffic_is_query_sized() {
        let (forest, placement) = fig2();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//code = \"IBM\"]").unwrap());
        let out = naive_distributed(&cluster, &q);
        assert_eq!(out.report.bytes_of_kind(MessageKind::Data), 0);
        // Bounded by O(|q| · card(F)).
        let bound = (query_wire_size(&q) + resolved_triplet_wire_size(q.len())) * forest.card();
        assert!(out.report.total_bytes() <= bound);
    }

    #[test]
    fn naive_centralized_on_local_cluster_has_no_traffic() {
        let (forest, _) = fig2();
        let placement = Placement::single_site(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//code = \"IBM\"]").unwrap());
        let out = naive_centralized(&cluster, &q);
        assert!(out.answer);
        assert_eq!(out.report.total_bytes(), 0);
    }
}

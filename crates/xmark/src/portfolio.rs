//! Generator for the paper's running example: the stock portfolio of
//! Fig. 1(b) — brokers trading stocks in possibly overlapping markets,
//! each stock with a code, a buy price and a sell price.

use parbox_xml::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`portfolio`].
#[derive(Debug, Clone, Copy)]
pub struct PortfolioConfig {
    /// Number of brokers.
    pub brokers: usize,
    /// Markets per broker.
    pub markets_per_broker: usize,
    /// Stocks per market.
    pub stocks_per_market: usize,
    /// RNG seed (prices are random; codes cycle deterministically).
    pub seed: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            brokers: 2,
            markets_per_broker: 2,
            stocks_per_market: 3,
            seed: 1,
        }
    }
}

/// Broker names used round-robin (the paper's Merill Lynch and Bache
/// first).
pub const BROKERS: [&str; 5] = ["Merill Lynch", "Bache", "Vanguard", "Nomura", "Baring"];
/// Market names used round-robin.
pub const MARKETS: [&str; 4] = ["NASDAQ", "NYSE", "LSE", "TSE"];
/// Stock ticker codes used round-robin (the paper's tickers first).
pub const CODES: [&str; 8] = ["GOOG", "YHOO", "IBM", "AAPL", "HPQ", "MSFT", "ORCL", "TSLA"];

/// Generates a `portofolio` document (the paper's spelling) shaped like
/// Fig. 1(b).
pub fn portfolio(config: PortfolioConfig) -> Tree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut tree = Tree::new("portofolio");
    let root = tree.root();
    let mut code_idx = 0usize;
    for b in 0..config.brokers {
        let broker = tree.add_child(root, "broker");
        tree.add_text_child(broker, "name", BROKERS[b % BROKERS.len()]);
        for m in 0..config.markets_per_broker {
            let market = tree.add_child(broker, "market");
            tree.add_text_child(market, "name", MARKETS[(b + m) % MARKETS.len()]);
            for _ in 0..config.stocks_per_market {
                let code = CODES[code_idx % CODES.len()];
                code_idx += 1;
                add_stock(&mut tree, market, code, &mut rng);
            }
        }
    }
    tree
}

/// Appends one `<stock>` with code, buy and sell prices.
pub fn add_stock(tree: &mut Tree, market: NodeId, code: &str, rng: &mut StdRng) -> NodeId {
    let stock = tree.add_child(market, "stock");
    tree.add_text_child(stock, "code", code);
    let buy = rng.random_range(30..400u32);
    tree.add_text_child(stock, "buy", &buy.to_string());
    let sell = buy + rng.random_range(0..6u32) - 2;
    tree.add_text_child(stock, "sell", &sell.to_string());
    stock
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_query::{compile, parse_query};

    #[test]
    fn shape_matches_fig_1b() {
        let t = portfolio(PortfolioConfig::default());
        assert_eq!(t.label_str(t.root()), "portofolio");
        let brokers: Vec<_> = t.children(t.root()).collect();
        assert_eq!(brokers.len(), 2);
        // Each broker: name + 2 markets.
        assert_eq!(t.children(brokers[0]).count(), 3);
        t.validate().unwrap();
    }

    #[test]
    fn paper_queries_run_against_it() {
        let t = portfolio(PortfolioConfig::default());
        let q = compile(
            &parse_query("[//broker[name/text() = \"Merill Lynch\"] and //stock/code = \"GOOG\"]")
                .unwrap(),
        );
        // GOOG is the first ticker, Merill Lynch the first broker.
        assert!(parbox_core_stub::centralized(&t, &q));
    }

    #[test]
    fn deterministic() {
        let a = portfolio(PortfolioConfig::default());
        let b = portfolio(PortfolioConfig::default());
        assert!(a.structural_eq(&b));
    }

    /// Minimal local oracle to avoid a dev-dependency cycle on
    /// `parbox-core`: counts descendants satisfying simple conditions by
    /// delegating to the compiled-query semantics via brute force.
    mod parbox_core_stub {
        use parbox_query::{CompiledQuery, Op};
        use parbox_xml::{NodeId, Tree};

        pub fn centralized(tree: &Tree, q: &CompiledQuery) -> bool {
            let r = q.resolve(tree.labels());
            eval(tree, tree.root(), &r).0[r.root as usize]
        }

        // (V, DV) by naive recursion — fine for test-sized trees.
        fn eval(
            tree: &Tree,
            node: NodeId,
            q: &parbox_query::ResolvedQuery,
        ) -> (Vec<bool>, Vec<bool>) {
            let m = q.ops.len();
            let mut cv = vec![false; m];
            let mut dv = vec![false; m];
            for c in tree.children(node) {
                let (v_w, dv_w) = eval(tree, c, q);
                for i in 0..m {
                    cv[i] |= v_w[i];
                    dv[i] |= dv_w[i];
                }
            }
            let n = tree.node(node);
            let mut v = vec![false; m];
            for (i, op) in q.ops.iter().enumerate() {
                v[i] = match op {
                    Op::True => true,
                    Op::LabelIs(l) => Some(n.label) == *l,
                    Op::TextIs(s) => n.text.as_deref() == Some(s.as_ref()),
                    Op::Child(j) => cv[*j as usize],
                    Op::Desc(j) => dv[*j as usize],
                    Op::Or(a, b) => v[*a as usize] || v[*b as usize],
                    Op::And(a, b) => v[*a as usize] && v[*b as usize],
                    Op::Not(a) => !v[*a as usize],
                };
                dv[i] |= v[i];
            }
            (v, dv)
        }
    }
}

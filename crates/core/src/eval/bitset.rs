//! Word-parallel bitset kernels — the data-level hot path of the
//! evaluators.
//!
//! The centralized evaluator and the selection pass keep three Boolean
//! vectors of width `|QList|` per live traversal frame; packing them
//! into `u64` words turns per-node child accumulation (`CV |= V_w`,
//! `DV |= DV_w`) into a handful of word ORs. The bulk kernels
//! ([`BitSet::or_assign`], [`BitSet::and_assign`],
//! [`BitSet::count_ones`], [`BitSet::any_intersect`]) process words in
//! chunks of four so LLVM autovectorizes them; [`BitSet::iter_ones`]
//! walks set bits with `trailing_zeros`, skipping zero words entirely.
//!
//! Width is fixed at construction; binary kernels require equal widths
//! (checked in debug builds). Bits between `width` and the last word
//! boundary are kept zero by every operation, so `count_ones`/
//! `is_empty` never see padding.

/// Fixed-width bitset backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    width: usize,
}

impl BitSet {
    /// All-zero set of `width` bits.
    pub fn zeros(width: usize) -> BitSet {
        BitSet {
            words: vec![0; width.div_ceil(64)],
            width,
        }
    }

    /// Builds a set from a slice of bools (bit `i` = `bits[i]`).
    pub fn from_bools(bits: &[bool]) -> BitSet {
        let mut out = BitSet::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            out.set(i, b);
        }
        out
    }

    /// The number of addressable bits (fixed at construction).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// True when no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`. Branchless: clears the bit, then ORs the value
    /// in — the per-op loops of the evaluators call this for every
    /// `(node, sub-query)` pair, so a data-dependent branch here is a
    /// misprediction farm.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        let w = &mut self.words[i / 64];
        let bit = (i % 64) as u32;
        *w = (*w & !(1u64 << bit)) | (u64::from(value) << bit);
    }

    /// `self |= other` (widths must match).
    #[inline]
    pub fn or_assign(&mut self, other: &BitSet) {
        debug_assert_eq!(self.width, other.width);
        let mut a = self.words.chunks_exact_mut(4);
        let mut b = other.words.chunks_exact(4);
        for (ca, cb) in (&mut a).zip(&mut b) {
            ca[0] |= cb[0];
            ca[1] |= cb[1];
            ca[2] |= cb[2];
            ca[3] |= cb[3];
        }
        for (x, y) in a.into_remainder().iter_mut().zip(b.remainder()) {
            *x |= *y;
        }
    }

    /// `self &= other` (widths must match).
    #[inline]
    pub fn and_assign(&mut self, other: &BitSet) {
        debug_assert_eq!(self.width, other.width);
        let mut a = self.words.chunks_exact_mut(4);
        let mut b = other.words.chunks_exact(4);
        for (ca, cb) in (&mut a).zip(&mut b) {
            ca[0] &= cb[0];
            ca[1] &= cb[1];
            ca[2] &= cb[2];
            ca[3] &= cb[3];
        }
        for (x, y) in a.into_remainder().iter_mut().zip(b.remainder()) {
            *x &= *y;
        }
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        let mut chunks = self.words.chunks_exact(4);
        let mut total = 0u64;
        for c in &mut chunks {
            total += u64::from(c[0].count_ones())
                + u64::from(c[1].count_ones())
                + u64::from(c[2].count_ones())
                + u64::from(c[3].count_ones());
        }
        for w in chunks.remainder() {
            total += u64::from(w.count_ones());
        }
        total as usize
    }

    /// True when `self ∩ other` is non-empty (widths must match); early
    /// exits per chunk without materializing the intersection.
    #[inline]
    pub fn any_intersect(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.width, other.width);
        let mut a = self.words.chunks_exact(4);
        let mut b = other.words.chunks_exact(4);
        for (ca, cb) in (&mut a).zip(&mut b) {
            if (ca[0] & cb[0]) | (ca[1] & cb[1]) | (ca[2] & cb[2]) | (ca[3] & cb[3]) != 0 {
                return true;
            }
        }
        a.remainder()
            .iter()
            .zip(b.remainder())
            .any(|(x, y)| x & y != 0)
    }

    /// Iterates the indices of set bits in ascending order; zero words
    /// cost one load each, set bits one `trailing_zeros` each.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    None
                } else {
                    let tz = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Copies `other` into `self` (widths must match).
    #[inline]
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.width, other.width);
        self.words.copy_from_slice(&other.words);
    }

    /// Clears all bits (for frame reuse).
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::zeros(130);
        assert!(!b.get(0));
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        b.set(64, false);
        assert!(!b.get(64));
        // Re-setting an already-set bit keeps it (branchless path).
        b.set(0, true);
        assert!(b.get(0));
    }

    #[test]
    fn or_assign_unions() {
        let mut a = BitSet::zeros(70);
        let mut b = BitSet::zeros(70);
        a.set(3, true);
        b.set(69, true);
        a.or_assign(&b);
        assert!(a.get(3) && a.get(69));
    }

    #[test]
    fn kernels_cover_chunked_and_remainder_words() {
        // 6 words: one full chunk of 4 plus 2 remainder words.
        let width = 6 * 64;
        let mut a = BitSet::zeros(width);
        let mut b = BitSet::zeros(width);
        for i in (0..width).step_by(3) {
            a.set(i, true);
        }
        for i in (0..width).step_by(5) {
            b.set(i, true);
        }
        let mut or = a.clone();
        or.or_assign(&b);
        let mut and = a.clone();
        and.and_assign(&b);
        for i in 0..width {
            assert_eq!(or.get(i), a.get(i) || b.get(i), "or bit {i}");
            assert_eq!(and.get(i), a.get(i) && b.get(i), "and bit {i}");
        }
        assert_eq!(or.count_ones(), (0..width).filter(|i| or.get(*i)).count());
        assert!(a.any_intersect(&b), "multiples of 15 intersect");
        let ones: Vec<usize> = and.iter_ones().collect();
        assert_eq!(ones, (0..width).step_by(15).collect::<Vec<_>>());
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let mut a = BitSet::zeros(300);
        let mut b = BitSet::zeros(300);
        a.set(0, true);
        a.set(299, true);
        b.set(1, true);
        b.set(298, true);
        assert!(!a.any_intersect(&b));
        b.set(299, true);
        assert!(a.any_intersect(&b));
    }

    #[test]
    fn width_and_emptiness() {
        let mut a = BitSet::zeros(97);
        assert_eq!(a.width(), 97);
        assert!(a.is_empty());
        assert_eq!(a.count_ones(), 0);
        a.set(96, true);
        assert!(!a.is_empty());
        assert_eq!(a.count_ones(), 1);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![96]);
    }

    #[test]
    fn from_bools_and_copy_from() {
        let bits: Vec<bool> = (0..130).map(|i| i % 7 == 0).collect();
        let a = BitSet::from_bools(&bits);
        assert_eq!(a.width(), 130);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(a.get(i), b);
        }
        let mut c = BitSet::zeros(130);
        c.set(1, true);
        c.copy_from(&a);
        assert_eq!(c, a);
        assert!(!c.get(1));
    }

    #[test]
    fn clear_resets() {
        let mut a = BitSet::zeros(10);
        a.set(7, true);
        a.clear();
        assert!(!a.get(7));
        assert!(a.is_empty());
    }
}

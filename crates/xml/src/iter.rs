//! Traversal iterators over [`Tree`].

use crate::{NodeId, Tree};

/// Preorder (document-order) traversal of a subtree, inclusive of the root.
pub struct Descendants<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl<'a> Descendants<'a> {
    pub(crate) fn new(tree: &'a Tree, start: NodeId) -> Self {
        Descendants {
            tree,
            stack: vec![start],
        }
    }
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children reversed so the leftmost child is visited first.
        let kids = self.tree.node(id).child_ids();
        self.stack.extend(kids.iter().rev().copied());
        Some(id)
    }
}

/// Postorder traversal (children before parents) — the order used by the
/// paper's `bottomUp` evaluation.
pub struct Postorder<'a> {
    tree: &'a Tree,
    // (node, next child index to expand)
    stack: Vec<(NodeId, usize)>,
}

impl<'a> Postorder<'a> {
    pub(crate) fn new(tree: &'a Tree, start: NodeId) -> Self {
        Postorder {
            tree,
            stack: vec![(start, 0)],
        }
    }
}

impl<'a> Iterator for Postorder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let &(id, child_idx) = self.stack.last()?;
            let kids = self.tree.node(id).child_ids();
            if child_idx < kids.len() {
                let child = kids[child_idx];
                self.stack.last_mut().expect("nonempty").1 += 1;
                self.stack.push((child, 0));
            } else {
                self.stack.pop();
                return Some(id);
            }
        }
    }
}

/// Proper ancestors of a node, nearest first.
pub struct Ancestors<'a> {
    tree: &'a Tree,
    cur: Option<NodeId>,
}

impl<'a> Ancestors<'a> {
    pub(crate) fn new(tree: &'a Tree, start: NodeId) -> Self {
        Ancestors {
            tree,
            cur: tree.node(start).parent(),
        }
    }
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.cur?;
        self.cur = self.tree.node(id).parent();
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tree;

    fn sample() -> Tree {
        // r -> (a -> (c, d), b)
        let mut t = Tree::new("r");
        let r = t.root();
        let a = t.add_child(r, "a");
        t.add_child(r, "b");
        t.add_child(a, "c");
        t.add_child(a, "d");
        t
    }

    #[test]
    fn preorder_is_document_order() {
        let t = sample();
        let labels: Vec<_> = t
            .descendants(t.root())
            .map(|n| t.label_str(n).to_string())
            .collect();
        assert_eq!(labels, vec!["r", "a", "c", "d", "b"]);
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = sample();
        let labels: Vec<_> = t
            .postorder(t.root())
            .map(|n| t.label_str(n).to_string())
            .collect();
        assert_eq!(labels, vec!["c", "d", "a", "b", "r"]);
    }

    #[test]
    fn postorder_on_leaf_is_singleton() {
        let t = sample();
        let b = t.children(t.root()).nth(1).unwrap();
        let got: Vec<_> = t.postorder(b).collect();
        assert_eq!(got, vec![b]);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let t = sample();
        let a = t.children(t.root()).next().unwrap();
        let c = t.children(a).next().unwrap();
        let names: Vec<_> = t.ancestors(c).map(|n| t.label_str(n).to_string()).collect();
        assert_eq!(names, vec!["a", "r"]);
        assert_eq!(t.ancestors(t.root()).count(), 0);
    }

    #[test]
    fn traversals_agree_on_count() {
        let t = sample();
        assert_eq!(
            t.descendants(t.root()).count(),
            t.postorder(t.root()).count()
        );
        assert_eq!(t.descendants(t.root()).count(), t.len());
    }
}

//! Shared property-test scaffolding: random documents, random XBL
//! queries, random fragmentations over a small common vocabulary, and
//! the network-model matrix the suites sweep. Used by
//! `tests/equivalence.rs`, `tests/batch_equivalence.rs`,
//! `tests/guarantees.rs` and `tests/serve.rs`.

// Each integration-test crate compiles its own copy of this module and
// uses a subset of it; unused items in one crate are used by another.
#![allow(dead_code)]

use parbox::frag::Forest;
use parbox::net::NetworkModel;
use parbox::query::{Path, Query};
use parbox::xml::{NodeId, Tree};
use proptest::prelude::*;

/// The network cost models every equivalence/guarantee suite sweeps: the
/// paper's 100 Mbit LAN, the introduction's WAN setting, and the free
/// network that isolates pure computation. Correctness and the visit /
/// traffic guarantees must hold under all three (the model only scales
/// *modeled elapsed time*, never behaviour).
pub fn network_models() -> [(&'static str, NetworkModel); 3] {
    [
        ("lan", NetworkModel::lan()),
        ("wan", NetworkModel::wan()),
        ("infinite", NetworkModel::infinite()),
    ]
}

/// Label vocabulary shared by documents and queries.
pub const LABELS: [&str; 5] = ["a", "b", "c", "d", "e"];
/// Text-value vocabulary shared by documents and queries.
pub const TEXTS: [&str; 4] = ["x", "7", "3.5", "z"];

/// Strategy for a small labelled tree with optional text.
pub fn tree_strategy() -> impl Strategy<Value = Tree> {
    // A tree is encoded as a preorder list of (depth, label, text?) rows.
    let row = (
        0usize..4,
        0usize..LABELS.len(),
        proptest::option::of(0usize..TEXTS.len()),
    );
    proptest::collection::vec(row, 0..40).prop_map(|rows| {
        let mut tree = Tree::new("root");
        // Stack of (depth, node).
        let mut stack: Vec<(usize, NodeId)> = vec![(0, tree.root())];
        for (depth, label, text) in rows {
            // Children of root start at depth 1; a requested depth deeper
            // than possible clamps naturally by attaching to the current
            // deepest node.
            let depth = depth + 1;
            while stack
                .last()
                .map(|&(d, _)| d + 1 > depth && d > 0)
                .unwrap_or(false)
            {
                stack.pop();
            }
            let parent = stack.last().expect("root never popped").1;
            let node = tree.add_child(parent, LABELS[label]);
            if let Some(t) = text {
                tree.set_text(node, TEXTS[t]);
            }
            stack.push((stack.last().unwrap().0 + 1, node));
        }
        tree
    })
}

/// Strategy for a small XBL query over the same vocabulary.
pub fn query_strategy() -> impl Strategy<Value = Query> {
    let leaf = prop_oneof![
        (0usize..LABELS.len()).prop_map(|i| Query::Path(Path::empty().desc().child(LABELS[i]))),
        (0usize..LABELS.len()).prop_map(|i| Query::Path(Path::empty().child(LABELS[i]))),
        (0usize..LABELS.len(), 0usize..TEXTS.len()).prop_map(|(i, t)| Query::TextEq(
            Path::empty().desc().child(LABELS[i]),
            TEXTS[t].to_string()
        )),
        (0usize..LABELS.len()).prop_map(|i| Query::LabelEq(LABELS[i].to_string())),
        Just(Query::Path(
            Path::empty().desc().then(parbox::query::Step::Wildcard)
        )),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Query::not),
            (0usize..LABELS.len(), inner.clone())
                .prop_map(|(i, q)| Query::Path(Path::empty().desc().child(LABELS[i]).filter(q))),
        ]
    })
}

/// Random fragmentation: pick up to `cuts` random non-root nodes and
/// split them off, in sequence, wherever they currently live.
pub fn fragment_randomly(tree: Tree, cut_seeds: &[usize]) -> Forest {
    let mut forest = Forest::from_tree(tree);
    for &seed in cut_seeds {
        let frags: Vec<_> = forest.fragment_ids().collect();
        let frag = frags[seed % frags.len()];
        let candidates: Vec<NodeId> = {
            let t = &forest.fragment(frag).tree;
            t.descendants(t.root())
                .skip(1)
                .filter(|&n| !t.node(n).kind.is_virtual())
                .collect()
        };
        if candidates.is_empty() {
            continue;
        }
        let node = candidates[(seed / 7) % candidates.len()];
        forest.split(frag, node).expect("valid cut");
    }
    forest
}

//! Serving a live query/update stream from a resident engine.
//!
//! The one-shot algorithms spawn fresh site threads per query; a serving
//! deployment keeps every site resident. This example deploys the
//! portfolio document once, then demonstrates the three serving-engine
//! behaviours: admission batching, triplet-cache hits on repeated
//! queries (zero data-plane messages), and update routing that
//! invalidates exactly one fragment's cache entries.
//!
//! Run with: `cargo run --example serve`

use parbox::core::Update;
use parbox::prelude::*;

fn main() {
    // 1. The Fig. 1(b) portfolio, fragmented per broker (as in the
    //    quickstart), deployed once onto persistent site workers.
    let tree = Tree::parse(
        r#"<portofolio>
             <broker>
               <name>Merill Lynch</name>
               <market><name>NASDAQ</name>
                 <stock><code>GOOG</code><buy>374</buy><sell>373</sell></stock>
                 <stock><code>YHOO</code><buy>33</buy><sell>35</sell></stock>
               </market>
             </broker>
             <broker>
               <name>Bache</name>
               <market><name>NYSE</name>
                 <stock><code>IBM</code><buy>80</buy><sell>78</sell></stock>
               </market>
             </broker>
           </portofolio>"#,
    )
    .expect("valid XML");
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let brokers: Vec<_> = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).collect()
    };
    for broker in brokers {
        forest.split(f0, broker).expect("splittable");
    }
    let placement = Placement::one_per_fragment(&forest);
    let mut engine =
        Engine::new(forest, placement, EngineConfig::default()).expect("valid deployment");
    println!(
        "deployed {} fragments on {} resident site workers\n",
        engine.forest().card(),
        engine.placement().sites().len()
    );

    // 2. Admission batching: three users submit concurrently; one round
    //    answers all of them with a single visit per site.
    let sources = [
        "[//stock[code/text() = \"GOOG\"]]",
        "[//broker[name/text() = \"Bache\"]]",
        "[//stock[code/text() = \"MSFT\"]]",
    ];
    for src in sources {
        engine.submit(&parse_query(src).expect("valid XBL"));
    }
    let round = engine.flush().expect("queries pending");
    for (src, (_, answer)) in sources.iter().zip(&round.answers) {
        println!("{answer:<5}  {src}");
    }
    println!(
        "one round: {} members, max visits/site {}, {} bytes\n",
        round.members,
        round.report.max_visits(),
        round.report.total_bytes()
    );

    // 3. A repeated query hits the triplet cache: the coordinator
    //    re-solves from cached triplets without contacting any site.
    let hot = parse_query(sources[0]).unwrap();
    let repeat = engine.query(&hot);
    assert!(repeat.from_cache);
    println!(
        "repeat of {:?}: answer {} from cache — {} messages, {} data-plane bytes\n",
        sources[0],
        repeat.answer,
        repeat.report.total_messages(),
        repeat.report.data_plane_bytes()
    );

    // 4. An update routes to the owning site and invalidates only that
    //    fragment's cache entries; the next query re-evaluates one
    //    fragment and sees the new document.
    let q_msft = parse_query(sources[2]).unwrap();
    assert!(!engine.query(&q_msft).answer);
    let (frag, market) = {
        let forest = engine.forest();
        let frag = forest
            .fragment_ids()
            .find(|&f| {
                let t = &forest.fragment(f).tree;
                t.descendants(t.root()).any(|n| t.label_str(n) == "market")
            })
            .expect("a broker fragment holds a market");
        let t = &forest.fragment(frag).tree;
        let market = t
            .descendants(t.root())
            .find(|&n| t.label_str(n) == "stock")
            .expect("stock node");
        (frag, market)
    };
    let up = engine
        .apply(Update::InsNode {
            frag,
            parent: market,
            label: "code".into(),
            text: Some("MSFT".into()),
        })
        .expect("valid update");
    println!(
        "update touched fragment {:?}, invalidated {} coordinator cache entries",
        up.effect.touched, up.invalidated
    );
    let after = engine.query(&q_msft);
    assert!(after.answer, "the inserted MSFT code is now visible");
    println!("re-query after update: answer {}", after.answer);

    let stats = engine.stats();
    println!(
        "\nlifetime: {} rounds, {} queries, {} coordinator cache hits, {} site cache hits",
        stats.rounds, stats.queries, stats.members_from_cache, stats.site_cache_hits
    );
}

//! The single-visit batched exchange protocol.
//!
//! ParBoX proves its traffic bound per query; the batch engine amortizes
//! the same per-site round trip over a whole batch of queries: the
//! coordinator ships each site the *merged* program once
//! ([`MessageKind::BatchQuery`]) and the site answers with one
//! [`MessageKind::Envelope`] carrying every fragment triplet it computed —
//! one visit and at most two messages per site, however many queries the
//! batch holds.
//!
//! [`BatchRound`] is the coordinator-side bookkeeping for one such round:
//! it wraps a [`RunReport`] and *enforces* the single-visit discipline —
//! a second visit to a site, or a reply from a site that was never
//! visited, is a protocol error rather than a silently mis-accounted
//! message.

use crate::{MessageKind, RunReport, SiteId};
use std::collections::BTreeSet;
use std::fmt;

/// Violation of the batch protocol's single-visit discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchProtocolError {
    /// A site was visited a second time within one round.
    DoubleVisit(SiteId),
    /// A site replied without having been visited.
    ReplyWithoutVisit(SiteId),
    /// A site sent a second envelope within one round.
    DoubleReply(SiteId),
}

impl fmt::Display for BatchProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchProtocolError::DoubleVisit(s) => {
                write!(f, "site {} visited twice in one batch round", s.0)
            }
            BatchProtocolError::ReplyWithoutVisit(s) => {
                write!(f, "site {} replied without being visited", s.0)
            }
            BatchProtocolError::DoubleReply(s) => {
                write!(f, "site {} sent two envelopes in one batch round", s.0)
            }
        }
    }
}

impl std::error::Error for BatchProtocolError {}

/// Coordinator-side accounting for one batched evaluation round.
///
/// Local work at the coordinator itself involves no network: visiting and
/// replying from the coordinator site records the visit but no message.
#[derive(Debug, Clone)]
pub struct BatchRound {
    report: RunReport,
    coordinator: SiteId,
    visited: BTreeSet<u32>,
    replied: BTreeSet<u32>,
}

impl BatchRound {
    /// Starts a round coordinated by `coordinator`.
    pub fn new(coordinator: SiteId) -> BatchRound {
        BatchRound {
            report: RunReport::new(),
            coordinator,
            visited: BTreeSet::new(),
            replied: BTreeSet::new(),
        }
    }

    /// The coordinating site of this round.
    pub fn coordinator(&self) -> SiteId {
        self.coordinator
    }

    /// Visits `site`, shipping it the merged program of `request_bytes`.
    /// Records the visit, and — for remote sites — one
    /// [`MessageKind::BatchQuery`] message.
    pub fn visit(&mut self, site: SiteId, request_bytes: usize) -> Result<(), BatchProtocolError> {
        if !self.visited.insert(site.0) {
            return Err(BatchProtocolError::DoubleVisit(site));
        }
        self.report.record_visit(site);
        if site != self.coordinator {
            self.report.record_message(
                self.coordinator,
                site,
                request_bytes,
                MessageKind::BatchQuery,
            );
        }
        Ok(())
    }

    /// Records `site`'s single batched reply of `envelope_bytes` — one
    /// [`MessageKind::Envelope`] message for remote sites. A reply from an
    /// unvisited site, or a second reply from the same site, is a
    /// protocol error.
    pub fn reply(&mut self, site: SiteId, envelope_bytes: usize) -> Result<(), BatchProtocolError> {
        if !self.visited.contains(&site.0) {
            return Err(BatchProtocolError::ReplyWithoutVisit(site));
        }
        if !self.replied.insert(site.0) {
            return Err(BatchProtocolError::DoubleReply(site));
        }
        if site != self.coordinator {
            self.report.record_message(
                site,
                self.coordinator,
                envelope_bytes,
                MessageKind::Envelope,
            );
        }
        Ok(())
    }

    /// Mutable access to the wrapped report for compute/work accounting
    /// (which the single-visit discipline does not constrain).
    pub fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    /// Ends the round, yielding the completed report. Every visited site
    /// holds exactly one visit by construction.
    pub fn finish(self) -> RunReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_visit_two_messages_per_remote_site() {
        let coord = SiteId(0);
        let mut round = BatchRound::new(coord);
        for s in [0u32, 1, 2] {
            round.visit(SiteId(s), 100).unwrap();
        }
        for s in [0u32, 1, 2] {
            round.reply(SiteId(s), 40).unwrap();
        }
        let report = round.finish();
        assert_eq!(report.max_visits(), 1);
        // The coordinator exchanges no messages with itself.
        assert_eq!(report.total_messages(), 4);
        assert_eq!(report.total_bytes(), 2 * 100 + 2 * 40);
        assert_eq!(report.bytes_of_kind(MessageKind::BatchQuery), 200);
        assert_eq!(report.bytes_of_kind(MessageKind::Envelope), 80);
    }

    #[test]
    fn double_visit_is_rejected() {
        let mut round = BatchRound::new(SiteId(0));
        round.visit(SiteId(1), 10).unwrap();
        assert_eq!(
            round.visit(SiteId(1), 10),
            Err(BatchProtocolError::DoubleVisit(SiteId(1)))
        );
    }

    #[test]
    fn reply_requires_visit() {
        let mut round = BatchRound::new(SiteId(0));
        assert_eq!(
            round.reply(SiteId(2), 5),
            Err(BatchProtocolError::ReplyWithoutVisit(SiteId(2)))
        );
        round.visit(SiteId(2), 5).unwrap();
        assert!(round.reply(SiteId(2), 5).is_ok());
    }

    #[test]
    fn double_reply_is_rejected() {
        let mut round = BatchRound::new(SiteId(0));
        round.visit(SiteId(2), 5).unwrap();
        round.reply(SiteId(2), 5).unwrap();
        assert_eq!(
            round.reply(SiteId(2), 5),
            Err(BatchProtocolError::DoubleReply(SiteId(2)))
        );
        let report = round.finish();
        assert_eq!(report.total_messages(), 2, "rejected reply not recorded");
    }

    #[test]
    fn errors_display() {
        assert!(BatchProtocolError::DoubleVisit(SiteId(3))
            .to_string()
            .contains("visited twice"));
        assert!(BatchProtocolError::ReplyWithoutVisit(SiteId(3))
            .to_string()
            .contains("without being visited"));
        assert!(BatchProtocolError::DoubleReply(SiteId(3))
            .to_string()
            .contains("two envelopes"));
    }
}

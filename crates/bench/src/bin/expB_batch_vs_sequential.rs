//! **Experiment B**: the batched multi-query engine vs sequential ParBoX
//! — batches of 1–64 concurrent queries from the default XMark serving
//! workload, on an FT1 deployment.
//!
//! Usage: `cargo run --release -p parbox-bench --bin expB_batch_vs_sequential [--scale BYTES]`

// The experiment is named expB in the issue tracker; keep the binary name.
#![allow(non_snake_case)]

use parbox_bench::experiments::expb_batch_vs_sequential;
use parbox_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let machines = 4;
    let rows = expb_batch_vs_sequential(scale, machines, &[1, 2, 4, 8, 16, 32, 64]);
    println!(
        "Experiment B — batch engine vs sequential ParBoX (corpus {} bytes, {machines} machines)",
        scale.corpus_bytes
    );
    println!(
        "{:>5} {:>7} {:>7} {:>7} {:>11} {:>11} {:>12} {:>12} {:>8}",
        "batch",
        "|QL|mrg",
        "|QL|sum",
        "visits",
        "bytes(B)",
        "bytes(seq)",
        "net s (B)",
        "net s (seq)",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:>5} {:>7} {:>7} {:>7} {:>11} {:>11} {:>12.6} {:>12.6} {:>7.1}x",
            r.batch_size,
            r.merged_qlist,
            r.summed_qlist,
            r.batch_max_visits,
            r.batch_bytes,
            r.sequential_bytes,
            r.batch_network_s,
            r.sequential_network_s,
            r.sequential_network_s / r.batch_network_s.max(1e-12),
        );
    }
}

//! Criterion bench for Experiment 1 (Figs. 7–8): ParBoX vs
//! NaiveCentralized across machine counts, one measurement per iteration
//! count, at a small fixed corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbox_bench::experiments::run_algorithm;
use parbox_bench::{ft1, Scale};
use parbox_net::{Cluster, NetworkModel};
use parbox_xmark::query_with_qlist;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 96 * 1024,
        seed: 2006,
    };
    let (_, q) = query_with_qlist(8, scale.seed);
    let mut group = c.benchmark_group("exp1");
    group.sample_size(10);
    for n in [1usize, 4, 10] {
        let (forest, placement) = ft1(scale, n);
        for algo in ["ParBoX", "NaiveCentralized"] {
            group.bench_with_input(BenchmarkId::new(algo, n), &n, |b, _| {
                b.iter(|| {
                    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
                    black_box(run_algorithm(algo, &cluster, &q).answer)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # parbox-frag
//!
//! Tree fragmentation for the ParBoX system (paper, Sections 2.1 and 5):
//! the [`Forest`] of disjoint fragments with `splitFragments` /
//! `mergeFragments`, the placement `h : F → S` of fragments onto sites,
//! the induced [`SourceTree`] `S_T` (the only structure the algorithms
//! require), decomposition strategies reproducing the experiment
//! shapes FT1–FT3, and the incrementally maintained [`ForestStats`]
//! aggregates the cost-based planner reads.
//!
//! ```
//! use parbox_frag::{Forest, Placement, SourceTree, strategies};
//! use parbox_xml::Tree;
//!
//! let tree = Tree::parse("<r><a><x/></a><b><y/></b></r>").unwrap();
//! let mut forest = Forest::from_tree(tree);
//! let root = forest.root_fragment();
//! strategies::star(&mut forest, root).unwrap();
//! let placement = Placement::one_per_fragment(&forest);
//! let st = SourceTree::new(&forest, &placement);
//! assert_eq!(st.card(), 3);
//! ```

mod error;
mod forest;
mod placement;
mod source_tree;
mod stats;

pub mod strategies;

pub use error::FragError;
pub use forest::{Forest, Fragment};
pub use placement::{Placement, SiteId};
pub use source_tree::{SourceEntry, SourceTree};
pub use stats::{ForestStats, FragmentStats, SiteStats};

//! The [`Forest`]: a tree decomposed into disjoint fragments.
//!
//! A fragment is a subtree of the original document whose leaves may be
//! *virtual nodes* pointing at sub-fragments (paper, Section 2.1). The
//! forest tracks the fragment tree (parent/child relation between
//! fragments) and supports the paper's structural update operations
//! `splitFragments` and `mergeFragments` (Section 5).
//!
//! No constraints are imposed on the decomposition: fragments may nest
//! arbitrarily, appear at any level, and have any size — the paper's
//! "most generic possible" fragmentation setting.

use crate::FragError;
use parbox_xml::{FragmentId, NodeId, Tree};
use std::sync::Arc;

/// One fragment of a fragmented tree.
///
/// The tree is held behind an [`Arc`] so a long-lived deployment (the
/// serving engine's per-site workers) can share fragment trees with the
/// authoritative forest without copying; updates go through
/// [`Forest::tree_mut`], which copies-on-write when a site still holds
/// the old handle.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The fragment's id (its index in the forest).
    pub id: FragmentId,
    /// The fragment's tree; leaves may be virtual nodes.
    pub tree: Arc<Tree>,
    /// Parent fragment in the fragment tree (`None` for the root fragment).
    pub parent: Option<FragmentId>,
}

impl Fragment {
    /// Ids of this fragment's sub-fragments, in document order of their
    /// virtual nodes.
    pub fn sub_fragments(&self) -> Vec<FragmentId> {
        self.tree
            .virtual_nodes(self.tree.root())
            .into_iter()
            .map(|(_, f)| f)
            .collect()
    }

    /// Number of (live) nodes in the fragment, virtual nodes included.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when the fragment holds no nodes (cannot happen: a fragment
    /// always has a root).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// True when this fragment has no sub-fragments (a *leaf fragment*).
    pub fn is_leaf(&self) -> bool {
        self.sub_fragments().is_empty()
    }

    /// Approximate serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        self.tree.byte_size(self.tree.root())
    }
}

/// A fragmented XML tree: the collection `F` of disjoint fragments
/// `F_0 … F_n` plus the fragment-tree relation.
#[derive(Debug, Clone)]
pub struct Forest {
    /// Slot per fragment id; merged fragments leave `None` tomb-stones.
    fragments: Vec<Option<Fragment>>,
    root: FragmentId,
}

impl Forest {
    /// Wraps a whole (unfragmented) tree as a forest with the single root
    /// fragment `F0`.
    pub fn from_tree(tree: Tree) -> Forest {
        let root = FragmentId(0);
        Forest {
            fragments: vec![Some(Fragment {
                id: root,
                tree: Arc::new(tree),
                parent: None,
            })],
            root,
        }
    }

    /// The root fragment's id (the fragment containing the document root).
    #[inline]
    pub fn root_fragment(&self) -> FragmentId {
        self.root
    }

    /// Immutable access to a fragment.
    ///
    /// # Panics
    /// Panics if `id` does not name a live fragment.
    pub fn fragment(&self, id: FragmentId) -> &Fragment {
        self.fragments[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("fragment {id} was merged away"))
    }

    /// Mutable access to a fragment.
    pub fn fragment_mut(&mut self, id: FragmentId) -> &mut Fragment {
        self.fragments[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("fragment {id} was merged away"))
    }

    /// Mutable access to a fragment's tree, copying-on-write if the tree
    /// is currently shared (e.g. with a serving engine's site worker —
    /// the worker keeps its old handle until the engine ships it a fresh
    /// one).
    ///
    /// # Panics
    /// Panics if `id` does not name a live fragment.
    pub fn tree_mut(&mut self, id: FragmentId) -> &mut Tree {
        Arc::make_mut(&mut self.fragment_mut(id).tree)
    }

    /// A shared handle to a fragment's tree (cheap to clone and send to
    /// a site worker).
    ///
    /// # Panics
    /// Panics if `id` does not name a live fragment.
    pub fn tree_handle(&self, id: FragmentId) -> Arc<Tree> {
        Arc::clone(&self.fragment(id).tree)
    }

    /// True if `id` names a live fragment.
    pub fn is_live(&self, id: FragmentId) -> bool {
        self.fragments
            .get(id.index())
            .map(|f| f.is_some())
            .unwrap_or(false)
    }

    /// Live fragment ids, ascending.
    pub fn fragment_ids(&self) -> impl Iterator<Item = FragmentId> + '_ {
        self.fragments
            .iter()
            .filter_map(|f| f.as_ref().map(|f| f.id))
    }

    /// `card(F)`: the number of fragments.
    pub fn card(&self) -> usize {
        self.fragments.iter().filter(|f| f.is_some()).count()
    }

    /// Total number of nodes over all fragments (≈ `|T|` plus one virtual
    /// node per non-root fragment).
    pub fn total_nodes(&self) -> usize {
        self.fragment_ids().map(|id| self.fragment(id).len()).sum()
    }

    /// Total approximate byte size over all fragments.
    pub fn total_bytes(&self) -> usize {
        self.fragment_ids()
            .map(|id| self.fragment(id).byte_size())
            .sum()
    }

    /// The paper's `splitFragments(v)`: makes the subtree rooted at `node`
    /// (inside fragment `frag`) a new sub-fragment, leaving a virtual node
    /// in its place. Returns the new fragment's id.
    pub fn split(&mut self, frag: FragmentId, node: NodeId) -> Result<FragmentId, FragError> {
        if !self.is_live(frag) {
            return Err(FragError::UnknownFragment(frag));
        }
        let new_id = FragmentId(self.fragments.len() as u32);
        let subtree = self
            .tree_mut(frag)
            .split_off(node, new_id)
            .map_err(FragError::Tree)?;
        // Sub-fragments whose virtual nodes moved into the new fragment now
        // hang below it in the fragment tree.
        let moved: Vec<FragmentId> = subtree
            .virtual_nodes(subtree.root())
            .into_iter()
            .map(|(_, f)| f)
            .collect();
        self.fragments.push(Some(Fragment {
            id: new_id,
            tree: Arc::new(subtree),
            parent: Some(frag),
        }));
        for m in moved {
            if self.is_live(m) {
                self.fragment_mut(m).parent = Some(new_id);
            }
        }
        Ok(new_id)
    }

    /// The paper's `mergeFragments(v)`: replaces the virtual node `node`
    /// (inside fragment `frag`) by the sub-fragment it references, which
    /// ceases to exist. If `node` is not virtual, no action is taken
    /// (matching the paper's definition). Returns the merged fragment's
    /// id when a merge happened.
    pub fn merge(
        &mut self,
        frag: FragmentId,
        node: NodeId,
    ) -> Result<Option<FragmentId>, FragError> {
        if !self.is_live(frag) {
            return Err(FragError::UnknownFragment(frag));
        }
        let Some(sub_id) = self.fragment(frag).tree.node(node).kind.fragment() else {
            return Ok(None);
        };
        if !self.is_live(sub_id) {
            return Err(FragError::UnknownFragment(sub_id));
        }
        let sub = self.fragments[sub_id.index()]
            .take()
            .expect("liveness checked");
        self.tree_mut(frag)
            .graft(node, &sub.tree)
            .map_err(FragError::Tree)?;
        // Grand-children fragments are adopted by the host.
        for g in sub.sub_fragments() {
            if self.is_live(g) {
                self.fragment_mut(g).parent = Some(frag);
            }
        }
        Ok(Some(sub_id))
    }

    /// Child fragments of `id` in the fragment tree.
    pub fn children(&self, id: FragmentId) -> Vec<FragmentId> {
        self.fragment(id).sub_fragments()
    }

    /// Parent fragment of `id` in the fragment tree.
    pub fn parent(&self, id: FragmentId) -> Option<FragmentId> {
        self.fragment(id).parent
    }

    /// Bottom-up (postorder) traversal of the fragment tree — the order
    /// in which the coordinator's `evalST` resolves triplets.
    pub fn postorder(&self) -> Vec<FragmentId> {
        let mut out = Vec::with_capacity(self.card());
        self.postorder_into(self.root, &mut out);
        out
    }

    fn postorder_into(&self, id: FragmentId, out: &mut Vec<FragmentId>) {
        for child in self.children(id) {
            self.postorder_into(child, out);
        }
        out.push(id);
    }

    /// Depth of a fragment in the fragment tree (root fragment = 0).
    pub fn depth(&self, id: FragmentId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Reassembles the whole original tree by merging every fragment back
    /// into the root fragment (on a clone; the forest is not modified).
    /// Used by tests to check that fragmentation preserves the document.
    pub fn reassemble(&self) -> Tree {
        let mut forest = self.clone();
        loop {
            let root = forest.root;
            let vnode = {
                let tree = &forest.fragment(root).tree;
                tree.virtual_nodes(tree.root()).first().map(|&(n, _)| n)
            };
            match vnode {
                Some(n) => {
                    forest
                        .merge(root, n)
                        .expect("merging a listed virtual node cannot fail");
                }
                None => return Tree::clone(&forest.fragment(root).tree),
            }
        }
    }

    /// Checks forest invariants: the fragment tree is a tree rooted at the
    /// root fragment, every virtual node references a live fragment whose
    /// `parent` points back, and every non-root fragment is referenced by
    /// exactly one virtual node.
    pub fn validate(&self) -> Result<(), String> {
        if !self.is_live(self.root) {
            return Err("root fragment is not live".into());
        }
        if self.fragment(self.root).parent.is_some() {
            return Err("root fragment has a parent".into());
        }
        let mut referenced = vec![0usize; self.fragments.len()];
        for id in self.fragment_ids() {
            let frag = self.fragment(id);
            frag.tree
                .validate()
                .map_err(|e| format!("fragment {id}: {e}"))?;
            for sub in frag.sub_fragments() {
                if !self.is_live(sub) {
                    return Err(format!("fragment {id} references dead fragment {sub}"));
                }
                if self.fragment(sub).parent != Some(id) {
                    return Err(format!(
                        "fragment {sub} parent pointer does not match its virtual node in {id}"
                    ));
                }
                referenced[sub.index()] += 1;
            }
        }
        for id in self.fragment_ids() {
            let n = referenced[id.index()];
            if id == self.root {
                if n != 0 {
                    return Err("root fragment is referenced by a virtual node".into());
                }
            } else if n != 1 {
                return Err(format!("fragment {id} referenced by {n} virtual nodes"));
            }
        }
        // Reachability from the root (fragment tree is connected).
        let reachable = self.postorder();
        if reachable.len() != self.card() {
            return Err(format!(
                "fragment tree reaches {} of {} fragments",
                reachable.len(),
                self.card()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `<r><a><x/><y/></a><b><z/></b></r>`
    fn sample_forest() -> Forest {
        let t = Tree::parse("<r><a><x/><y/></a><b><z/></b></r>").unwrap();
        Forest::from_tree(t)
    }

    fn find(forest: &Forest, frag: FragmentId, label: &str) -> NodeId {
        let tree = &forest.fragment(frag).tree;
        tree.descendants(tree.root())
            .find(|&n| tree.label_str(n) == label)
            .unwrap_or_else(|| panic!("no node labelled {label}"))
    }

    #[test]
    fn from_tree_single_fragment() {
        let f = sample_forest();
        assert_eq!(f.card(), 1);
        assert_eq!(f.root_fragment(), FragmentId(0));
        assert!(f.fragment(FragmentId(0)).is_leaf());
        f.validate().unwrap();
    }

    #[test]
    fn split_creates_subfragment() {
        let mut f = sample_forest();
        let a = find(&f, FragmentId(0), "a");
        let f1 = f.split(FragmentId(0), a).unwrap();
        assert_eq!(f.card(), 2);
        assert_eq!(f.parent(f1), Some(FragmentId(0)));
        assert_eq!(f.children(FragmentId(0)), vec![f1]);
        assert_eq!(f.fragment(f1).len(), 3); // a, x, y
        f.validate().unwrap();
    }

    #[test]
    fn nested_split_updates_fragment_tree() {
        let mut f = sample_forest();
        let a = find(&f, FragmentId(0), "a");
        let f1 = f.split(FragmentId(0), a).unwrap();
        let x = find(&f, f1, "x");
        let f2 = f.split(f1, x).unwrap();
        assert_eq!(f.parent(f2), Some(f1));
        assert_eq!(f.depth(f2), 2);
        assert_eq!(f.postorder(), vec![f2, f1, FragmentId(0)]);
        f.validate().unwrap();
    }

    #[test]
    fn split_above_existing_fragment_reparents() {
        // Split x first (child of a), then split a: x's fragment must be
        // re-parented under a's fragment.
        let mut f = sample_forest();
        let x = find(&f, FragmentId(0), "x");
        let fx = f.split(FragmentId(0), x).unwrap();
        assert_eq!(f.parent(fx), Some(FragmentId(0)));
        let a = find(&f, FragmentId(0), "a");
        let fa = f.split(FragmentId(0), a).unwrap();
        assert_eq!(f.parent(fx), Some(fa));
        assert_eq!(f.children(fa), vec![fx]);
        f.validate().unwrap();
    }

    #[test]
    fn merge_restores_tree() {
        let original = Tree::parse("<r><a><x/><y/></a><b><z/></b></r>").unwrap();
        let mut f = sample_forest();
        let a = find(&f, FragmentId(0), "a");
        let f1 = f.split(FragmentId(0), a).unwrap();
        let tree0 = &f.fragment(FragmentId(0)).tree;
        let (vnode, _) = tree0.virtual_nodes(tree0.root())[0];
        let merged = f.merge(FragmentId(0), vnode).unwrap();
        assert_eq!(merged, Some(f1));
        assert_eq!(f.card(), 1);
        assert!(f.fragment(FragmentId(0)).tree.structural_eq(&original));
        f.validate().unwrap();
    }

    #[test]
    fn merge_non_virtual_is_noop() {
        let mut f = sample_forest();
        let b = find(&f, FragmentId(0), "b");
        assert_eq!(f.merge(FragmentId(0), b).unwrap(), None);
        assert_eq!(f.card(), 1);
    }

    #[test]
    fn merge_adopts_grandchildren() {
        let mut f = sample_forest();
        let a = find(&f, FragmentId(0), "a");
        let f1 = f.split(FragmentId(0), a).unwrap();
        let x = find(&f, f1, "x");
        let f2 = f.split(f1, x).unwrap();
        // Merge f1 back into f0; f2 must become a child of f0.
        let tree0 = &f.fragment(FragmentId(0)).tree;
        let (vnode, _) = tree0.virtual_nodes(tree0.root())[0];
        f.merge(FragmentId(0), vnode).unwrap();
        assert_eq!(f.parent(f2), Some(FragmentId(0)));
        assert_eq!(f.children(FragmentId(0)), vec![f2]);
        f.validate().unwrap();
    }

    #[test]
    fn reassemble_round_trips() {
        let original = Tree::parse("<r><a><x/><y/></a><b><z/></b></r>").unwrap();
        let mut f = sample_forest();
        let a = find(&f, FragmentId(0), "a");
        let f1 = f.split(FragmentId(0), a).unwrap();
        let y = find(&f, f1, "y");
        f.split(f1, y).unwrap();
        let b = find(&f, FragmentId(0), "b");
        f.split(FragmentId(0), b).unwrap();
        assert_eq!(f.card(), 4);
        assert!(f.reassemble().structural_eq(&original));
        // Reassembly is non-destructive.
        assert_eq!(f.card(), 4);
        f.validate().unwrap();
    }

    #[test]
    fn split_root_node_is_rejected() {
        let mut f = sample_forest();
        let root = f.fragment(FragmentId(0)).tree.root();
        assert!(f.split(FragmentId(0), root).is_err());
    }

    #[test]
    fn card_and_sizes_account_every_fragment() {
        let mut f = sample_forest();
        let total_before = f.total_nodes();
        let a = find(&f, FragmentId(0), "a");
        f.split(FragmentId(0), a).unwrap();
        // One virtual node was added.
        assert_eq!(f.total_nodes(), total_before + 1);
        assert!(f.total_bytes() > 0);
    }

    #[test]
    fn postorder_is_children_first() {
        let mut f = sample_forest();
        let a = find(&f, FragmentId(0), "a");
        let f1 = f.split(FragmentId(0), a).unwrap();
        let b = find(&f, FragmentId(0), "b");
        let f2 = f.split(FragmentId(0), b).unwrap();
        let order = f.postorder();
        assert_eq!(order.last(), Some(&FragmentId(0)));
        assert!(order.contains(&f1) && order.contains(&f2));
    }
}

//! Regenerates **Fig. 11**: query satisfied at the middle fragment
//! (qF⌈n/2⌉) on the FT2 chain — ParBoX vs FullDistParBoX vs LazyParBoX.

use parbox_bench::experiments::{experiment2, Target};
use parbox_bench::{print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = experiment2(scale, 10, Target::Middle);
    print_table(
        &format!(
            "Fig. 11 — query qF(n/2) on the FT2 chain (corpus {} bytes)",
            scale.corpus_bytes
        ),
        "machines",
        &rows,
    );
}

#![warn(missing_docs)]

//! # parbox-bool
//!
//! Boolean formulas with free variables — the *partial answers* that
//! ParBoX sites ship instead of data (paper, Section 3.1) — together with
//! the `compFm` composition procedure, `(V, CV, DV)` triplets, the linear
//! Boolean equation system solved by the coordinator, and a compact wire
//! encoding used for communication-cost accounting.
//!
//! ```
//! use parbox_bool::{Formula, Var, VecKind, comp_fm, BoolOp};
//! use parbox_xml::FragmentId;
//!
//! let x = Formula::var(Var::new(FragmentId(1), VecKind::DV, 7));
//! // compFm folds constants: true ∨ x = true, false ∨ x = x.
//! assert_eq!(comp_fm(Formula::FALSE, x.clone(), BoolOp::Or), x);
//! ```

mod encode;
mod formula;
mod triplet;
mod var;

pub use encode::{
    decode_formula, decode_triplet, encode_formula, encode_triplet, triplet_wire_size, DecodeError,
};
pub use formula::{comp_fm, BoolOp, Formula};
pub use triplet::{EquationSystem, ResolvedTriplet, SolveError, Triplet};
pub use var::{Var, VecKind};

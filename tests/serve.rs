//! Resident serving engine: equivalence and cache-consistency
//! properties.
//!
//! The acceptance bar for the engine is behavioural equivalence with the
//! one-shot algorithms *at every step of a mixed query/update stream*:
//! with admission batching, two levels of triplet caching and update
//! invalidation all enabled, every answer must equal what one-shot
//! ParBoX computes on the materialized forest at that moment.

use parbox::core::{parbox, Engine, EngineConfig, Update};
use parbox::frag::Placement;
use parbox::net::{Cluster, FaultPlan, FaultRates, MessageKind, NetworkModel, SupervisorConfig};
use parbox::query::{compile, Query};
use parbox::xml::{FragmentId, NodeId};
use proptest::prelude::*;
use std::time::Duration;

mod common;
use common::{fragment_randomly, network_models, query_strategy, tree_strategy};

fn engine_of(forest: parbox::frag::Forest, model: NetworkModel) -> Engine {
    let placement = Placement::round_robin(&forest, 3);
    let config = EngineConfig {
        model,
        ..EngineConfig::default()
    };
    Engine::new(forest, placement, config).expect("round-robin placement covers the forest")
}

fn oracle(engine: &Engine, q: &Query) -> bool {
    let cluster = Cluster::new(engine.forest(), engine.placement(), *engine.model());
    parbox(&cluster, &compile(q)).answer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Engine answers equal one-shot ParBoX, for every network model,
    /// with every query issued twice so the second pass exercises the
    /// fully cached path.
    #[test]
    fn engine_matches_parbox_with_caching(
        tree in tree_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..5),
        cuts in proptest::collection::vec(0usize..1000, 0..5),
        model_idx in 0usize..3,
    ) {
        let (_, model) = network_models()[model_idx];
        let forest = fragment_randomly(tree, &cuts);
        let mut engine = engine_of(forest, model);
        for q in &queries {
            let expected = oracle(&engine, q);
            let first = engine.query(q);
            prop_assert_eq!(first.answer, expected, "first pass of {}", q);
            let second = engine.query(q);
            prop_assert_eq!(second.answer, expected, "cached pass of {}", q);
            prop_assert!(second.from_cache, "repeat of {} must hit the cache", q);
            // The cache guarantee: a repeated query moves zero data-plane
            // bytes and triggers no triplet/envelope messages at all.
            prop_assert_eq!(second.report.data_plane_bytes(), 0);
            prop_assert_eq!(second.report.bytes_of_kind(MessageKind::Triplet), 0);
            prop_assert_eq!(second.report.max_visits(), 0);
        }
    }

    /// A whole *eager* admission round coalesces into at most one visit
    /// per site — the batch-engine guarantee survives the resident
    /// substrate. (A fresh engine's resolution-depth EWMA starts
    /// pessimistic, so the first flush always runs the eager round;
    /// planner-gated lazy wavefront rounds deliberately trade site
    /// revisits for skipped deep waves and are exercised by the engine's
    /// own lazy-switch unit test.)
    #[test]
    fn admission_round_visits_each_site_at_most_once(
        tree in tree_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..6),
        cuts in proptest::collection::vec(0usize..1000, 0..5),
    ) {
        let forest = fragment_randomly(tree, &cuts);
        let mut engine = engine_of(forest, NetworkModel::lan());
        let expected: Vec<bool> = queries.iter().map(|q| oracle(&engine, q)).collect();
        for q in &queries {
            engine.submit(q);
        }
        let out = engine.flush().expect("queries pending");
        prop_assert!(out.report.max_visits() <= 1, "visits: {}", out.report.max_visits());
        for (i, &(_, answer)) in out.answers.iter().enumerate() {
            prop_assert_eq!(answer, expected[i], "member {}: {}", i, &queries[i]);
        }
    }

    /// Chaos satellite, inert direction: an engine built with an
    /// *explicit* zero-fault `FaultPlan` and supervisor answers exactly
    /// like the plain engine and the centralized oracle — every answer
    /// `Complete`, zero timeouts/retries/restarts/partials.
    #[test]
    fn zero_fault_plan_is_observationally_inert(
        tree in tree_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..4),
        cuts in proptest::collection::vec(0usize..1000, 0..4),
    ) {
        let model = NetworkModel::lan();
        let mut plain = engine_of(fragment_randomly(tree.clone(), &cuts), model);
        let forest = fragment_randomly(tree, &cuts);
        let placement = Placement::round_robin(&forest, 3);
        let config = EngineConfig {
            model,
            fault_plan: FaultPlan::none(),
            supervisor: Some(SupervisorConfig::from_model(&model)),
            ..EngineConfig::default()
        };
        let mut armed = Engine::new(forest, placement, config).unwrap();
        for q in &queries {
            let expected = oracle(&plain, q);
            prop_assert_eq!(plain.query(q).answer, expected, "plain: {}", q);
            let out = armed.query(q);
            prop_assert_eq!(out.answer, expected, "zero-fault: {}", q);
            prop_assert!(out.completeness.is_complete(), "{} must be Complete", q);
            prop_assert!(out.report.faults.is_none(), "{} reported faults", q);
        }
        let stats = armed.stats();
        prop_assert_eq!(
            stats.timeouts + stats.retries + stats.restarts + stats.partial_answers,
            0,
            "zero-fault engine counted supervision events"
        );
    }
}

proptest! {
    // Each case can burn several supervision deadlines, so fewer cases
    // than the equivalence suite above.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chaos satellite, armed direction: under a *random* fault
    /// schedule (seed and rate both generated), an answer marked
    /// `Complete` never disagrees with the oracle — degraded answers
    /// must say so. Once the plan disarms, the same engine (no process
    /// restart) recovers to all-`Complete`, all-correct answers.
    #[test]
    fn complete_answers_never_lie_under_random_faults(
        tree in tree_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..4),
        cuts in proptest::collection::vec(0usize..1000, 0..4),
        fault_seed in any::<u64>(),
        rate_pct in 1u32..35,
    ) {
        let forest = fragment_randomly(tree, &cuts);
        let model = NetworkModel::lan();
        let placement = Placement::round_robin(&forest, 3);
        let plan = FaultPlan::random(
            fault_seed,
            FaultRates::mixed(f64::from(rate_pct) / 100.0),
            Duration::from_millis(50),
        );
        let config = EngineConfig {
            model,
            fault_plan: plan.clone(),
            supervisor: Some(SupervisorConfig {
                deadline: Duration::from_millis(20),
                max_attempts: 4,
                restart_after_timeouts: 1,
                backoff_base: Duration::from_millis(1),
                jitter_seed: fault_seed,
            }),
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(forest, placement, config).unwrap();
        for q in &queries {
            let expected = oracle(&engine, q);
            let out = engine.query(q);
            if out.completeness.is_complete() {
                prop_assert_eq!(out.answer, expected, "Complete answer lied: {}", q);
            }
        }
        plan.disarm();
        for q in &queries {
            let expected = oracle(&engine, q);
            let out = engine.query(q);
            prop_assert!(
                out.completeness.is_complete(),
                "did not recover after disarm: {}", q
            );
            prop_assert_eq!(out.answer, expected, "post-disarm answer: {}", q);
        }
    }
}

/// The ISSUE acceptance property: a long random stream of interleaved
/// queries and Section-5 updates, with caching enabled throughout —
/// after *every* step the engine's answers equal one-shot ParBoX on the
/// materialized forest.
#[test]
fn engine_equivalent_to_oneshot_after_every_update_step() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let tree = parbox::xml::Tree::parse(
        "<r><a><x>1</x><pad/></a><b><y>2</y><pad/></b><c><z>3</z></c></r>",
    )
    .unwrap();
    let mut forest = parbox::frag::Forest::from_tree(tree);
    let root = forest.root_fragment();
    parbox::frag::strategies::star(&mut forest, root).unwrap();
    let placement = Placement::one_per_fragment(&forest);
    let mut engine = Engine::new(forest, placement, EngineConfig::default()).unwrap();

    let queries: Vec<Query> = [
        "[//x = \"1\" or //goal]",
        "[//goal]",
        "[//y and //pad]",
        "[not //z]",
    ]
    .iter()
    .map(|s| parbox::query::parse_query(s).unwrap())
    .collect();

    let mut rng = StdRng::seed_from_u64(2006);
    for step in 0..60 {
        // One random update against the live forest.
        let frags: Vec<FragmentId> = engine.forest().fragment_ids().collect();
        let frag = frags[rng.random_range(0..frags.len())];
        let update = {
            let tree = &engine.forest().fragment(frag).tree;
            let nodes: Vec<NodeId> = tree
                .descendants(tree.root())
                .filter(|&n| !tree.node(n).kind.is_virtual())
                .collect();
            let node = nodes[rng.random_range(0..nodes.len())];
            match rng.random_range(0..4u32) {
                0 => Update::InsNode {
                    frag,
                    parent: node,
                    label: if rng.random_bool(0.3) {
                        "goal".into()
                    } else {
                        "pad".into()
                    },
                    text: None,
                },
                1 => {
                    if node == tree.root() || !tree.virtual_nodes(node).is_empty() {
                        continue;
                    }
                    Update::DelNode { frag, node }
                }
                2 => {
                    if node == tree.root() || tree.subtree_size(node) < 2 {
                        continue;
                    }
                    Update::SplitFragments {
                        frag,
                        node,
                        to_site: None,
                    }
                }
                _ => {
                    let t = &engine.forest().fragment(frag).tree;
                    match t.virtual_nodes(t.root()).first() {
                        Some(&(vnode, _)) => Update::MergeFragments { frag, node: vnode },
                        None => continue,
                    }
                }
            }
        };
        engine.apply(update).unwrap();
        engine.forest().validate().unwrap();

        // After the update, every query — asked twice, so both the
        // re-evaluation path and the cached path are checked — must
        // match one-shot ParBoX on the materialized forest.
        for q in &queries {
            let expected = oracle(&engine, q);
            assert_eq!(engine.query(q).answer, expected, "step {step}: {q}");
            let cached = engine.query(q);
            assert_eq!(cached.answer, expected, "step {step} (cached): {q}");
            assert!(cached.from_cache, "step {step}: repeat must hit");
        }
    }
}

/// The planner-in-the-engine acceptance: a heterogeneous workload (tiny
/// selective + large scan-heavy queries over skewed fragment sizes,
/// interleaved with updates) driven through the adaptive engine — which
/// consults the per-round planner and may switch to lazy wavefront
/// rounds as the depth statistic warms — answers exactly like one-shot
/// ParBoX at every step.
#[test]
fn adaptive_engine_serves_heterogeneous_workload_exactly() {
    use parbox::xmark::{heterogeneous_workload, resolve_update};

    // A skewed deployment: a deep-ish fragmentation of an XMark-like
    // document with very unequal fragment sizes.
    let tree = parbox::xmark::generate(parbox::xmark::XmarkConfig {
        target_bytes: 24 * 1024,
        seed: 41,
    });
    let mut forest = parbox::frag::Forest::from_tree(tree);
    parbox::frag::strategies::fragment_evenly(&mut forest, 7).unwrap();
    let placement = Placement::round_robin(&forest, 3);
    let mut engine = Engine::new(forest, placement, EngineConfig::default()).unwrap();

    let queries = heterogeneous_workload(60, 17);
    let mut update_seed = 900u64;
    for (i, q) in queries.iter().enumerate() {
        // Interleave an occasional update so cache invalidation, stats
        // maintenance and re-planning all stay in the loop.
        if i % 9 == 8 {
            update_seed += 1;
            if let Some(update) = resolve_update(engine.forest(), update_seed) {
                engine.apply(update).unwrap();
                engine.forest().validate().unwrap();
            }
        }
        let expected = oracle(&engine, q);
        let out = engine.query(q);
        assert_eq!(out.answer, expected, "query {i}: {q}");
        // The round records what the planner decided.
        if !out.from_cache {
            let planned = out.report.planned.as_ref().expect("planned round");
            assert!(
                matches!(
                    planned.strategy.as_str(),
                    "ParBoX" | "BatchParBoX" | "LazyParBoX"
                ),
                "unexpected round strategy {}",
                planned.strategy
            );
        }
        let again = engine.query(q);
        assert_eq!(again.answer, expected, "cached {i}: {q}");
        assert!(again.from_cache);
        assert_eq!(again.report.data_plane_bytes(), 0);
    }
    // The engine's live statistics stayed equal to a recompute.
    assert_eq!(
        engine.forest_stats(),
        &parbox::frag::ForestStats::compute(engine.forest(), engine.placement())
    );
    // The depth statistic moved off its pessimistic initial value at
    // some point (or the forest is flat) — i.e. the planner is really
    // consuming observations.
    assert!(engine.resolve_depth_ewma() <= engine.forest_stats().max_depth() as f64);
}

//! Abstract syntax of XBL Boolean XPath queries.
//!
//! The grammar follows Section 2.2 of the paper:
//!
//! ```text
//! q := p | p/text() = str | label() = A | ¬q | q ∧ q | q ∨ q
//! p := ε | A | * | p//p | p/p | p[q]
//! ```
//!
//! A *query* `[q]` evaluates to a truth value at a context node; a *path*
//! is satisfied when some node is reachable from the context node via it.

use std::fmt;

/// A Boolean XBL query `q`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// `p` — true iff some node is reachable via the path.
    Path(Path),
    /// `p/text() = "str"` — true iff a node reached via `p` carries the
    /// given text value.
    TextEq(Path, String),
    /// `label() = A` — true iff the context node's tag is `A`.
    LabelEq(String),
    /// `¬ q`.
    Not(Box<Query>),
    /// `q ∧ q`.
    And(Box<Query>, Box<Query>),
    /// `q ∨ q`.
    Or(Box<Query>, Box<Query>),
}

/// A path expression `p`: a sequence of steps.
///
/// An empty step list is the empty path `ε` (self).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    /// Steps in order.
    pub steps: Vec<Step>,
}

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Step {
    /// `ε` / `.` — stay at the current node.
    SelfStep,
    /// `A` — move to a child labelled `A`.
    Label(String),
    /// `*` — move to any child.
    Wildcard,
    /// `//` — descendant-or-self axis.
    DescOrSelf,
    /// `[q]` — qualifier filtering the current node.
    Qualifier(Box<Query>),
}

impl Query {
    /// Builds `¬ self`.
    /// An owned-`self` builder (like [`Query::and`] / [`Query::or`]), not
    /// `std::ops::Not`, so queries chain fluently.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Query {
        Query::Not(Box::new(self))
    }

    /// Builds `self ∧ other`.
    pub fn and(self, other: Query) -> Query {
        Query::And(Box::new(self), Box::new(other))
    }

    /// Builds `self ∨ other`.
    pub fn or(self, other: Query) -> Query {
        Query::Or(Box::new(self), Box::new(other))
    }

    /// Syntactic size |q|: number of AST nodes (steps and operators).
    pub fn size(&self) -> usize {
        match self {
            Query::Path(p) => 1 + p.size(),
            Query::TextEq(p, _) => 2 + p.size(),
            Query::LabelEq(_) => 1,
            Query::Not(q) => 1 + q.size(),
            Query::And(a, b) | Query::Or(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl Path {
    /// The empty path `ε`.
    pub fn empty() -> Path {
        Path::default()
    }

    /// Builder: starts a path with one step.
    pub fn step(s: Step) -> Path {
        Path { steps: vec![s] }
    }

    /// Builder: appends a step.
    pub fn then(mut self, s: Step) -> Path {
        self.steps.push(s);
        self
    }

    /// Builder: appends a child step to a labelled element.
    pub fn child(self, label: &str) -> Path {
        self.then(Step::Label(label.to_string()))
    }

    /// Builder: appends a descendant-or-self step.
    pub fn desc(self) -> Path {
        self.then(Step::DescOrSelf)
    }

    /// Builder: appends a qualifier.
    pub fn filter(self, q: Query) -> Path {
        self.then(Step::Qualifier(Box::new(q)))
    }

    /// Syntactic size of the path.
    pub fn size(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Qualifier(q) => 1 + q.size(),
                _ => 1,
            })
            .sum()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Path(p) => write!(f, "{p}"),
            Query::TextEq(p, s) => {
                if p.steps.is_empty() {
                    write!(f, "text() = \"{s}\"")
                } else {
                    write!(f, "{p}/text() = \"{s}\"")
                }
            }
            Query::LabelEq(a) => write!(f, "label() = {a}"),
            Query::Not(q) => write!(f, "not({q})"),
            Query::And(a, b) => write!(f, "({a} and {b})"),
            Query::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, ".");
        }
        // `needs_sep`: a `/` is required before the next named step.
        // `can_attach`: the previous token can host a `[q]` qualifier.
        let mut needs_sep = false;
        let mut can_attach = false;
        let mut at_start = true;
        for step in &self.steps {
            if matches!(step, Step::DescOrSelf) && !can_attach && !at_start {
                // Two consecutive `//` have no concrete syntax; anchor the
                // second on an explicit self step (`//.//`).
                write!(f, ".")?;
            }
            at_start = false;
            match step {
                Step::SelfStep => {
                    if needs_sep {
                        write!(f, "/")?;
                    }
                    write!(f, ".")?;
                    needs_sep = true;
                    can_attach = true;
                }
                Step::Label(a) => {
                    if needs_sep {
                        write!(f, "/")?;
                    }
                    write!(f, "{a}")?;
                    needs_sep = true;
                    can_attach = true;
                }
                Step::Wildcard => {
                    if needs_sep {
                        write!(f, "/")?;
                    }
                    write!(f, "*")?;
                    needs_sep = true;
                    can_attach = true;
                }
                Step::DescOrSelf => {
                    write!(f, "//")?;
                    // `//` includes its separator.
                    needs_sep = false;
                    can_attach = false;
                }
                Step::Qualifier(q) => {
                    // A qualifier with nothing to attach to (path start or
                    // right after `//`) anchors on an explicit self step.
                    if !can_attach {
                        if needs_sep {
                            write!(f, "/")?;
                        }
                        write!(f, ".")?;
                        needs_sep = true;
                    }
                    write!(f, "[{q}]")?;
                    can_attach = true;
                }
            }
        }
        // A trailing `//` needs an explicit `.` to be re-parseable.
        if !can_attach {
            write!(f, ".")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let q = Query::Path(Path::empty().desc().child("stock"))
            .and(Query::LabelEq("portfolio".into()));
        assert!(matches!(q, Query::And(_, _)));
        assert!(q.size() >= 4);
    }

    #[test]
    fn display_round_trips_simple_shapes() {
        let q = Query::Path(Path::empty().desc().child("a").child("b"));
        assert_eq!(q.to_string(), "//a/b");
        let q = Query::TextEq(Path::empty().child("code"), "GOOG".into());
        assert_eq!(q.to_string(), "code/text() = \"GOOG\"");
        let q = Query::LabelEq("x".into()).not();
        assert_eq!(q.to_string(), "not(label() = x)");
    }

    #[test]
    fn display_qualifier() {
        let inner = Query::TextEq(Path::empty().child("code"), "YHOO".into());
        let q = Query::Path(Path::empty().desc().child("stock").filter(inner));
        assert_eq!(q.to_string(), "//stock[code/text() = \"YHOO\"]");
    }

    #[test]
    fn empty_path_displays_as_dot() {
        assert_eq!(Path::empty().to_string(), ".");
    }

    #[test]
    fn size_counts_nested_qualifiers() {
        let inner = Query::LabelEq("a".into());
        let q = Query::Path(Path::empty().child("x").filter(inner));
        // x (1) + qualifier (1 + 1) + path wrapper 1
        assert_eq!(q.size(), 4);
    }
}

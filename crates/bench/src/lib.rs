#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # parbox-bench
//!
//! The experiment harness of this reproduction: one module per
//! experiment of the paper's Section 6 (plus the Fig. 4 complexity table
//! and the Section 4/5 ablations), each regenerating the corresponding
//! series. The `src/bin/` binaries print paper-style tables; the
//! `benches/` directory holds the matching Criterion benchmarks.
//!
//! Scaling: the paper distributes 45–160 MB over ten LAN machines. The
//! harness measures the same *shapes* at a laptop-friendly default scale
//! (see [`Scale`]); binaries accept `--scale <bytes>` to raise it.

pub mod builders;
pub mod experiments;
pub mod table;

pub use builders::{ft1, ft2_chain, ft3, single_site_split, Scale};
pub use table::{print_table, Row};

//! Placement of fragments onto sites — the paper's mapping function `h`.

use crate::Forest;
use parbox_xml::FragmentId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a site (a machine in the paper's LAN experiments; a
/// simulated worker in this reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Index form, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The assignment `h : F → S` of fragments to sites.
///
/// No constraints are imposed: any number of fragments may share a site
/// (Experiment 4 varies exactly this).
#[derive(Debug, Clone, Default)]
pub struct Placement {
    map: HashMap<FragmentId, SiteId>,
}

impl Placement {
    /// Empty placement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a fragment to a site.
    pub fn assign(&mut self, frag: FragmentId, site: SiteId) {
        self.map.insert(frag, site);
    }

    /// The site holding `frag`.
    ///
    /// # Panics
    /// Panics if the fragment is unplaced — a configuration error.
    pub fn site_of(&self, frag: FragmentId) -> SiteId {
        *self
            .map
            .get(&frag)
            .unwrap_or_else(|| panic!("fragment {frag} is not placed on any site"))
    }

    /// The site holding `frag`, if placed.
    pub fn try_site_of(&self, frag: FragmentId) -> Option<SiteId> {
        self.map.get(&frag).copied()
    }

    /// All fragments assigned to `site`, ascending by id.
    pub fn fragments_at(&self, site: SiteId) -> Vec<FragmentId> {
        let mut out: Vec<FragmentId> = self
            .map
            .iter()
            .filter(|&(_, &s)| s == site)
            .map(|(&f, _)| f)
            .collect();
        out.sort();
        out
    }

    /// Distinct sites in use, ascending.
    pub fn sites(&self) -> Vec<SiteId> {
        let mut out: Vec<SiteId> = self.map.values().copied().collect();
        out.sort();
        out.dedup();
        out
    }

    /// Number of placed fragments.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Places every fragment on a single site (degenerate / centralized).
    pub fn single_site(forest: &Forest) -> Placement {
        let mut p = Placement::new();
        for f in forest.fragment_ids() {
            p.assign(f, SiteId(0));
        }
        p
    }

    /// Round-robin placement over `n_sites` sites, in fragment-id order.
    /// The root fragment lands on site `S0`, which doubles as the
    /// coordinating site in the experiments.
    pub fn round_robin(forest: &Forest, n_sites: u32) -> Placement {
        assert!(n_sites > 0, "need at least one site");
        let mut p = Placement::new();
        for (i, f) in forest.fragment_ids().enumerate() {
            p.assign(f, SiteId(i as u32 % n_sites));
        }
        p
    }

    /// One dedicated site per fragment (the paper's Experiments 1–3:
    /// "each fragment is assigned to a different machine").
    pub fn one_per_fragment(forest: &Forest) -> Placement {
        let mut p = Placement::new();
        for (i, f) in forest.fragment_ids().enumerate() {
            p.assign(f, SiteId(i as u32));
        }
        p
    }

    /// Checks that every fragment of the forest is placed.
    pub fn validate(&self, forest: &Forest) -> Result<(), String> {
        self.check(forest).map_err(|e| e.to_string())
    }

    /// Typed variant of [`Placement::validate`]: the error names the
    /// first unplaced fragment.
    pub fn check(&self, forest: &Forest) -> Result<(), crate::FragError> {
        for f in forest.fragment_ids() {
            if !self.map.contains_key(&f) {
                return Err(crate::FragError::UnplacedFragment(f));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_xml::Tree;

    fn forest_with(n_extra: usize) -> Forest {
        let mut xml = String::from("<r>");
        for i in 0..n_extra {
            xml.push_str(&format!("<c{i}><leaf/></c{i}>"));
        }
        xml.push_str("</r>");
        let mut f = Forest::from_tree(Tree::parse(&xml).unwrap());
        for i in 0..n_extra {
            let tree = &f.fragment(FragmentId(0)).tree;
            let node = tree
                .descendants(tree.root())
                .find(|&n| tree.label_str(n) == format!("c{i}"))
                .unwrap();
            f.split(FragmentId(0), node).unwrap();
        }
        f
    }

    #[test]
    fn round_robin_covers_all_fragments() {
        let f = forest_with(5);
        let p = Placement::round_robin(&f, 3);
        p.validate(&f).unwrap();
        assert_eq!(p.sites().len(), 3);
        assert_eq!(p.site_of(FragmentId(0)), SiteId(0));
        assert_eq!(p.site_of(FragmentId(3)), SiteId(0));
        assert_eq!(p.site_of(FragmentId(4)), SiteId(1));
    }

    #[test]
    fn one_per_fragment_is_injective() {
        let f = forest_with(4);
        let p = Placement::one_per_fragment(&f);
        assert_eq!(p.sites().len(), f.card());
        for s in p.sites() {
            assert_eq!(p.fragments_at(s).len(), 1);
        }
    }

    #[test]
    fn single_site_collapses() {
        let f = forest_with(4);
        let p = Placement::single_site(&f);
        assert_eq!(p.sites(), vec![SiteId(0)]);
        assert_eq!(p.fragments_at(SiteId(0)).len(), f.card());
    }

    #[test]
    fn validate_flags_missing() {
        let f = forest_with(2);
        let mut p = Placement::new();
        p.assign(FragmentId(0), SiteId(0));
        assert!(p.validate(&f).is_err());
    }

    #[test]
    fn fragments_at_sorted() {
        let mut p = Placement::new();
        p.assign(FragmentId(3), SiteId(1));
        p.assign(FragmentId(1), SiteId(1));
        assert_eq!(
            p.fragments_at(SiteId(1)),
            vec![FragmentId(1), FragmentId(3)]
        );
        assert_eq!(p.try_site_of(FragmentId(9)), None);
    }
}

//! Criterion bench for Experiment 4 (Fig. 13): ParBoX on a single site
//! whose corpus is split into 1→10 equal fragments — time must stay
//! flat in the number of fragments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbox_bench::{single_site_split, Scale};
use parbox_core::parbox;
use parbox_net::{Cluster, NetworkModel};
use parbox_xmark::query_with_qlist;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 96 * 1024,
        seed: 2006,
    };
    let (_, q) = query_with_qlist(8, scale.seed);
    let mut group = c.benchmark_group("exp4");
    group.sample_size(10);
    for n in [1usize, 5, 10] {
        let (forest, placement) = single_site_split(scale, n);
        group.bench_with_input(BenchmarkId::new("ParBoX", n), &n, |b, _| {
            b.iter(|| {
                let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
                black_box(parbox(&cluster, &q).answer)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The [`Cluster`]: a fragmented document deployed on simulated sites.

use crate::NetworkModel;
use parbox_frag::{Forest, FragError, Placement, SiteId, SourceTree};
use parbox_xml::FragmentId;

/// A deployment of a fragmented document: forest + placement + induced
/// source tree + network model. This is the input every distributed
/// algorithm in `parbox-core` operates on.
#[derive(Debug, Clone)]
pub struct Cluster<'a> {
    /// The fragmented document.
    pub forest: &'a Forest,
    /// Assignment of fragments to sites (the paper's `h`).
    pub placement: &'a Placement,
    /// The induced source tree `S_T`.
    pub source_tree: SourceTree,
    /// Network cost model.
    pub model: NetworkModel,
}

impl<'a> Cluster<'a> {
    /// Builds a cluster, inducing the source tree.
    ///
    /// # Panics
    /// Panics if some fragment is unplaced. Fallible callers (the CLI, a
    /// serving engine fed external configuration) should use
    /// [`Cluster::try_new`] instead.
    pub fn new(forest: &'a Forest, placement: &'a Placement, model: NetworkModel) -> Cluster<'a> {
        Cluster::try_new(forest, placement, model)
            .unwrap_or_else(|e| panic!("invalid placement: {e}"))
    }

    /// Builds a cluster, inducing the source tree; errs (instead of
    /// panicking) when the placement does not cover every fragment.
    pub fn try_new(
        forest: &'a Forest,
        placement: &'a Placement,
        model: NetworkModel,
    ) -> Result<Cluster<'a>, FragError> {
        placement.check(forest)?;
        Ok(Cluster {
            forest,
            placement,
            source_tree: SourceTree::new(forest, placement),
            model,
        })
    }

    /// The coordinating site: the site storing the root fragment (the
    /// paper's convention, w.l.o.g.).
    pub fn coordinator(&self) -> SiteId {
        self.source_tree.site_of(self.forest.root_fragment())
    }

    /// All participating sites, ascending.
    pub fn sites(&self) -> Vec<SiteId> {
        self.source_tree.sites()
    }

    /// Fragments stored at `site`.
    pub fn fragments_at(&self, site: SiteId) -> Vec<FragmentId> {
        self.source_tree.fragments_at(site)
    }

    /// `|F_Si|`: total nodes stored at `site`.
    pub fn nodes_at(&self, site: SiteId) -> usize {
        self.fragments_at(site)
            .into_iter()
            .map(|f| self.forest.fragment(f).len())
            .sum()
    }

    /// Largest per-site aggregated fragment size `max_Si |F_Si|` — the
    /// parallel-computation bound of Fig. 4.
    pub fn max_site_nodes(&self) -> usize {
        self.sites()
            .into_iter()
            .map(|s| self.nodes_at(s))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_frag::strategies;
    use parbox_xml::Tree;

    fn setup() -> (Forest, Placement) {
        let tree = Tree::parse("<r><a><x/><y/></a><b><z/></b><c/></r>").unwrap();
        let mut forest = Forest::from_tree(tree);
        let root = forest.root_fragment();
        strategies::star(&mut forest, root).unwrap();
        let placement = Placement::round_robin(&forest, 2);
        (forest, placement)
    }

    #[test]
    fn coordinator_is_root_fragment_site() {
        let (forest, placement) = setup();
        let c = Cluster::new(&forest, &placement, NetworkModel::lan());
        assert_eq!(c.coordinator(), placement.site_of(forest.root_fragment()));
    }

    #[test]
    fn node_accounting_per_site() {
        let (forest, placement) = setup();
        let c = Cluster::new(&forest, &placement, NetworkModel::lan());
        let total: usize = c.sites().iter().map(|&s| c.nodes_at(s)).sum();
        assert_eq!(total, forest.total_nodes());
        assert!(c.max_site_nodes() >= total / c.sites().len());
    }

    #[test]
    #[should_panic(expected = "invalid placement")]
    fn unplaced_fragment_panics() {
        let (forest, _) = setup();
        let empty = Placement::new();
        let _ = Cluster::new(&forest, &empty, NetworkModel::lan());
    }

    #[test]
    fn try_new_reports_unplaced_fragment() {
        let (forest, placement) = setup();
        assert!(Cluster::try_new(&forest, &placement, NetworkModel::lan()).is_ok());
        let mut partial = Placement::new();
        partial.assign(forest.root_fragment(), parbox_frag::SiteId(0));
        let err = Cluster::try_new(&forest, &partial, NetworkModel::lan()).unwrap_err();
        assert!(matches!(err, FragError::UnplacedFragment(_)), "{err}");
    }
}

//! Micro-benchmarks of the building blocks: XML parsing, query
//! compilation, the centralized bitset kernel, the formula-valued
//! `bottomUp`, and the equation-system solver.

use criterion::{criterion_group, criterion_main, Criterion};
use parbox_bool::EquationSystem;
use parbox_core::{bottom_up, bottom_up_formula_only, centralized_eval, BitSet};
use parbox_frag::{Forest, Placement};
use parbox_query::{compile, parse_query};
use parbox_xmark::{generate, query_with_qlist, XmarkConfig};
use parbox_xml::Tree;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let tree = generate(XmarkConfig {
        target_bytes: 128 * 1024,
        seed: 1,
    });
    let xml = tree.to_xml();
    let (_, q8) = query_with_qlist(8, 1);
    let (_, q23) = query_with_qlist(23, 1);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    group.bench_function("xml_parse_128k", |b| {
        b.iter(|| black_box(Tree::parse(&xml).unwrap().len()))
    });

    group.bench_function("query_compile", |b| {
        b.iter(|| {
            let q =
                parse_query("[//stock[code/text() = \"GOOG\" and sell/text() = \"376\"]]").unwrap();
            black_box(compile(&q).len())
        })
    });

    group.bench_function("centralized_q8", |b| {
        b.iter(|| black_box(centralized_eval(&tree, &q8)))
    });

    group.bench_function("centralized_q23", |b| {
        b.iter(|| black_box(centralized_eval(&tree, &q23)))
    });

    // bottomUp over a fragment that keeps most of the document but has
    // one virtual node — the case where the spine fast path matters.
    let fragmented = {
        let mut forest = Forest::from_tree(tree.clone());
        let root = forest.root_fragment();
        let cut = {
            let t = &forest.fragment(root).tree;
            t.children(t.root()).next().unwrap()
        };
        forest.split(root, cut).unwrap();
        forest
    };
    let f0 = fragmented.root_fragment();
    group.bench_function("bottom_up_root_fragment_q8", |b| {
        b.iter(|| black_box(bottom_up(&fragmented.fragment(f0).tree, &q8).work_units))
    });

    // Ablation: the same fragment through the pure formula path — this is
    // what a literal reading of Fig. 3(b) costs without the spine
    // fast-path (DESIGN.md §4).
    group.bench_function("bottom_up_no_spine_fastpath_q8", |b| {
        b.iter(|| black_box(bottom_up_formula_only(&fragmented.fragment(f0).tree, &q8).work_units))
    });

    // Equation-system solve for a 100-fragment star.
    let sys = {
        let mut sys = EquationSystem::new();
        let mut star = Forest::from_tree(generate(XmarkConfig {
            target_bytes: 32 * 1024,
            seed: 2,
        }));
        let root = star.root_fragment();
        parbox_frag::strategies::star(&mut star, root).unwrap();
        let _ = Placement::one_per_fragment(&star);
        for f in star.fragment_ids() {
            sys.insert(f, bottom_up(&star.fragment(f).tree, &q8).triplet);
        }
        (sys, star.postorder())
    };
    group.bench_function("eval_st_solve", |b| {
        b.iter(|| black_box(sys.0.solve(&sys.1).unwrap().len()))
    });

    // Word-parallel bitset kernels at a serving-realistic width
    // (|QList| of a large batch) — the chunk-unrolled loops LLVM
    // autovectorizes.
    let width = 1024;
    let (mut x, mut y) = (BitSet::zeros(width), BitSet::zeros(width));
    for i in (0..width).step_by(3) {
        x.set(i, true);
    }
    for i in (0..width).step_by(7) {
        y.set(i, true);
    }
    group.bench_function("bitset_or_assign_1024", |b| {
        b.iter(|| {
            x.or_assign(black_box(&y));
            black_box(x.get(0))
        })
    });
    group.bench_function("bitset_and_assign_1024", |b| {
        b.iter(|| {
            let mut z = x.clone();
            z.and_assign(black_box(&y));
            black_box(z.is_empty())
        })
    });
    group.bench_function("bitset_count_ones_1024", |b| {
        b.iter(|| black_box(x.count_ones()))
    });
    group.bench_function("bitset_any_intersect_1024", |b| {
        b.iter(|| black_box(x.any_intersect(&y)))
    });
    group.bench_function("bitset_iter_ones_1024", |b| {
        b.iter(|| black_box(x.iter_ones().sum::<usize>()))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for Section 5: incremental view maintenance vs full
//! re-evaluation after a single-node insert.

use criterion::{criterion_group, criterion_main, Criterion};
use parbox_bench::{ft1, Scale};
use parbox_core::{parbox, MaterializedView, Update};
use parbox_net::{Cluster, NetworkModel};
use parbox_query::{compile, parse_query};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 96 * 1024,
        seed: 2006,
    };
    let q = compile(&parse_query("[//qmarker[key/text() = \"F0\"]]").unwrap());

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);

    group.bench_function("maintain_insert", |b| {
        b.iter_batched(
            || {
                let (forest, placement) = ft1(scale, 4);
                let (view, _) =
                    MaterializedView::materialize(&forest, &placement, NetworkModel::lan(), &q);
                (forest, placement, view)
            },
            |(mut forest, mut placement, mut view)| {
                let frag = forest.fragment_ids().last().unwrap();
                let parent = forest.fragment(frag).tree.root();
                let rep = view
                    .apply(
                        &mut forest,
                        &mut placement,
                        Update::InsNode {
                            frag,
                            parent,
                            label: "noise".into(),
                            text: None,
                        },
                    )
                    .unwrap();
                black_box(rep.answer)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("full_reeval", |b| {
        let (forest, placement) = ft1(scale, 4);
        b.iter(|| {
            let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
            black_box(parbox(&cluster, &q).answer)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

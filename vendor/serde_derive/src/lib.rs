//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` subset (see `vendor/README.md`) defines
//! `Serialize` / `Deserialize` as marker traits: the workspace only ever
//! derives them (the one JSON emitter in `parbox-bench` formats rows by
//! hand), so the derives just emit empty trait impls. Written against raw
//! [`proc_macro`] — no `syn`/`quote` — because the build container has no
//! crates.io access.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword.
///
/// Derive inputs with generic parameters are rejected: nothing in this
/// workspace derives on generic types, and supporting them without `syn`
/// would be speculative complexity.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "vendored serde_derive does not support generic type `{name}`"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("vendored serde_derive: no struct/enum/union in derive input");
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let name = type_name(input);
    format!("impl {trait_path} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the vendored marker trait `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Derives the vendored marker trait `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}

//! The source tree `S_T` (paper, Section 2.1 and Fig. 2b).
//!
//! The source tree is the *only* structure ParBoX's algorithms require:
//! it records, for every fragment, the site that stores it and its parent
//! fragment. It is induced from the fragment tree and the placement `h`,
//! and is small (one entry per fragment) — cheap enough to replicate on
//! every site for `FullDistParBoX`.

use crate::{Forest, Placement, SiteId};
use parbox_xml::FragmentId;
use std::collections::HashMap;

/// One entry of the source tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceEntry {
    /// The fragment.
    pub frag: FragmentId,
    /// Site storing the fragment.
    pub site: SiteId,
    /// Parent fragment (`None` for the root fragment).
    pub parent: Option<FragmentId>,
    /// Child fragments, in document order of their virtual nodes.
    pub children: Vec<FragmentId>,
    /// Depth in the fragment tree (root = 0).
    pub depth: usize,
}

/// The source tree of a fragmented, distributed document.
#[derive(Debug, Clone)]
pub struct SourceTree {
    entries: HashMap<FragmentId, SourceEntry>,
    root: FragmentId,
    postorder: Vec<FragmentId>,
}

impl SourceTree {
    /// Induces the source tree from a forest and a placement.
    ///
    /// # Panics
    /// Panics if some fragment is unplaced (use
    /// [`Placement::validate`] first for a graceful error).
    pub fn new(forest: &Forest, placement: &Placement) -> SourceTree {
        let mut entries = HashMap::with_capacity(forest.card());
        for id in forest.fragment_ids() {
            entries.insert(
                id,
                SourceEntry {
                    frag: id,
                    site: placement.site_of(id),
                    parent: forest.parent(id),
                    children: forest.children(id),
                    depth: forest.depth(id),
                },
            );
        }
        SourceTree {
            entries,
            root: forest.root_fragment(),
            postorder: forest.postorder(),
        }
    }

    /// The root fragment.
    #[inline]
    pub fn root(&self) -> FragmentId {
        self.root
    }

    /// Entry for one fragment.
    pub fn entry(&self, frag: FragmentId) -> &SourceEntry {
        self.entries
            .get(&frag)
            .unwrap_or_else(|| panic!("fragment {frag} not in source tree"))
    }

    /// Site storing a fragment.
    pub fn site_of(&self, frag: FragmentId) -> SiteId {
        self.entry(frag).site
    }

    /// All fragments, in bottom-up (postorder) order — the resolution
    /// order of `evalST`.
    pub fn postorder(&self) -> &[FragmentId] {
        &self.postorder
    }

    /// All fragments, unordered count.
    pub fn card(&self) -> usize {
        self.entries.len()
    }

    /// Distinct sites, ascending — the sites the coordinator contacts in
    /// stage 1 of ParBoX.
    pub fn sites(&self) -> Vec<SiteId> {
        let mut out: Vec<SiteId> = self.entries.values().map(|e| e.site).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Fragments stored at `site` (`card(F_Si)` is this list's length).
    pub fn fragments_at(&self, site: SiteId) -> Vec<FragmentId> {
        let mut out: Vec<FragmentId> = self
            .entries
            .values()
            .filter(|e| e.site == site)
            .map(|e| e.frag)
            .collect();
        out.sort();
        out
    }

    /// Fragments at a given fragment-tree depth — the wavefront visited by
    /// `LazyParBoX` at traversal step `depth`.
    pub fn fragments_at_depth(&self, depth: usize) -> Vec<FragmentId> {
        let mut out: Vec<FragmentId> = self
            .entries
            .values()
            .filter(|e| e.depth == depth)
            .map(|e| e.frag)
            .collect();
        out.sort();
        out
    }

    /// Maximum fragment-tree depth.
    pub fn max_depth(&self) -> usize {
        self.entries.values().map(|e| e.depth).max().unwrap_or(0)
    }

    /// Approximate serialized size in bytes (one compact record per
    /// fragment) — used when `FullDistParBoX` replicates the source tree.
    pub fn byte_size(&self) -> usize {
        // frag id + site id + parent id + child count ≈ 16 bytes/entry.
        16 * self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_xml::Tree;

    /// Builds the paper's Fig. 2 configuration: F0 ⊃ {F1 ⊃ {F2}, F3},
    /// with F2 and F3 both on site S2.
    fn fig2() -> (Forest, Placement) {
        let t = Tree::parse(
            "<portfolio>\
               <broker><name>Bache</name><market><title>NYSE</title></market></broker>\
               <broker2><market2><stock><code>GOOG</code></stock></market2></broker2>\
             </portfolio>",
        )
        .unwrap();
        let mut forest = Forest::from_tree(t);
        let f0 = forest.root_fragment();
        let find = |forest: &Forest, frag, label: &str| {
            let tree = &forest.fragment(frag).tree;
            tree.descendants(tree.root())
                .find(|&n| tree.label_str(n) == label)
                .unwrap()
        };
        // F1 = broker2 subtree; F2 = stock inside F1; F3 = market inside F0.
        let b2 = find(&forest, f0, "broker2");
        let f1 = forest.split(f0, b2).unwrap();
        let stock = find(&forest, f1, "stock");
        let f2 = forest.split(f1, stock).unwrap();
        let market = find(&forest, f0, "market");
        let f3 = forest.split(f0, market).unwrap();

        let mut p = Placement::new();
        p.assign(f0, SiteId(0));
        p.assign(f1, SiteId(1));
        p.assign(f2, SiteId(2));
        p.assign(f3, SiteId(2));
        (forest, p)
    }

    #[test]
    fn structure_matches_fig2() {
        let (forest, p) = fig2();
        let st = SourceTree::new(&forest, &p);
        assert_eq!(st.card(), 4);
        assert_eq!(st.root(), FragmentId(0));
        assert_eq!(st.entry(FragmentId(2)).parent, Some(FragmentId(1)));
        assert_eq!(st.entry(FragmentId(3)).parent, Some(FragmentId(0)));
        assert_eq!(st.sites(), vec![SiteId(0), SiteId(1), SiteId(2)]);
        // S2 stores both F2 and F3 — the site NaiveDistributed visits twice.
        assert_eq!(
            st.fragments_at(SiteId(2)),
            vec![FragmentId(2), FragmentId(3)]
        );
    }

    #[test]
    fn depths_and_wavefronts() {
        let (forest, p) = fig2();
        let st = SourceTree::new(&forest, &p);
        assert_eq!(st.fragments_at_depth(0), vec![FragmentId(0)]);
        assert_eq!(st.fragments_at_depth(1), vec![FragmentId(1), FragmentId(3)]);
        assert_eq!(st.fragments_at_depth(2), vec![FragmentId(2)]);
        assert_eq!(st.max_depth(), 2);
    }

    #[test]
    fn postorder_resolves_children_first() {
        let (forest, p) = fig2();
        let st = SourceTree::new(&forest, &p);
        let order = st.postorder();
        let pos = |f: FragmentId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(FragmentId(2)) < pos(FragmentId(1)));
        assert!(pos(FragmentId(1)) < pos(FragmentId(0)));
        assert!(pos(FragmentId(3)) < pos(FragmentId(0)));
    }

    #[test]
    fn byte_size_is_per_fragment() {
        let (forest, p) = fig2();
        let st = SourceTree::new(&forest, &p);
        assert_eq!(st.byte_size(), 16 * 4);
    }
}

//! Algorithm **LazyParBoX** (paper, Section 4): evaluate the query in
//! increasing depths of the source tree, stopping as soon as the partial
//! answers collected so far determine the result.
//!
//! The coordinator walks the source tree level by level. At step `i` it
//! requests evaluation of the fragments at depth `i`, collects their
//! triplets, and tries `evalST` over everything gathered so far; only if
//! variables of deeper fragments remain does it perform another step.
//! This trades elapsed time (levels are sequential, and within a step a
//! site evaluates one fragment at a time) for total computation: deep
//! fragments may never be evaluated at all.

use crate::algorithms::{query_wire_size, EvalOutcome};
use crate::eval::bottom_up;
use parbox_bool::{triplet_dag_wire_size, Triplet, Var};
use parbox_net::{run_sites_parallel, Cluster, MessageKind, RunReport};
use parbox_query::CompiledQuery;
use parbox_xml::FragmentId;
use std::collections::HashMap;
use std::time::Instant;

/// Evaluates `q` with LazyParBoX.
pub fn lazy_parbox(cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
    let wall = Instant::now();
    let mut report = RunReport::new();
    let coord = cluster.coordinator();
    let st = &cluster.source_tree;
    let qsize = query_wire_size(q);
    let mut gathered: HashMap<FragmentId, Triplet> = HashMap::new();
    let mut model_time = 0.0f64;
    let mut answer: Option<bool> = None;

    for depth in 0..=st.max_depth() {
        let frags = st.fragments_at_depth(depth);
        if frags.is_empty() {
            break;
        }
        // Group this wavefront by site; a site evaluates its fragments of
        // this level sequentially, different sites run in parallel.
        let mut by_site: HashMap<u32, Vec<FragmentId>> = HashMap::new();
        for f in &frags {
            by_site.entry(st.site_of(*f).0).or_default().push(*f);
        }
        let sites: Vec<parbox_net::SiteId> =
            by_site.keys().map(|&s| parbox_net::SiteId(s)).collect();
        for &s in &sites {
            // One visit (and one request message) per fragment at the site
            // for this step — the lazy algorithm's per-step coordination.
            for _ in &by_site[&s.0] {
                report.record_visit(s);
            }
            if s != coord {
                report.record_message(coord, s, qsize, MessageKind::Query);
            }
        }

        let runs = run_sites_parallel(&sites, |s| {
            by_site[&s.0]
                .iter()
                .map(|&f| (f, bottom_up(&cluster.forest.fragment(f).tree, q)))
                .collect::<Vec<_>>()
        });

        let mut step_compute = 0.0f64;
        let mut step_bytes: Vec<usize> = Vec::new();
        for run in runs {
            report.record_compute(run.site, run.elapsed);
            step_compute = step_compute.max(run.elapsed.as_secs_f64());
            for (frag, frun) in run.output {
                report.record_work(run.site, frun.work_units);
                let bytes = triplet_dag_wire_size(&frun.triplet);
                if run.site != coord {
                    report.record_message(run.site, coord, bytes, MessageKind::Triplet);
                    step_bytes.push(bytes);
                }
                gathered.insert(frag, frun.triplet);
            }
        }

        // Attempt to answer with what we have.
        let solve_start = Instant::now();
        let maybe = partial_solve(st, &gathered, q.root() as usize);
        let solve_time = solve_start.elapsed();
        report.record_compute(coord, solve_time);
        report.record_work(coord, (q.len() * gathered.len()) as u64);

        if sites.iter().any(|&s| s != coord) {
            model_time += cluster.model.transfer_time(qsize);
        }
        model_time += step_compute
            + cluster.model.shared_link_time(step_bytes.iter().copied())
            + solve_time.as_secs_f64();

        if let Some(a) = maybe {
            answer = Some(a);
            break;
        }
    }

    report.elapsed_model_s = model_time;
    report.elapsed_wall_s = wall.elapsed().as_secs_f64();
    EvalOutcome {
        answer: answer.expect("full depth always determines the answer"),
        report,
        algorithm: "LazyParBoX",
    }
}

/// Tries to determine the root answer from the triplets gathered so far.
///
/// Evaluated fragments are processed bottom-up; their triplets are
/// substituted with the (possibly still-open) triplets of evaluated
/// children, while variables of unevaluated fragments stay free. The
/// answer is known iff the root `V` entry folds to a constant.
///
/// Generic over the map's value type so callers holding shared
/// `Arc<Triplet>` caches (the serving engine) can solve without cloning
/// every triplet into an owned map first.
pub(crate) fn partial_solve<T: std::borrow::Borrow<Triplet>>(
    st: &parbox_frag::SourceTree,
    gathered: &HashMap<FragmentId, T>,
    root_sub: usize,
) -> Option<bool> {
    let mut partial: HashMap<FragmentId, Triplet> = HashMap::new();
    for &frag in st.postorder() {
        let Some(t) = gathered.get(&frag) else {
            continue;
        };
        let sub = t.borrow().substitute(&|var: Var| {
            partial
                .get(&var.frag)
                .map(|pt| pt.get(var.vec)[var.sub as usize])
        });
        partial.insert(frag, sub);
    }
    partial.get(&st.root())?.v[root_sub].as_const()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::parbox;
    use parbox_frag::{strategies, Forest, Placement};
    use parbox_net::NetworkModel;
    use parbox_query::{compile, parse_query};
    use parbox_xml::Tree;

    fn chain_with_markers(n: usize) -> Forest {
        // lvl0 > lvl1 > … ; each level i carries <markI>…</markI>.
        let mut xml = String::new();
        for i in 0..n * 2 {
            xml.push_str(&format!("<lvl{i}><mark{i}/><pad/>", i = i));
        }
        xml.push_str("<bottom/>");
        for i in (0..n * 2).rev() {
            xml.push_str(&format!("</lvl{i}>"));
        }
        let mut forest = Forest::from_tree(Tree::parse(&xml).unwrap());
        strategies::chain(&mut forest, n).unwrap();
        forest
    }

    #[test]
    fn agrees_with_parbox_on_chains() {
        let forest = chain_with_markers(5);
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for src in [
            "[//mark0]",
            "[//bottom]",
            "[//nope]",
            "[//mark0 and //bottom]",
        ] {
            let q = compile(&parse_query(src).unwrap());
            assert_eq!(
                lazy_parbox(&cluster, &q).answer,
                parbox(&cluster, &q).answer,
                "on {src}"
            );
        }
    }

    #[test]
    fn early_satisfaction_skips_deep_fragments() {
        let forest = chain_with_markers(6);
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        // mark0 lives in the root fragment: one step must suffice.
        let q = compile(&parse_query("[//mark0]").unwrap());
        let lazy = lazy_parbox(&cluster, &q);
        let eager = parbox(&cluster, &q);
        assert!(lazy.answer);
        assert!(
            lazy.report.total_work() < eager.report.total_work(),
            "lazy {} !< eager {}",
            lazy.report.total_work(),
            eager.report.total_work()
        );
        // Only the first wavefront (root + depth-1) was evaluated.
        let visited: usize = lazy.report.sites().map(|(_, r)| r.visits).sum();
        assert!(visited <= 2, "visited {visited} fragments");
    }

    #[test]
    fn negative_answers_can_also_short_circuit() {
        // not(//mark0): mark0 IS present in the root fragment, so after
        // step 0 the answer (false) is already determined.
        let forest = chain_with_markers(5);
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[not //mark0]").unwrap());
        let lazy = lazy_parbox(&cluster, &q);
        assert!(!lazy.answer);
        let visited: usize = lazy.report.sites().map(|(_, r)| r.visits).sum();
        assert!(visited <= 2);
    }

    #[test]
    fn bottom_satisfaction_walks_all_levels() {
        let forest = chain_with_markers(4);
        let card = forest.card();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//bottom]").unwrap());
        let lazy = lazy_parbox(&cluster, &q);
        assert!(lazy.answer);
        let visited: usize = lazy.report.sites().map(|(_, r)| r.visits).sum();
        assert_eq!(visited, card, "every fragment had to be evaluated");
    }

    #[test]
    fn fragments_below_answering_depth_are_never_evaluated() {
        // A deep chain with one fragment (and one site) per level; each
        // fragment holds two `lvl` levels, so `mark2` lives in F1 at
        // fragment depth 1. The step loop must stop after the depth-1
        // wavefront: every fragment below the answering depth gets no
        // visit, no work and no compute at all.
        let forest = chain_with_markers(6);
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let st = &cluster.source_tree;
        let q = compile(&parse_query("[//mark2]").unwrap());
        let out = lazy_parbox(&cluster, &q);
        assert!(out.answer);

        let answering_depth = 1usize;
        for frag in forest.fragment_ids() {
            let depth = forest.depth(frag);
            let site = st.site_of(frag);
            let rep = out.report.site(site);
            if depth > answering_depth {
                assert_eq!(rep.visits, 0, "{frag} (depth {depth}) was visited");
                assert_eq!(rep.work_units, 0, "{frag} (depth {depth}) did work");
                assert_eq!(rep.compute_s, 0.0, "{frag} (depth {depth}) computed");
            } else if site != cluster.coordinator() {
                assert_eq!(rep.visits, 1, "{frag} (depth {depth}) missing its visit");
                assert!(rep.work_units > 0, "{frag} (depth {depth}) did no work");
            }
        }
    }

    #[test]
    fn early_termination_work_is_bounded_by_evaluated_wavefronts() {
        // Work units are exactly `nodes × |QList|` per evaluated fragment
        // (plus per-step solve terms); stopping at depth d bounds total
        // work by the nodes of depths ≤ d — far below eager ParBoX's
        // whole-chain evaluation on a long chain.
        let forest = chain_with_markers(6);
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//mark2]").unwrap());
        let lazy = lazy_parbox(&cluster, &q);

        let shallow_nodes: u64 = forest
            .fragment_ids()
            .filter(|&f| forest.depth(f) <= 1)
            .map(|f| forest.fragment(f).len() as u64)
            .sum();
        // Evaluation work of the two evaluated fragments + the per-step
        // solve accounting (|q| × gathered fragments per step, 2 steps).
        let solve_slack = (q.len() * forest.card() * 2) as u64;
        assert!(
            lazy.report.total_work() <= shallow_nodes * q.len() as u64 + solve_slack,
            "lazy work {} exceeds the depth-1 wavefront bound {}",
            lazy.report.total_work(),
            shallow_nodes * q.len() as u64 + solve_slack
        );
        // Strictly below eager ParBoX, which evaluates all six levels.
        let eager = parbox(&cluster, &q);
        assert!(lazy.report.total_work() * 2 < eager.report.total_work());
    }

    #[test]
    fn partial_solve_reports_unknown() {
        let forest = chain_with_markers(3);
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//bottom]").unwrap());
        // Gather only the root fragment's triplet.
        let root = forest.root_fragment();
        let run = crate::eval::bottom_up(&forest.fragment(root).tree, &q);
        let mut gathered = HashMap::new();
        gathered.insert(root, run.triplet);
        assert_eq!(
            partial_solve(&cluster.source_tree, &gathered, q.root() as usize),
            None
        );
    }
}

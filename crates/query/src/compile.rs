//! Compilation of normalized queries into the paper's `QList`.
//!
//! A [`CompiledQuery`] is a flat program of [`SubQuery`] op-codes in
//! topological order: each operand index refers to an *earlier* entry, so
//! one left-to-right pass computes all sub-query values at a node — exactly
//! the structure procedure `bottomUp` (Fig. 3b) iterates over.
//!
//! The op-codes mirror the paper's cases c0–c8. Two remarks:
//!
//! * case c4 (`ε[qj]/qk`) computes `V(qj) ∧ V(qk)`, which coincides with
//!   case c7 (`qj ∧ qk`); we emit a single [`SubQuery::And`] op for both;
//! * identical sub-queries are hash-consed, so `|QList|` counts *distinct*
//!   sub-queries (the paper's bound `O(|q|)` still holds).

use crate::ast::Query;
use crate::normalize::{normalize, NQuery, NStep};
use parbox_xml::{LabelId, LabelTable};
use std::collections::HashMap;
use std::fmt;

/// Index of a sub-query within a [`CompiledQuery`].
pub type SubId = u32;

/// One sub-query op-code (an entry of the paper's `QList`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SubQuery {
    /// `ε` — true at every node (case c0).
    True,
    /// `label() = A` (case c1).
    LabelIs(String),
    /// `text() = s` (case c2).
    TextIs(String),
    /// `*/q` — true iff `q` holds at some child (case c3, reads `CV`).
    Child(SubId),
    /// `//q` — true iff `q` holds at the node or some descendant
    /// (case c5, reads `DV`).
    Desc(SubId),
    /// `q ∨ q` (case c6).
    Or(SubId, SubId),
    /// `q ∧ q` (cases c4 and c7).
    And(SubId, SubId),
    /// `¬ q` (case c8).
    Not(SubId),
}

impl SubQuery {
    /// Operand sub-queries referenced by this op.
    pub fn operands(&self) -> impl Iterator<Item = SubId> {
        let (a, b) = match *self {
            SubQuery::True | SubQuery::LabelIs(_) | SubQuery::TextIs(_) => (None, None),
            SubQuery::Child(x) | SubQuery::Desc(x) | SubQuery::Not(x) => (Some(x), None),
            SubQuery::Or(x, y) | SubQuery::And(x, y) => (Some(x), Some(y)),
        };
        a.into_iter().chain(b)
    }

    /// A copy with operand ids rewritten through `f` (used to translate a
    /// program's ops into another program's id space).
    fn remap(&self, f: impl Fn(SubId) -> SubId) -> SubQuery {
        match self {
            SubQuery::True | SubQuery::LabelIs(_) | SubQuery::TextIs(_) => self.clone(),
            SubQuery::Child(x) => SubQuery::Child(f(*x)),
            SubQuery::Desc(x) => SubQuery::Desc(f(*x)),
            SubQuery::Not(x) => SubQuery::Not(f(*x)),
            SubQuery::Or(x, y) => SubQuery::Or(f(*x), f(*y)),
            SubQuery::And(x, y) => SubQuery::And(f(*x), f(*y)),
        }
    }
}

/// A stable, structural fingerprint of a compiled query.
///
/// Fingerprints are computed *hash-consed*: every sub-query's fingerprint
/// is an FNV-1a hash over its op-code tag and the fingerprints of its
/// operands, and the query fingerprint is its root sub-query's. Two
/// programs denoting the same (hash-consed) query structure therefore
/// fingerprint identically — in particular, a [`QueryBatch`] member's
/// fingerprint equals the fingerprint of the member compiled solo, which
/// is what lets a serving engine key its triplet caches by
/// `(fragment, fingerprint)` across batch boundaries.
///
/// Fingerprints depend only on the program structure (no pointer values,
/// no process state), so they are stable across runs and machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(pub u64);

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, x: u64) -> u64 {
    fnv_bytes(h, &x.to_le_bytes())
}

/// Computes the structural fingerprint of every sub-query of a program,
/// in program order. Entry `i` depends only on the *structure* reachable
/// from sub-query `i`, never on its numeric id.
pub fn sub_fingerprints(subs: &[SubQuery]) -> Vec<u64> {
    let mut fps: Vec<u64> = Vec::with_capacity(subs.len());
    for s in subs {
        let h = match s {
            SubQuery::True => fnv_bytes(FNV_OFFSET, &[0]),
            SubQuery::LabelIs(a) => fnv_bytes(fnv_bytes(FNV_OFFSET, &[1]), a.as_bytes()),
            SubQuery::TextIs(t) => fnv_bytes(fnv_bytes(FNV_OFFSET, &[2]), t.as_bytes()),
            SubQuery::Child(x) => fnv_u64(fnv_bytes(FNV_OFFSET, &[3]), fps[*x as usize]),
            SubQuery::Desc(x) => fnv_u64(fnv_bytes(FNV_OFFSET, &[4]), fps[*x as usize]),
            SubQuery::Not(x) => fnv_u64(fnv_bytes(FNV_OFFSET, &[5]), fps[*x as usize]),
            SubQuery::Or(x, y) => fnv_u64(
                fnv_u64(fnv_bytes(FNV_OFFSET, &[6]), fps[*x as usize]),
                fps[*y as usize],
            ),
            SubQuery::And(x, y) => fnv_u64(
                fnv_u64(fnv_bytes(FNV_OFFSET, &[7]), fps[*x as usize]),
                fps[*y as usize],
            ),
        };
        fps.push(h);
    }
    fps
}

/// A compiled XBL query: the topologically sorted list of distinct
/// sub-queries (`QList`) plus the id of the root query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledQuery {
    subs: Vec<SubQuery>,
    root: SubId,
    /// Structural fingerprint of the root sub-query (derived from `subs`
    /// and `root`, so the derived equality stays consistent).
    fp: QueryFingerprint,
}

impl CompiledQuery {
    /// Assembles a compiled query from raw parts. The caller must uphold
    /// the topological-order invariant (operands precede their users);
    /// this is checked in debug builds.
    pub fn from_parts(subs: Vec<SubQuery>, root: SubId) -> CompiledQuery {
        debug_assert!((root as usize) < subs.len());
        debug_assert!(subs
            .iter()
            .enumerate()
            .all(|(i, s)| s.operands().all(|op| (op as usize) < i)));
        let fp = QueryFingerprint(sub_fingerprints(&subs)[root as usize]);
        CompiledQuery { subs, root, fp }
    }

    /// The query's stable structural fingerprint — see
    /// [`QueryFingerprint`] for the guarantees it carries.
    #[inline]
    pub fn fingerprint(&self) -> QueryFingerprint {
        self.fp
    }

    /// Fingerprint of the whole program *as a compiled artifact*: hashes
    /// every sub-query's structural fingerprint in program order, so two
    /// programs collide only when their `QList`s are identical entry for
    /// entry — same structure *and* same numbering — which is exactly
    /// when their triplets are interchangeable.
    ///
    /// Contrast with [`CompiledQuery::fingerprint`], which identifies the
    /// root sub-query's *meaning* and deliberately ignores unreachable
    /// entries: a merged [`QueryBatch`] program shares its root
    /// fingerprint with its last member, but not its program fingerprint.
    /// Caches holding whole-program evaluation results (a site worker's
    /// triplet cache) must key by this one.
    pub fn program_fingerprint(&self) -> QueryFingerprint {
        let mut h = FNV_OFFSET;
        for fp in sub_fingerprints(&self.subs) {
            h = fnv_u64(h, fp);
        }
        QueryFingerprint(fnv_u64(h, self.root as u64))
    }

    /// For each sub-query of `self`, the id of the structurally identical
    /// sub-query in `host`; `None` if some sub-query has no counterpart.
    ///
    /// A [`QueryBatch`] member always embeds into the batch's merged
    /// program (`compile_batch` hash-conses every member sub-query into
    /// the merged `QList`), so this mapping recovers where each member
    /// entry landed — the serving engine uses it to project a member's
    /// triplet out of a merged batch triplet.
    pub fn embedding_into(&self, host: &CompiledQuery) -> Option<Vec<SubId>> {
        let memo: HashMap<&SubQuery, SubId> = host
            .subs
            .iter()
            .enumerate()
            .map(|(i, s)| (s, i as SubId))
            .collect();
        let mut map: Vec<SubId> = Vec::with_capacity(self.subs.len());
        for s in &self.subs {
            let translated = s.remap(|op| map[op as usize]);
            let id = *memo.get(&translated)?;
            map.push(id);
        }
        Some(map)
    }

    /// `|QList|` — the number of distinct sub-queries. This is the query
    /// size knob of the paper's experiments (2, 8, 15, 23).
    #[inline]
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True for the trivial (empty) program; never produced by [`compile`].
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Id of the root sub-query (the query answer).
    #[inline]
    pub fn root(&self) -> SubId {
        self.root
    }

    /// The sub-query list in topological order.
    #[inline]
    pub fn subs(&self) -> &[SubQuery] {
        &self.subs
    }

    /// Resolves label names against a tree's label table, producing a
    /// program whose hot-loop comparisons are integer equality.
    pub fn resolve(&self, labels: &LabelTable) -> ResolvedQuery {
        ResolvedQuery {
            ops: self
                .subs
                .iter()
                .map(|s| match s {
                    SubQuery::True => Op::True,
                    SubQuery::LabelIs(a) => Op::LabelIs(labels.lookup(a)),
                    SubQuery::TextIs(t) => Op::TextIs(t.as_str().into()),
                    SubQuery::Child(x) => Op::Child(*x),
                    SubQuery::Desc(x) => Op::Desc(*x),
                    SubQuery::Or(x, y) => Op::Or(*x, *y),
                    SubQuery::And(x, y) => Op::And(*x, *y),
                    SubQuery::Not(x) => Op::Not(*x),
                })
                .collect(),
            root: self.root,
        }
    }
}

impl fmt::Display for CompiledQuery {
    /// Renders the program in the style of the paper's Example 2.1:
    /// `q1 = label() = code`, `q2 = text() = "yhoo"`, `q3 = q1 ∧ q2`, …
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.subs.iter().enumerate() {
            let i = i + 1; // paper numbers from q1
            match s {
                SubQuery::True => writeln!(f, "q{i} = ε")?,
                SubQuery::LabelIs(a) => writeln!(f, "q{i} = (label() = {a})")?,
                SubQuery::TextIs(t) => writeln!(f, "q{i} = (text() = \"{t}\")")?,
                SubQuery::Child(x) => writeln!(f, "q{i} = */q{}", x + 1)?,
                SubQuery::Desc(x) => writeln!(f, "q{i} = //q{}", x + 1)?,
                SubQuery::Or(x, y) => writeln!(f, "q{i} = q{} ∨ q{}", x + 1, y + 1)?,
                SubQuery::And(x, y) => writeln!(f, "q{i} = q{} ∧ q{}", x + 1, y + 1)?,
                SubQuery::Not(x) => writeln!(f, "q{i} = ¬q{}", x + 1)?,
            }
        }
        writeln!(f, "root = q{}", self.root + 1)
    }
}

/// A compiled query with labels resolved against one tree's label table.
#[derive(Debug, Clone)]
pub struct ResolvedQuery {
    /// Resolved op-codes, topologically ordered.
    pub ops: Vec<Op>,
    /// Root op id.
    pub root: SubId,
}

impl ResolvedQuery {
    /// Number of ops.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when there are no ops (never produced by [`compile`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Resolved sub-query op-code. `LabelIs(None)` means the label does not
/// occur in the tree at all, so the predicate is false everywhere.
#[derive(Debug, Clone)]
pub enum Op {
    /// `ε`.
    True,
    /// `label() = A`, with `A` resolved (or absent from the tree).
    LabelIs(Option<LabelId>),
    /// `text() = s`.
    TextIs(Box<str>),
    /// `*/q`.
    Child(SubId),
    /// `//q`.
    Desc(SubId),
    /// `q ∨ q`.
    Or(SubId, SubId),
    /// `q ∧ q`.
    And(SubId, SubId),
    /// `¬ q`.
    Not(SubId),
}

/// Compiles a query: `normalize` + `QList` construction, both `O(|q|)`.
///
/// ```
/// use parbox_query::{parse_query, compile};
/// let q = parse_query("[//stock[code/text() = \"yhoo\"]]").unwrap();
/// let c = compile(&q);
/// assert!(c.len() >= 6);
/// assert_eq!(c.root() as usize, c.len() - 1);
/// ```
pub fn compile(q: &Query) -> CompiledQuery {
    let n = normalize(q);
    let mut b = Builder {
        subs: Vec::new(),
        memo: HashMap::new(),
    };
    let root = b.compile_nquery(&n);
    CompiledQuery::from_parts(b.subs, root)
}

/// A batch of queries compiled into **one shared program**: the union of
/// the member queries' `QList`s, hash-consed across query boundaries, plus
/// one root id per member.
///
/// This is the front end of the multi-query batch engine: evaluating the
/// merged program once per fragment computes every member query's answer
/// in the same tree traversal, so a whole batch costs one site visit and
/// one `(V, CV, DV)` exchange instead of one per query. Sub-queries shared
/// between members (common predicates, common path prefixes) are compiled
/// — and evaluated, and shipped — exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBatch {
    merged: CompiledQuery,
    roots: Vec<SubId>,
    /// Structural fingerprint of each member (derived from `merged` and
    /// `roots`), equal to the fingerprint of the member compiled solo.
    member_fps: Vec<QueryFingerprint>,
}

impl QueryBatch {
    /// The merged program covering every member query.
    ///
    /// Its [`CompiledQuery::root`] is the last member's root; per-member
    /// answers are read through [`QueryBatch::roots`] instead.
    #[inline]
    pub fn merged(&self) -> &CompiledQuery {
        &self.merged
    }

    /// Root sub-query id of each member, in input order.
    #[inline]
    pub fn roots(&self) -> &[SubId] {
        &self.roots
    }

    /// Root sub-query id of member `i`.
    #[inline]
    pub fn root_of(&self, i: usize) -> SubId {
        self.roots[i]
    }

    /// Structural fingerprint of member `i` — equal to
    /// `compile(&members[i]).fingerprint()`, because fingerprints are
    /// computed over sub-query structure, not numeric ids.
    #[inline]
    pub fn member_fingerprint(&self, i: usize) -> QueryFingerprint {
        self.member_fps[i]
    }

    /// Number of member queries in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True for a batch with no member queries (never produced by
    /// [`compile_batch`], which rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// `|QList|` of the merged program — the width of the batched
    /// `(V, CV, DV)` triplets. At most the sum of the members' individual
    /// `|QList|`s; smaller whenever members share sub-queries.
    #[inline]
    pub fn merged_len(&self) -> usize {
        self.merged.len()
    }
}

/// Compiles `queries` into a [`QueryBatch`] with one merged, deduplicated
/// `QList`. Linear in the total query size; panics on an empty slice.
///
/// ```
/// use parbox_query::{compile, compile_batch, parse_query};
///
/// let queries: Vec<_> = ["[//item and //person]", "[//item and //price]"]
///     .iter()
///     .map(|s| parse_query(s).unwrap())
///     .collect();
/// let batch = compile_batch(&queries);
/// assert_eq!(batch.len(), 2);
/// // `//item` is compiled once: the merged program is smaller than the
/// // two programs compiled separately.
/// let separate: usize = queries.iter().map(|q| compile(q).len()).sum();
/// assert!(batch.merged_len() < separate);
/// ```
pub fn compile_batch(queries: &[Query]) -> QueryBatch {
    assert!(!queries.is_empty(), "empty query batch");
    let mut b = Builder {
        subs: Vec::new(),
        memo: HashMap::new(),
    };
    let roots: Vec<SubId> = queries
        .iter()
        .map(|q| {
            let n = normalize(q);
            b.compile_nquery(&n)
        })
        .collect();
    let root = *roots.last().expect("non-empty batch");
    let merged = CompiledQuery::from_parts(b.subs, root);
    let fps = sub_fingerprints(merged.subs());
    let member_fps = roots
        .iter()
        .map(|&r| QueryFingerprint(fps[r as usize]))
        .collect();
    QueryBatch {
        merged,
        roots,
        member_fps,
    }
}

/// Merges *already compiled* programs into a [`QueryBatch`], hash-consing
/// their `QList`s exactly as [`compile_batch`] would — without re-running
/// parse/normalize/compile on the members. Produces the identical batch:
/// a serving engine that compiled each query once at admission reuses
/// those programs for every round the query participates in.
///
/// Panics on an empty slice, like [`compile_batch`].
///
/// ```
/// use parbox_query::{compile, compile_batch, merge_programs, parse_query};
///
/// let queries: Vec<_> = ["[//item and //person]", "[//item and //price]"]
///     .iter()
///     .map(|s| parse_query(s).unwrap())
///     .collect();
/// let compiled: Vec<_> = queries.iter().map(compile).collect();
/// assert_eq!(merge_programs(&compiled), compile_batch(&queries));
/// ```
pub fn merge_programs(programs: &[CompiledQuery]) -> QueryBatch {
    assert!(!programs.is_empty(), "empty query batch");
    let mut b = Builder {
        subs: Vec::new(),
        memo: HashMap::new(),
    };
    let mut roots: Vec<SubId> = Vec::with_capacity(programs.len());
    let mut member_fps: Vec<QueryFingerprint> = Vec::with_capacity(programs.len());
    for p in programs {
        // Translate the member's ops into the shared id space; `add`
        // dedups against everything merged so far.
        let mut map: Vec<SubId> = Vec::with_capacity(p.len());
        for s in p.subs() {
            let translated = s.remap(|op| map[op as usize]);
            map.push(b.add(translated));
        }
        roots.push(map[p.root() as usize]);
        member_fps.push(p.fingerprint());
    }
    let root = *roots.last().expect("non-empty batch");
    QueryBatch {
        merged: CompiledQuery::from_parts(b.subs, root),
        roots,
        member_fps,
    }
}

struct Builder {
    subs: Vec<SubQuery>,
    memo: HashMap<SubQuery, SubId>,
}

impl Builder {
    fn add(&mut self, s: SubQuery) -> SubId {
        if let Some(&id) = self.memo.get(&s) {
            return id;
        }
        let id = self.subs.len() as SubId;
        self.subs.push(s.clone());
        self.memo.insert(s, id);
        id
    }

    fn compile_nquery(&mut self, q: &NQuery) -> SubId {
        match q {
            NQuery::True => self.add(SubQuery::True),
            NQuery::LabelIs(a) => self.add(SubQuery::LabelIs(a.clone())),
            NQuery::TextIs(s) => self.add(SubQuery::TextIs(s.clone())),
            NQuery::Path(steps) => self.compile_steps(steps),
            NQuery::Not(inner) => {
                let x = self.compile_nquery(inner);
                self.add(SubQuery::Not(x))
            }
            NQuery::And(a, b) => {
                let x = self.compile_nquery(a);
                let y = self.compile_nquery(b);
                self.add(SubQuery::And(x, y))
            }
            NQuery::Or(a, b) => {
                let x = self.compile_nquery(a);
                let y = self.compile_nquery(b);
                self.add(SubQuery::Or(x, y))
            }
        }
    }

    /// Compiles `β1/…/βn` right-to-left: the value of the path at a node is
    /// the value of β1 applied to the compiled rest.
    fn compile_steps(&mut self, steps: &[NStep]) -> SubId {
        match steps.split_first() {
            None => self.add(SubQuery::True),
            Some((NStep::Wildcard, rest)) => {
                let r = self.compile_steps(rest);
                self.add(SubQuery::Child(r))
            }
            Some((NStep::DescOrSelf, rest)) => {
                let r = self.compile_steps(rest);
                self.add(SubQuery::Desc(r))
            }
            Some((NStep::Qual(q), rest)) => {
                let x = self.compile_nquery(q);
                if rest.is_empty() {
                    // ε[q]/ε ≡ q.
                    x
                } else {
                    let r = self.compile_steps(rest);
                    self.add(SubQuery::And(x, r))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn comp(src: &str) -> CompiledQuery {
        compile(&parse_query(src).unwrap())
    }

    #[test]
    fn topological_order_invariant() {
        for src in [
            "[//a]",
            "[//stock[code/text() = \"yhoo\"]]",
            "[//a and //b or not(//c//d[label() = e])]",
        ] {
            let c = comp(src);
            for (i, s) in c.subs().iter().enumerate() {
                for op in s.operands() {
                    assert!((op as usize) < i, "operand q{op} not before q{i} in {src}");
                }
            }
            assert!((c.root() as usize) < c.len());
        }
    }

    #[test]
    fn example_2_1_compiles_to_expected_ops() {
        // //stock[code/text() = "yhoo"]
        let c = comp("[//stock[code/text() = \"yhoo\"]]");
        // Distinct sub-queries after ε-elision and c4/c7 fusion (the
        // paper's QList in Example 2.1 lists ten entries; ours drops the
        // redundant ε wrappers):
        //   q1 = label()=stock        (from the merged qualifier's ∧-left)
        //   q2 = label()=code
        //   q3 = text()="yhoo"
        //   q4 = q2 ∧ q3
        //   q5 = */q4
        //   q6 = q1 ∧ q5
        //   q7 = */q6
        //   q8 = //q7
        assert_eq!(c.len(), 8);
        assert!(matches!(c.subs()[0], SubQuery::LabelIs(ref a) if a == "stock"));
        assert!(matches!(c.subs()[1], SubQuery::LabelIs(ref a) if a == "code"));
        assert!(matches!(c.subs()[2], SubQuery::TextIs(ref t) if t == "yhoo"));
        assert!(matches!(c.subs()[3], SubQuery::And(1, 2)));
        assert!(matches!(c.subs()[4], SubQuery::Child(3)));
        assert!(matches!(c.subs()[5], SubQuery::And(0, 4)));
        assert!(matches!(c.subs()[6], SubQuery::Child(5)));
        assert!(matches!(c.subs()[7], SubQuery::Desc(6)));
        assert_eq!(c.root(), 7);
    }

    #[test]
    fn intro_query_structure() {
        // [//A ∧ //B] from the paper's introduction.
        let c = comp("[//A ∧ //B]");
        assert_eq!(c.len(), 7); // label A, child, desc, label B, child, desc, and
        assert!(matches!(c.subs()[c.root() as usize], SubQuery::And(_, _)));
    }

    #[test]
    fn hash_consing_dedups_repeated_subqueries() {
        let once = comp("[//a]");
        let twice = comp("[//a or //a]");
        // Only the Or op is new.
        assert_eq!(twice.len(), once.len() + 1);
    }

    #[test]
    fn qlist_size_linear_in_query() {
        let small = comp("[//a]");
        let big = comp("[//a/b/c/d/e/f/g]");
        assert!(big.len() > small.len());
        assert!(big.len() <= 3 * 7 + 2); // O(|q|)
    }

    #[test]
    fn resolve_maps_missing_labels_to_none() {
        let mut labels = parbox_xml::LabelTable::new();
        labels.intern("a");
        let c = comp("[//a and //zzz]");
        let r = c.resolve(&labels);
        let mut saw_some = false;
        let mut saw_none = false;
        for op in &r.ops {
            match op {
                Op::LabelIs(Some(_)) => saw_some = true,
                Op::LabelIs(None) => saw_none = true,
                _ => {}
            }
        }
        assert!(saw_some && saw_none);
        assert_eq!(r.len(), c.len());
    }

    #[test]
    fn display_lists_subqueries_like_example_2_1() {
        let c = comp("[//stock[code/text() = \"yhoo\"]]");
        let s = c.to_string();
        assert!(s.contains("q1 = (label() = stock)"), "{s}");
        assert!(s.contains("q4 = q2 ∧ q3"), "{s}");
        assert!(s.contains("root = q8"), "{s}");
    }

    #[test]
    fn trivial_query_compiles() {
        let c = comp("[.]");
        assert_eq!(c.len(), 1);
        assert!(matches!(c.subs()[0], SubQuery::True));
    }

    fn batch(srcs: &[&str]) -> QueryBatch {
        let queries: Vec<_> = srcs.iter().map(|s| parse_query(s).unwrap()).collect();
        compile_batch(&queries)
    }

    #[test]
    fn batch_merged_program_is_topologically_ordered() {
        let b = batch(&["[//a and //b]", "[//b or //c]", "[not(//a)]"]);
        assert_eq!(b.len(), 3);
        for (i, s) in b.merged().subs().iter().enumerate() {
            for op in s.operands() {
                assert!((op as usize) < i);
            }
        }
        for &r in b.roots() {
            assert!((r as usize) < b.merged_len());
        }
    }

    #[test]
    fn batch_members_evaluate_like_their_solo_programs() {
        // Each member's root in the merged program denotes the same
        // sub-query as its solo compilation's root op.
        let srcs = ["[//a and //b]", "[//a]", "[//x[y/text() = \"v\"]]"];
        let b = batch(&srcs);
        for (i, src) in srcs.iter().enumerate() {
            let solo = comp(src);
            let merged_root = &b.merged().subs()[b.root_of(i) as usize];
            let solo_root = &solo.subs()[solo.root() as usize];
            assert_eq!(
                std::mem::discriminant(merged_root),
                std::mem::discriminant(solo_root),
                "root op of {src}"
            );
        }
    }

    #[test]
    fn batch_dedups_across_members() {
        let solo = comp("[//a and //b]");
        // Two identical members: merged program no bigger than one copy.
        let b = batch(&["[//a and //b]", "[//a and //b]"]);
        assert_eq!(b.merged_len(), solo.len());
        assert_eq!(b.root_of(0), b.root_of(1));
        // Overlapping members share the `//a` chain.
        let b = batch(&["[//a and //b]", "[//a and //c]"]);
        let sum = solo.len() + comp("[//a and //c]").len();
        assert!(b.merged_len() < sum, "{} vs {sum}", b.merged_len());
    }

    #[test]
    fn batch_of_one_matches_compile() {
        let q = parse_query("[//a/b]").unwrap();
        let b = compile_batch(std::slice::from_ref(&q));
        assert_eq!(b.merged(), &compile(&q));
        assert_eq!(b.roots(), &[b.merged().root()]);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty query batch")]
    fn empty_batch_panics() {
        compile_batch(&[]);
    }

    #[test]
    fn fingerprint_is_structural_and_stable() {
        // Equal programs fingerprint identically; distinct ones differ.
        assert_eq!(
            comp("[//a and //b]").fingerprint(),
            comp("[//a ∧ //b]").fingerprint()
        );
        assert_ne!(
            comp("[//a and //b]").fingerprint(),
            comp("[//a and //c]").fingerprint()
        );
        assert_ne!(comp("[//a]").fingerprint(), comp("[not //a]").fingerprint());
        // Stable across processes: pin one value so a hash-function change
        // (which would silently invalidate persisted cache keys) is loud.
        let fps = sub_fingerprints(comp("[.]").subs());
        assert_eq!(fps, vec![0xaf63_bd4c_8601_b7df]);
    }

    #[test]
    fn merge_programs_equals_compile_batch() {
        let srcs = [
            "[//a and //b]",
            "[//b or //c]",
            "[//a and //b]",
            "[//x[y/text() = \"v\"]]",
            "[not(//a)]",
        ];
        let queries: Vec<_> = srcs.iter().map(|s| parse_query(s).unwrap()).collect();
        let compiled: Vec<_> = queries.iter().map(compile).collect();
        // Identical merged program, roots and member fingerprints — the
        // two entry points are interchangeable.
        assert_eq!(merge_programs(&compiled), compile_batch(&queries));
        // Single program: the merge is the program itself.
        let solo = merge_programs(&compiled[..1]);
        assert_eq!(solo.merged(), &compiled[0]);
    }

    #[test]
    #[should_panic(expected = "empty query batch")]
    fn merge_programs_rejects_empty() {
        merge_programs(&[]);
    }

    #[test]
    fn program_fingerprint_distinguishes_batches_with_shared_tail() {
        // Two merged programs ending in the same member share their root
        // fingerprint but MUST NOT share their program fingerprint — a
        // whole-program cache keyed by the root fingerprint would serve
        // triplets of the wrong program.
        let ab = batch(&["[//a]", "[//b]"]).merged().clone();
        let cb = batch(&["[//c]", "[//b]"]).merged().clone();
        assert_eq!(ab.fingerprint(), cb.fingerprint(), "same root meaning");
        assert_ne!(
            ab.program_fingerprint(),
            cb.program_fingerprint(),
            "different programs"
        );
        // Identical programs agree on both.
        let ab2 = batch(&["[//a]", "[//b]"]).merged().clone();
        assert_eq!(ab.program_fingerprint(), ab2.program_fingerprint());
        // A program differing only in root sub-query also differs.
        let ba = batch(&["[//b]", "[//a]"]).merged().clone();
        assert_ne!(ab.program_fingerprint(), ba.program_fingerprint());
    }

    #[test]
    fn batch_member_fingerprints_match_solo_compiles() {
        let srcs = [
            "[//a and //b]",
            "[//b or //c]",
            "[//a and //b]",
            "[not(//a)]",
        ];
        let b = batch(&srcs);
        for (i, src) in srcs.iter().enumerate() {
            assert_eq!(
                b.member_fingerprint(i),
                comp(src).fingerprint(),
                "member {i} ({src})"
            );
        }
        // Identical members share a fingerprint.
        assert_eq!(b.member_fingerprint(0), b.member_fingerprint(2));
    }

    #[test]
    fn members_embed_into_merged_program() {
        let srcs = [
            "[//a and //b]",
            "[//x[y/text() = \"v\"]]",
            "[//b or not //a]",
        ];
        let b = batch(&srcs);
        for (i, src) in srcs.iter().enumerate() {
            let solo = comp(src);
            let map = solo
                .embedding_into(b.merged())
                .unwrap_or_else(|| panic!("member {src} must embed"));
            assert_eq!(map.len(), solo.len());
            // The member's root maps onto the batch's recorded root.
            assert_eq!(map[solo.root() as usize], b.root_of(i));
            // Mapped ops are structurally identical after translation.
            for (j, s) in solo.subs().iter().enumerate() {
                let host = &b.merged().subs()[map[j] as usize];
                assert_eq!(
                    std::mem::discriminant(s),
                    std::mem::discriminant(host),
                    "op {j} of {src}"
                );
            }
        }
    }

    #[test]
    fn embedding_fails_for_foreign_programs() {
        let a = comp("[//a and //b]");
        let other = comp("[//c]");
        assert_eq!(other.embedding_into(&a), None);
        // Self-embedding is the identity.
        let id = a.embedding_into(&a).unwrap();
        assert_eq!(id, (0..a.len() as SubId).collect::<Vec<_>>());
    }
}

//! **Experiment C**: the resident serving engine vs spawn-per-query
//! one-shot ParBoX on a mixed serving workload — by default 10 000+
//! operations (~20% repeated queries, interleaved Section-5 updates)
//! against a 64-site FT1 deployment.
//!
//! Usage:
//! `cargo run --release -p parbox-bench --bin expC_resident_vs_oneshot \
//!    [--scale BYTES] [--sites N] [--ops N] [--json PATH]`
//!
//! `--json PATH` additionally writes the measured row as a JSON object
//! (the CI workflow uploads it as the throughput artifact).

// The experiment is named expC in the issue tracker; keep the binary name.
#![allow(non_snake_case)]

use parbox_bench::experiments::{expc_resident_vs_oneshot, ExpCRow};
use parbox_bench::Scale;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn to_json(r: &ExpCRow) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"expC_resident_vs_oneshot\",\n",
            "  \"sites\": {},\n",
            "  \"ops\": {},\n",
            "  \"queries\": {},\n",
            "  \"updates_applied\": {},\n",
            "  \"resident_wall_s\": {:.6},\n",
            "  \"oneshot_wall_s\": {:.6},\n",
            "  \"speedup\": {:.3},\n",
            "  \"resident_bytes\": {},\n",
            "  \"oneshot_bytes\": {},\n",
            "  \"rounds\": {},\n",
            "  \"members_from_cache\": {},\n",
            "  \"site_cache_hits\": {},\n",
            "  \"cached_repeat_data_plane_bytes\": {}\n",
            "}}\n"
        ),
        r.sites,
        r.ops,
        r.queries,
        r.updates_applied,
        r.resident_wall_s,
        r.oneshot_wall_s,
        r.oneshot_wall_s / r.resident_wall_s.max(1e-12),
        r.resident_bytes,
        r.oneshot_bytes,
        r.rounds,
        r.members_from_cache,
        r.site_cache_hits,
        r.cached_repeat_data_plane_bytes,
    )
}

fn main() {
    let scale = Scale::from_args();
    let sites: usize = flag("--sites").and_then(|v| v.parse().ok()).unwrap_or(64);
    let ops: usize = flag("--ops").and_then(|v| v.parse().ok()).unwrap_or(10_000);

    let row = expc_resident_vs_oneshot(scale, sites, ops);
    println!(
        "Experiment C — resident engine vs spawn-per-query ParBoX \
         (corpus {} bytes, {} sites, {} ops)",
        scale.corpus_bytes, row.sites, row.ops
    );
    println!(
        "  stream: {} queries answered, {} updates applied, {} admission rounds",
        row.queries, row.updates_applied, row.rounds
    );
    println!(
        "  wall-clock: resident {:.3}s vs one-shot {:.3}s ({:.1}x)",
        row.resident_wall_s,
        row.oneshot_wall_s,
        row.oneshot_wall_s / row.resident_wall_s.max(1e-12)
    );
    println!(
        "  traffic: resident {} bytes vs one-shot {} bytes",
        row.resident_bytes, row.oneshot_bytes
    );
    println!(
        "  caches: {} members answered at the coordinator, {} site-cache hits",
        row.members_from_cache, row.site_cache_hits
    );
    println!(
        "  cached repeat query data-plane bytes: {} (must be 0)",
        row.cached_repeat_data_plane_bytes
    );
    assert_eq!(
        row.cached_repeat_data_plane_bytes, 0,
        "a fully cached repeat query must move zero data-plane bytes"
    );
    assert!(
        row.resident_wall_s < row.oneshot_wall_s,
        "the resident engine must beat spawn-per-query wall-clock"
    );

    if let Some(path) = flag("--json") {
        std::fs::write(&path, to_json(&row)).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  json row written to {path}");
    }
}

//! Criterion bench for Experiment F: one closed-loop serving pass over
//! a warm resident engine (the service-time kernel the saturation sweep
//! calibrates against), plus the sharded-arena intern workload.

// The experiment is named expF in the issue tracker; keep the bench name.
#![allow(non_snake_case)]

use criterion::{criterion_group, criterion_main, Criterion};
use parbox_bench::{ft1, Scale};
use parbox_bool::contention::intern_contention_probe;
use parbox_core::{Engine, EngineConfig};
use parbox_xmark::batch_workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 64 * 1024,
        seed: 2006,
    };
    let (forest, placement) = ft1(scale, 8);
    let queries = batch_workload(64, scale.seed ^ 0xF0F0);
    let mut engine = Engine::new(forest, placement, EngineConfig::default()).unwrap();
    for q in &queries {
        engine.query(q); // warm the caches
    }

    let mut group = c.benchmark_group("expF");
    group.sample_size(10);

    group.bench_function("resident_closed_loop_64q", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for q in &queries {
                answered += usize::from(engine.query(black_box(q)).answer);
            }
            black_box(answered)
        })
    });

    group.bench_function("intern_probe_4t", |b| {
        b.iter(|| black_box(intern_contention_probe(4, 10_000).modeled_scaling()))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! **Experiment H**: delta-repair incremental view maintenance vs
//! invalidate-and-recompute on an update-heavy serving stream — by
//! default 600 operations (≥50% pure data updates, queries from a
//! four-query standing pool) against a 4-site FT1 deployment of a
//! ~512 KiB XMark document.
//!
//! Usage:
//! `cargo run --release -p parbox-bench --bin expH_ivm \
//!    [--scale BYTES] [--sites N] [--ops N] [--json PATH]`
//!
//! `--json PATH` additionally writes the measured row as a JSON object
//! (the CI workflow uploads it as the IVM artifact).

// The experiment is named expH in the issue tracker; keep the binary name.
#![allow(non_snake_case)]

use parbox_bench::experiments::{exph_ivm, ExpHRow};
use parbox_bench::Scale;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn to_json(r: &ExpHRow) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"expH_ivm\",\n",
            "  \"sites\": {},\n",
            "  \"ops\": {},\n",
            "  \"queries\": {},\n",
            "  \"updates_applied\": {},\n",
            "  \"delta_wall_s\": {:.6},\n",
            "  \"legacy_wall_s\": {:.6},\n",
            "  \"speedup\": {:.3},\n",
            "  \"entries_repaired\": {},\n",
            "  \"entries_invalidated\": {},\n",
            "  \"nodes_recomputed\": {},\n",
            "  \"fragment_nodes\": {},\n",
            "  \"delta_bytes\": {},\n",
            "  \"delta_traffic_bytes\": {},\n",
            "  \"legacy_traffic_bytes\": {}\n",
            "}}\n"
        ),
        r.sites,
        r.ops,
        r.queries,
        r.updates_applied,
        r.delta_wall_s,
        r.legacy_wall_s,
        r.speedup,
        r.entries_repaired,
        r.entries_invalidated,
        r.nodes_recomputed,
        r.fragment_nodes,
        r.delta_bytes,
        r.delta_traffic_bytes,
        r.legacy_traffic_bytes,
    )
}

fn main() {
    let mut scale = Scale::from_args();
    if !std::env::args().any(|a| a == "--scale") {
        scale.corpus_bytes = 512 * 1024; // large fragments: O(|F|) recompute dominates
    }
    let sites: usize = flag("--sites").and_then(|v| v.parse().ok()).unwrap_or(4);
    let ops: usize = flag("--ops").and_then(|v| v.parse().ok()).unwrap_or(600);

    let row = exph_ivm(scale, sites, ops);
    println!(
        "Experiment H — delta-repair view maintenance vs invalidate-and-recompute \
         (corpus {} bytes, {} sites, {} ops)",
        scale.corpus_bytes, row.sites, row.ops
    );
    println!(
        "  stream: {} queries answered, {} updates applied (identically in both runs)",
        row.queries, row.updates_applied
    );
    println!(
        "  wall-clock: delta {:.3}s vs legacy {:.3}s ({:.1}x)",
        row.delta_wall_s, row.legacy_wall_s, row.speedup
    );
    println!(
        "  repair: {} entries repaired in place, {} invalidated, {} nodes re-interned \
         (forest holds {} nodes)",
        row.entries_repaired, row.entries_invalidated, row.nodes_recomputed, row.fragment_nodes
    );
    println!(
        "  traffic: delta {} bytes ({} of them triplet deltas) vs legacy {} bytes",
        row.delta_traffic_bytes, row.delta_bytes, row.legacy_traffic_bytes
    );
    assert!(
        row.speedup >= 5.0,
        "delta repair must be at least 5x faster than invalidate-and-recompute \
         on the update-heavy stream (measured {:.1}x)",
        row.speedup
    );
    assert!(
        row.entries_repaired > 0,
        "the stream must exercise in-place repair"
    );

    if let Some(path) = flag("--json") {
        std::fs::write(&path, to_json(&row)).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  json row written to {path}");
    }
}

//! The experiments of the paper's Section 6 (plus Fig. 4 and the
//! Section 4/5 ablations), each returning the series its figure plots.

use crate::builders::{ft1, ft2_chain, ft3, single_site_split, Scale};
use crate::table::Row;
use parbox_core::plan::{
    measure_resolution_depth, replay_modeled_s, PlanContext, Planner, TRAFFIC_ESTIMATE_FACTOR,
};
use parbox_core::{
    apply_update_to_forest, full_dist_parbox, lazy_parbox, naive_centralized, naive_distributed,
    parbox, plan_run, run_batch, CostEstimate, Engine, EngineConfig, EvalOutcome, MaterializedView,
    Update,
};
use parbox_frag::{Forest, ForestStats, Placement};
use parbox_net::{Cluster, NetworkModel};
use parbox_query::{compile, compile_batch, CompiledQuery};
use parbox_xmark::{
    batch_workload, drive_stream, drive_stream_with, generate, marker_query, mixed_workload,
    query_with_qlist, resolve_data_update, resolve_update, update_heavy_workload, MixedConfig,
    MixedOp, XmarkConfig,
};
use parbox_xml::FragmentId;
use std::time::{Duration, Instant};

fn compile_str(src: &str) -> CompiledQuery {
    parbox_query::compile(&parbox_query::parse_query(src).expect("valid query"))
}

/// Runs one algorithm by name over a cluster. `"Auto"` consults the
/// cost-based planner; `"HybridParBoX"` remains routed through the
/// deprecated expA-era shim (now itself planner-backed).
pub fn run_algorithm(name: &str, cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
    match name {
        "ParBoX" => parbox(cluster, q),
        "NaiveCentralized" => naive_centralized(cluster, q),
        "NaiveDistributed" => naive_distributed(cluster, q),
        "HybridParBoX" => {
            #[allow(deprecated)] // the expA-era shim, kept callable by name
            let out = parbox_core::hybrid_parbox(cluster, q);
            out
        }
        "FullDistParBoX" => full_dist_parbox(cluster, q),
        "LazyParBoX" => lazy_parbox(cluster, q),
        "Auto" => plan_run(cluster, q),
        other => panic!("unknown algorithm {other}"),
    }
}

/// **Experiment 1 / Fig. 7**: ParBoX vs NaiveCentralized on FT1, sweeping
/// 1→`max_machines` machines with a constant-size corpus, `|QList| = 8`.
pub fn experiment1_fig7(scale: Scale, max_machines: usize) -> Vec<Row> {
    let (_, q) = query_with_qlist(8, scale.seed);
    let mut rows = Vec::new();
    for n in 1..=max_machines {
        let (forest, placement) = ft1(scale, n);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for algo in ["ParBoX", "NaiveCentralized"] {
            let out = run_algorithm(algo, &cluster, &q);
            rows.push(Row::from_outcome(n as f64, algo, &out));
        }
    }
    rows
}

/// **Experiment 1 / Fig. 8**: ParBoX scalability in query size on FT1 —
/// `|QList| ∈ {2, 8, 15, 23}`, 1→`max_machines` machines.
pub fn experiment1_fig8(scale: Scale, max_machines: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for n in 1..=max_machines {
        let (forest, placement) = ft1(scale, n);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for size in [2usize, 8, 15, 23] {
            let (_, q) = query_with_qlist(size, scale.seed ^ size as u64);
            let out = parbox(&cluster, &q);
            rows.push(Row::from_outcome(n as f64, format!("|QList|={size}"), &out));
        }
    }
    rows
}

/// Which fragment the Experiment 2 query targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// `qF0`: satisfied by the root fragment (Fig. 9).
    Root,
    /// `qFn`: satisfied by the deepest fragment (Fig. 10).
    Deepest,
    /// `qF⌈n/2⌉`: satisfied by the middle fragment (Fig. 11).
    Middle,
}

/// **Experiment 2 / Figs. 9–11**: ParBoX vs FullDistParBoX vs LazyParBoX
/// on the FT2 chain, with the query satisfied at a chosen fragment.
pub fn experiment2(scale: Scale, max_machines: usize, target: Target) -> Vec<Row> {
    let mut rows = Vec::new();
    for n in 1..=max_machines {
        let (forest, placement) = ft2_chain(scale, n);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let idx = match target {
            Target::Root => 0,
            Target::Deepest => n - 1,
            Target::Middle => n / 2,
        };
        let q = compile_str(&marker_query(&FragmentId(idx as u32).to_string()));
        for algo in ["ParBoX", "FullDistParBoX", "LazyParBoX"] {
            let out = run_algorithm(algo, &cluster, &q);
            assert!(out.answer, "marker query must hold at iteration {n}");
            rows.push(Row::from_outcome(n as f64, algo, &out));
        }
    }
    rows
}

/// **Experiment 3 / Fig. 12**: scalability in data size on FT3 —
/// `growth_steps` iterations sweep the corpus from its smallest to its
/// largest configuration for `|QList| ∈ {2, 8, 15, 23}`.
pub fn experiment3_fig12(scale: Scale, growth_steps: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for step in 0..growth_steps {
        let growth = step as f64 / (growth_steps.max(2) - 1) as f64;
        let (forest, placement) = ft3(scale, growth);
        let total_mb = forest.total_bytes() as f64;
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for size in [2usize, 8, 15, 23] {
            let (_, q) = query_with_qlist(size, scale.seed ^ size as u64);
            let out = parbox(&cluster, &q);
            rows.push(Row::from_outcome(total_mb, format!("|QList|={size}"), &out));
        }
    }
    rows
}

/// **Experiment 4 / Fig. 13**: one site, constant corpus, split into
/// 1→`max_fragments` equal fragments — ParBoX runtime must stay flat.
pub fn experiment4_fig13(scale: Scale, max_fragments: usize) -> Vec<Row> {
    let (_, q) = query_with_qlist(8, scale.seed);
    let mut rows = Vec::new();
    for n in 1..=max_fragments {
        let (forest, placement) = single_site_split(scale, n);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let out = parbox(&cluster, &q);
        rows.push(Row::from_outcome(n as f64, "ParBoX", &out));
    }
    rows
}

/// One measured row of Experiment B: the batch engine against the same
/// queries run sequentially through per-query ParBoX.
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Queries in the batch.
    pub batch_size: usize,
    /// `|QList|` of the merged program.
    pub merged_qlist: usize,
    /// Sum of the members' individual `|QList|`s.
    pub summed_qlist: usize,
    /// Maximum visits to any site during the batched round.
    pub batch_max_visits: usize,
    /// Total traffic of the batched round, bytes.
    pub batch_bytes: usize,
    /// Total traffic of the sequential runs, bytes.
    pub sequential_bytes: usize,
    /// Simulated network cost of the batched round, seconds.
    pub batch_network_s: f64,
    /// Simulated network cost of the sequential runs, seconds.
    pub sequential_network_s: f64,
    /// Modeled elapsed time of the batched round, seconds.
    pub batch_model_s: f64,
    /// Summed modeled elapsed time of the sequential runs, seconds.
    pub sequential_model_s: f64,
}

/// **Experiment B**: batched multi-query evaluation vs sequential ParBoX
/// on FT1, for each batch size in `batch_sizes`, over the default XMark
/// serving workload ([`batch_workload`]). Answers are cross-checked
/// member by member.
pub fn expb_batch_vs_sequential(
    scale: Scale,
    machines: usize,
    batch_sizes: &[usize],
) -> Vec<BatchRow> {
    let (forest, placement) = ft1(scale, machines);
    let model = NetworkModel::lan();
    let cluster = Cluster::new(&forest, &placement, model);
    batch_sizes
        .iter()
        .map(|&n| {
            let queries = batch_workload(n, scale.seed);
            let batch = compile_batch(&queries);
            let batched = run_batch(&cluster, &batch);

            let mut sequential_bytes = 0usize;
            let mut sequential_network_s = 0.0f64;
            let mut sequential_model_s = 0.0f64;
            let mut summed_qlist = 0usize;
            for (i, q) in queries.iter().enumerate() {
                let compiled = compile(q);
                summed_qlist += compiled.len();
                let out = parbox(&cluster, &compiled);
                assert_eq!(
                    out.answer, batched.answers[i],
                    "batch/sequential disagreement on member {i} of batch {n}"
                );
                sequential_bytes += out.report.total_bytes();
                sequential_network_s += out.report.network_cost_s(&model);
                sequential_model_s += out.report.elapsed_model_s;
            }

            BatchRow {
                batch_size: n,
                merged_qlist: batch.merged_len(),
                summed_qlist,
                batch_max_visits: batched.report.max_visits(),
                batch_bytes: batched.report.total_bytes(),
                sequential_bytes,
                batch_network_s: batched.report.network_cost_s(&model),
                sequential_network_s,
                batch_model_s: batched.report.elapsed_model_s,
                sequential_model_s,
            }
        })
        .collect()
}

/// Result of Experiment C: one mixed serving workload driven through the
/// resident engine and through spawn-per-query one-shot ParBoX.
#[derive(Debug, Clone)]
pub struct ExpCRow {
    /// Participating sites.
    pub sites: usize,
    /// Operations in the stream (queries + updates).
    pub ops: usize,
    /// Queries answered (both runs, identically).
    pub queries: usize,
    /// Updates that resolved and were applied.
    pub updates_applied: usize,
    /// Wall-clock of the resident-engine run, seconds.
    pub resident_wall_s: f64,
    /// Wall-clock of the spawn-per-query run, seconds.
    pub oneshot_wall_s: f64,
    /// Total simulated traffic of the resident run, bytes.
    pub resident_bytes: usize,
    /// Total simulated traffic of the one-shot run, bytes.
    pub oneshot_bytes: usize,
    /// Admission rounds the resident engine flushed.
    pub rounds: u64,
    /// Members answered purely from the coordinator triplet cache.
    pub members_from_cache: u64,
    /// Per-fragment evaluations the site caches absorbed.
    pub site_cache_hits: u64,
    /// Data-plane bytes (`Triplet`/`Envelope`/`Data`) recorded while
    /// serving a fully cached repeat query — the acceptance criterion
    /// demands exactly 0.
    pub cached_repeat_data_plane_bytes: usize,
}

/// **Experiment C**: the resident serving engine vs spawn-per-query
/// one-shot ParBoX on a mixed query/update stream (~20% repeated queries,
/// interleaved Section-5 updates) over an FT1 deployment of `machines`
/// sites. Both runs see the same stream and must produce identical
/// answers; the one-shot baseline keeps its `Cluster` across queries and
/// rebuilds it only after updates — its per-query cost is the scoped
/// thread spawn per site plus the full re-evaluation the resident
/// engine's caches avoid.
pub fn expc_resident_vs_oneshot(scale: Scale, machines: usize, ops: usize) -> ExpCRow {
    let stream = mixed_workload(MixedConfig::serving(ops, scale.seed));

    // --- Resident engine run -------------------------------------------
    let (forest, placement) = ft1(scale, machines);
    let config = EngineConfig {
        max_batch: 32,
        batch_window: Duration::from_secs(3600), // flush on size or update
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(forest, placement, config).expect("valid deployment");
    let start = Instant::now();
    let resident = drive_stream(&mut engine, &stream);
    let resident_wall_s = start.elapsed().as_secs_f64();
    let stats = engine.stats();

    // The acceptance criterion: a repeated query served entirely from
    // cache moves zero data-plane bytes.
    let repeat = stream
        .iter()
        .find_map(|op| match op {
            MixedOp::Query(q) => Some(q.clone()),
            _ => None,
        })
        .expect("stream contains queries");
    engine.query(&repeat); // warm (or already warm)
    let cached = engine.query(&repeat);
    assert!(cached.from_cache, "repeat query must hit the cache");
    let cached_repeat_data_plane_bytes = cached.report.data_plane_bytes();

    // --- One-shot spawn-per-query run ----------------------------------
    let (mut forest2, mut placement2) = ft1(scale, machines);
    let model = NetworkModel::lan();
    let start = Instant::now();
    let mut oneshot_answers: Vec<bool> = Vec::new();
    let mut oneshot_bytes = 0usize;
    // Segment the stream at updates so the borrow-based cluster can be
    // kept across the queries in between (the strongest one-shot
    // baseline: only thread spawns and re-evaluations are per query).
    let mut i = 0usize;
    while i < stream.len() {
        let segment_end = stream[i..]
            .iter()
            .position(|op| matches!(op, MixedOp::Update { .. }))
            .map(|p| i + p)
            .unwrap_or(stream.len());
        {
            let cluster = Cluster::new(&forest2, &placement2, model);
            for op in &stream[i..segment_end] {
                let MixedOp::Query(q) = op else {
                    unreachable!()
                };
                let out = parbox(&cluster, &compile(q));
                oneshot_answers.push(out.answer);
                oneshot_bytes += out.report.total_bytes();
            }
        }
        if let Some(MixedOp::Update { seed }) = stream.get(segment_end) {
            if let Some(update) = resolve_update(&forest2, *seed) {
                apply_update_to_forest(&mut forest2, &mut placement2, update)
                    .expect("resolved update applies");
            }
        }
        i = segment_end + 1;
    }
    let oneshot_wall_s = start.elapsed().as_secs_f64();

    assert_eq!(
        resident.answers, oneshot_answers,
        "resident and one-shot runs must agree on every answer"
    );

    ExpCRow {
        sites: machines,
        ops,
        queries: resident.answers.len(),
        updates_applied: resident.updates_applied,
        resident_wall_s,
        oneshot_wall_s,
        resident_bytes: resident.bytes,
        oneshot_bytes,
        rounds: stats.rounds,
        members_from_cache: stats.members_from_cache,
        site_cache_hits: stats.site_cache_hits,
        cached_repeat_data_plane_bytes,
    }
}

/// Result of Experiment D: the hash-consed formula arena against the
/// seed tree representation on the formula-path kernel.
#[derive(Debug, Clone)]
pub struct ExpDRow {
    /// Fragments in the wide-fan-out star (root fan-out = fragments − 1).
    pub fragments: usize,
    /// Sites the deployment is spread over.
    pub sites: usize,
    /// `|QList|` of the query.
    pub qlist: usize,
    /// `evalST` solve passes timed after the single partial evaluation
    /// (the serving engine re-solves cached triplets on repeats).
    pub solve_repeats: usize,
    /// Wall-clock of the arena pipeline (bottomUp + solves), seconds.
    pub arena_s: f64,
    /// Wall-clock of the seed pipeline, seconds.
    pub seed_s: f64,
    /// `seed_s / arena_s`.
    pub speedup: f64,
    /// Σ per-fragment triplet bytes in the seed tree wire format.
    pub tree_triplet_bytes: usize,
    /// Σ per-fragment triplet bytes in the DAG wire format.
    pub dag_triplet_bytes: usize,
    /// One all-fragment envelope in the tree wire format, bytes.
    pub envelope_tree_bytes: usize,
    /// The same envelope in the DAG wire format (one shared node table).
    pub envelope_dag_bytes: usize,
}

/// **Experiment D**: the formula-path kernel — `bottomUp` partial
/// evaluation over a wide-fan-out spine fragment plus `solve_repeats`
/// coordinator solves — through the hash-consed arena versus the
/// preserved seed tree representation
/// ([`parbox_core::bottom_up_reference`]). Answers are asserted
/// byte-identical (full resolved triplet maps), and the DAG wire
/// encoding is asserted never larger than the tree encoding on every
/// fragment triplet.
///
/// The star shape is the adversarial case for the seed representation:
/// the root fragment's child-accumulation loop re-flattens a growing
/// n-ary `Or` once per virtual child (`O(fan-out²)` clones), and every
/// solve re-walks the `O(fan-out)`-sized entry trees; the arena buffers
/// operands, interns once, and solves over the memoized DAG.
pub fn expd_formula_arena(
    scale: Scale,
    sites: usize,
    fragments: usize,
    solve_repeats: usize,
) -> ExpDRow {
    use parbox_bool::reference::{ref_solve, RefTriplet};
    use parbox_bool::{
        site_envelope_dag_wire_size, site_envelope_wire_size, triplet_dag_wire_size,
        triplet_wire_size, EquationSystem, Triplet,
    };
    use parbox_core::{bottom_up, bottom_up_reference};
    use std::collections::HashMap;

    // One small XMark document per fragment: content subtrees take the
    // bitset fast path in both pipelines, so the measured difference is
    // the formula kernel at the star's hub.
    let (forest, _) = ft1(
        Scale {
            corpus_bytes: scale.corpus_bytes.max(fragments * 1024),
            seed: scale.seed,
        },
        fragments,
    );
    let placement = Placement::round_robin(&forest, sites as u32);
    placement.validate(&forest).expect("valid placement");
    let (_, q) = query_with_qlist(8, scale.seed);
    let order = forest.postorder();
    let root = forest.root_fragment();

    // --- Arena pipeline ------------------------------------------------
    let start = Instant::now();
    let mut sys = EquationSystem::new();
    for f in forest.fragment_ids() {
        sys.insert(f, bottom_up(&forest.fragment(f).tree, &q).triplet);
    }
    let mut arena_solved = sys.solve(&order).expect("solvable star");
    for _ in 1..solve_repeats.max(1) {
        arena_solved = sys.solve(&order).expect("solvable star");
    }
    let arena_s = start.elapsed().as_secs_f64();

    // --- Seed pipeline -------------------------------------------------
    let start = Instant::now();
    let mut seed_triplets: HashMap<FragmentId, RefTriplet> = HashMap::new();
    for f in forest.fragment_ids() {
        seed_triplets.insert(f, bottom_up_reference(&forest.fragment(f).tree, &q).triplet);
    }
    let mut seed_solved = ref_solve(&seed_triplets, &order).expect("solvable star");
    for _ in 1..solve_repeats.max(1) {
        seed_solved = ref_solve(&seed_triplets, &order).expect("solvable star");
    }
    let seed_s = start.elapsed().as_secs_f64();

    // Byte-identical answers: the full resolved triplet of every
    // fragment, not just the root bit.
    for f in forest.fragment_ids() {
        assert_eq!(
            arena_solved[&f], seed_solved[&f],
            "arena and seed pipelines diverged on fragment {f}"
        );
    }
    assert_eq!(
        arena_solved[&root].v[q.root() as usize],
        seed_solved[&root].v[q.root() as usize]
    );

    // Wire accounting over the arena triplets: the DAG format must never
    // exceed the tree format, per fragment and for the packed envelope.
    let mut tree_triplet_bytes = 0usize;
    let mut dag_triplet_bytes = 0usize;
    let mut entries: Vec<(FragmentId, &Triplet)> = Vec::new();
    for f in forest.fragment_ids() {
        let t = sys.get(f).expect("inserted above");
        let tree_b = triplet_wire_size(t);
        let dag_b = triplet_dag_wire_size(t);
        assert!(
            dag_b <= tree_b,
            "DAG encoding larger than tree on fragment {f}: {dag_b} > {tree_b}"
        );
        tree_triplet_bytes += tree_b;
        dag_triplet_bytes += dag_b;
        entries.push((f, t));
    }
    let envelope_tree_bytes = site_envelope_wire_size(&entries);
    let envelope_dag_bytes = site_envelope_dag_wire_size(&entries);
    assert!(envelope_dag_bytes <= envelope_tree_bytes);

    ExpDRow {
        fragments,
        sites,
        qlist: q.len(),
        solve_repeats: solve_repeats.max(1),
        arena_s,
        seed_s,
        speedup: seed_s / arena_s.max(1e-12),
        tree_triplet_bytes,
        dag_triplet_bytes,
        envelope_tree_bytes,
        envelope_dag_bytes,
    }
}

/// Per-workload wire-byte comparison of Experiment D.
#[derive(Debug, Clone)]
pub struct ExpDWireRow {
    /// Workload label (fragment-tree shape × query).
    pub workload: String,
    /// Fragments in the forest.
    pub fragments: usize,
    /// Σ per-fragment triplet bytes, tree format.
    pub tree_bytes: usize,
    /// Σ per-fragment triplet bytes, DAG format.
    pub dag_bytes: usize,
}

/// **Experiment D, wire sweep**: encodes every fragment triplet of the
/// expA–expC fragment-tree shapes (FT1 star, FT2 chain, FT3 skew) for
/// `|QList| ∈ {8, 23}` in both wire formats, asserting the DAG encoding
/// is never larger than the tree encoding on any triplet.
pub fn expd_dag_bytes_on_workloads(scale: Scale) -> Vec<ExpDWireRow> {
    use parbox_bool::{triplet_dag_wire_size, triplet_wire_size};
    use parbox_core::bottom_up;

    let shapes: Vec<(String, Forest)> = vec![
        ("FT1-star-6".into(), ft1(scale, 6).0),
        ("FT2-chain-6".into(), ft2_chain(scale, 6).0),
        ("FT3-skew".into(), ft3(scale, 0.5).0),
    ];
    let mut rows = Vec::new();
    for (name, forest) in shapes {
        for qlist in [8usize, 23] {
            let (_, q) = query_with_qlist(qlist, scale.seed ^ qlist as u64);
            let mut tree_bytes = 0usize;
            let mut dag_bytes = 0usize;
            for f in forest.fragment_ids() {
                let t = bottom_up(&forest.fragment(f).tree, &q).triplet;
                let tree_b = triplet_wire_size(&t);
                let dag_b = triplet_dag_wire_size(&t);
                assert!(
                    dag_b <= tree_b,
                    "{name} |QList|={qlist}: DAG {dag_b} > tree {tree_b} on {f}"
                );
                tree_bytes += tree_b;
                dag_bytes += dag_b;
            }
            rows.push(ExpDWireRow {
                workload: format!("{name} |QList|={qlist}"),
                fragments: forest.card(),
                tree_bytes,
                dag_bytes,
            });
        }
    }
    rows
}

/// A measured row of the Fig. 4 complexity table.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Maximum visits to any single site.
    pub max_visits: usize,
    /// Total work units.
    pub total_work: u64,
    /// Modeled parallel runtime (seconds).
    pub parallel_s: f64,
    /// Total traffic in bytes.
    pub bytes: usize,
    /// Answer (all algorithms must agree).
    pub answer: bool,
}

/// **Fig. 4**: measures visits, total computation, parallel runtime and
/// communication for all six algorithms on one FT1 deployment.
pub fn fig4_table(scale: Scale, machines: usize) -> Vec<Fig4Row> {
    let (forest, placement) = ft1(scale, machines);
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    let (_, q) = query_with_qlist(8, scale.seed);
    [
        "NaiveCentralized",
        "NaiveDistributed",
        "ParBoX",
        "HybridParBoX",
        "FullDistParBoX",
        "LazyParBoX",
    ]
    .into_iter()
    .map(|algo| {
        let out = run_algorithm(algo, &cluster, &q);
        Fig4Row {
            algorithm: algo,
            max_visits: out.report.max_visits(),
            total_work: out.report.total_work(),
            parallel_s: out.report.elapsed_model_s,
            bytes: out.report.total_bytes(),
            answer: out.answer,
        }
    })
    .collect()
}

/// One row of the Section 5 incremental-maintenance ablation.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Incremental maintenance cost (modeled seconds).
    pub incremental_s: f64,
    /// Full ParBoX re-evaluation cost (modeled seconds).
    pub reeval_s: f64,
    /// Maintenance traffic (bytes).
    pub incremental_bytes: usize,
    /// Re-evaluation traffic (bytes).
    pub reeval_bytes: usize,
    /// Sites visited by maintenance.
    pub sites_visited: usize,
}

/// **Section 5**: incremental view maintenance vs full re-evaluation,
/// for relevant and irrelevant updates and for a fragmentation change.
pub fn sec5_incremental(scale: Scale, machines: usize) -> Vec<IncrementalRow> {
    let mut rows = Vec::new();
    for (scenario, update_of) in [
        (
            "irrelevant insert",
            Box::new(|forest: &Forest| {
                let frag = last_fragment(forest);
                let root = forest.fragment(frag).tree.root();
                Update::InsNode {
                    frag,
                    parent: root,
                    label: "noise".into(),
                    text: None,
                }
            }) as Box<dyn Fn(&Forest) -> Update>,
        ),
        (
            "answer-flipping insert",
            Box::new(|forest: &Forest| {
                let frag = last_fragment(forest);
                let root = forest.fragment(frag).tree.root();
                Update::InsNode {
                    frag,
                    parent: root,
                    label: "flip-target".into(),
                    text: Some("now".into()),
                }
            }),
        ),
        (
            "split fragment",
            Box::new(|forest: &Forest| {
                let frag = last_fragment(forest);
                let tree = &forest.fragment(frag).tree;
                let cut = tree
                    .children(tree.root())
                    .find(|&n| tree.subtree_size(n) >= 2 && !tree.node(n).kind.is_virtual())
                    .expect("splittable child");
                Update::SplitFragments {
                    frag,
                    node: cut,
                    to_site: None,
                }
            }),
        ),
    ] {
        let (mut forest, mut placement) = ft1(scale, machines);
        let q = compile_str("[//flip-target = \"now\" or //qmarker[key/text() = \"F0\"]]");
        let (mut view, _) =
            MaterializedView::materialize(&forest, &placement, NetworkModel::lan(), &q);
        let update = update_of(&forest);
        let rep = view
            .apply(&mut forest, &mut placement, update)
            .expect("valid update");
        // Full re-evaluation for comparison.
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let full = parbox(&cluster, &q);
        assert_eq!(view.answer(), full.answer, "view drifted in {scenario}");
        rows.push(IncrementalRow {
            scenario,
            incremental_s: rep.report.elapsed_model_s,
            reeval_s: full.report.elapsed_model_s,
            incremental_bytes: rep.report.total_bytes(),
            reeval_bytes: full.report.total_bytes(),
            sites_visited: rep.report.sites().filter(|(_, r)| r.visits > 0).count(),
        });
    }
    rows
}

fn last_fragment(forest: &Forest) -> FragmentId {
    forest.fragment_ids().last().expect("non-empty forest")
}

/// One cell of Experiment E: a (fragmentation × network × query-shape)
/// point, every fixed strategy measured once under the deterministic
/// replay metric ([`replay_modeled_s`]), and the adaptive planner's
/// choice evaluated on the same runs.
#[derive(Debug, Clone)]
pub struct ExpERow {
    /// Fragmentation shape (`star` / `chain` / `even`).
    pub fragmentation: String,
    /// Network model name (`lan` / `wan` / `infinite`).
    pub network: String,
    /// Query shape (`tiny-selective` / `mid` / `scan-heavy`).
    pub query: String,
    /// `|QList|` of the query.
    pub qlist: usize,
    /// Strategy the planner chose for this cell.
    pub chosen: String,
    /// The chosen strategy's estimate.
    pub estimate: CostEstimate,
    /// Deterministic modeled seconds per fixed strategy.
    pub per_strategy_model_s: Vec<(String, f64)>,
    /// The adaptive planner's modeled time (= the chosen strategy's).
    pub adaptive_model_s: f64,
    /// Best fixed strategy and its modeled time.
    pub best: String,
    /// Modeled seconds of the best fixed strategy.
    pub best_model_s: f64,
    /// Worst fixed strategy and its modeled time.
    pub worst: String,
    /// Modeled seconds of the worst fixed strategy.
    pub worst_model_s: f64,
    /// Measured total visits of the chosen strategy's run.
    pub measured_visits: usize,
    /// Measured total messages of the chosen strategy's run.
    pub measured_messages: usize,
    /// Measured total traffic bytes of the chosen strategy's run.
    pub measured_bytes: usize,
}

/// **Experiment E**: the cost-based planner across query shapes ×
/// fragmentations (FT1 star / FT2 chain / even split) × network models
/// (lan / wan / infinite).
///
/// Per cell, all six fixed strategies run once and are scored with the
/// deterministic replay metric (recorded bytes at the model's rates,
/// estimated latency rounds, work units at the calibrated rate — no
/// wall clock, so the sweep is reproducible). The adaptive planner
/// plans with the cell's observed resolution-depth statistic (what a
/// serving deployment accumulates; [`measure_resolution_depth`]) and
/// its time is the chosen strategy's measured run. Along the way every
/// deterministic strategy's estimate is asserted against its measured
/// report: visit and message counts exactly, traffic within
/// [`TRAFFIC_ESTIMATE_FACTOR`].
pub fn expe_planner(scale: Scale, machines: usize) -> Vec<ExpERow> {
    let even = {
        let tree = generate(XmarkConfig {
            target_bytes: scale.corpus_bytes,
            seed: scale.seed,
        });
        let mut forest = Forest::from_tree(tree);
        parbox_frag::strategies::fragment_evenly(&mut forest, machines)
            .expect("corpus large enough");
        plant_markers(&mut forest);
        let placement = Placement::round_robin(&forest, (machines as u32 / 2).max(2));
        (forest, placement)
    };
    let shapes: Vec<(&str, (Forest, Placement))> = vec![
        ("star", ft1(scale, machines)),
        ("chain", ft2_chain(scale, machines)),
        ("even", even),
    ];
    let networks = [
        ("lan", NetworkModel::lan()),
        ("wan", NetworkModel::wan()),
        ("infinite", NetworkModel::infinite()),
    ];

    let mut rows = Vec::new();
    for (shape, (forest, placement)) in &shapes {
        let stats = ForestStats::compute(forest, placement);
        let queries: Vec<(&str, CompiledQuery)> = vec![
            ("tiny-selective", compile_str(&marker_query("F0"))),
            ("mid", query_with_qlist(8, scale.seed).1),
            ("scan-heavy", query_with_qlist(23, scale.seed ^ 23).1),
        ];
        for (net_name, model) in networks {
            let cluster = Cluster::new(forest, placement, model);
            for (qname, q) in &queries {
                // The workload statistic a serving deployment would have
                // accumulated: at what depth this query resolves.
                let depth = measure_resolution_depth(&cluster, q);
                let mut cx = PlanContext::new(&cluster, q, &stats);
                cx.resolve_depth_hint = Some(depth);
                let planner = Planner::standard();
                let choice = planner.choose(&cx);

                let mut per_strategy: Vec<(String, f64)> = Vec::new();
                let mut chosen_measured = (0usize, 0usize, 0usize);
                let mut answers: Vec<bool> = Vec::new();
                for exec in planner.executors() {
                    let est = exec.estimate(&cx);
                    let out = exec.execute(&cluster, q);
                    answers.push(out.answer);
                    let metric = replay_modeled_s(&out.report, &model, est.rounds);
                    if matches!(
                        exec.name(),
                        "ParBoX" | "NaiveCentralized" | "NaiveDistributed" | "FullDistParBoX"
                    ) {
                        assert_eq!(
                            est.visits,
                            out.report.total_visits(),
                            "{shape}/{net_name}/{qname}: {} visit estimate",
                            exec.name()
                        );
                        assert_eq!(
                            est.messages,
                            out.report.total_messages(),
                            "{shape}/{net_name}/{qname}: {} message estimate",
                            exec.name()
                        );
                        let measured = out.report.total_bytes();
                        assert!(
                            est.traffic_bytes <= measured.max(1) * TRAFFIC_ESTIMATE_FACTOR
                                && measured <= est.traffic_bytes.max(1) * TRAFFIC_ESTIMATE_FACTOR,
                            "{shape}/{net_name}/{qname}: {} traffic estimate {} vs measured {measured}",
                            exec.name(),
                            est.traffic_bytes
                        );
                    }
                    if exec.name() == choice.summary.strategy {
                        chosen_measured = (
                            out.report.total_visits(),
                            out.report.total_messages(),
                            out.report.total_bytes(),
                        );
                    }
                    per_strategy.push((exec.name().to_string(), metric));
                }
                assert!(
                    answers.windows(2).all(|w| w[0] == w[1]),
                    "{shape}/{net_name}/{qname}: strategies disagree"
                );

                let adaptive = per_strategy
                    .iter()
                    .find(|(n, _)| *n == choice.summary.strategy)
                    .expect("chosen strategy was measured")
                    .1;
                let (best, best_s) = per_strategy
                    .iter()
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("strategies measured")
                    .clone();
                let (worst, worst_s) = per_strategy
                    .iter()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("strategies measured")
                    .clone();
                rows.push(ExpERow {
                    fragmentation: shape.to_string(),
                    network: net_name.to_string(),
                    query: qname.to_string(),
                    qlist: q.len(),
                    chosen: choice.summary.strategy.clone(),
                    estimate: choice.summary.estimate,
                    per_strategy_model_s: per_strategy,
                    adaptive_model_s: adaptive,
                    best,
                    best_model_s: best_s,
                    worst,
                    worst_model_s: worst_s,
                    measured_visits: chosen_measured.0,
                    measured_messages: chosen_measured.1,
                    measured_bytes: chosen_measured.2,
                });
            }
        }
    }
    rows
}

/// Asserts the expE acceptance criteria over a sweep: per cell the
/// adaptive planner is within 10% (plus `slack_s` seconds of
/// model-granularity allowance) of the best fixed strategy, and on at
/// least one cell it beats the worst fixed strategy by ≥ 2×.
pub fn expe_check(rows: &[ExpERow], slack_s: f64) {
    assert!(!rows.is_empty());
    for r in rows {
        assert!(
            r.adaptive_model_s <= 1.1 * r.best_model_s + slack_s,
            "{}/{}/{}: adaptive ({}) {:.6}s worse than 1.1x best ({}) {:.6}s",
            r.fragmentation,
            r.network,
            r.query,
            r.chosen,
            r.adaptive_model_s,
            r.best,
            r.best_model_s
        );
    }
    assert!(
        rows.iter()
            .any(|r| r.worst_model_s >= 2.0 * r.adaptive_model_s.max(1e-12)),
        "no cell shows a 2x adaptive-vs-worst separation"
    );
}

/// **Section 4 ablation**: the Hybrid tipping point — sweep `card(F)`
/// across `|T| / |q|` with single-node-ish fragments and report which
/// branch Hybrid picks and both branches' traffic.
pub fn sec4_hybrid_ablation(scale: Scale, steps: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    let (_, q) = query_with_qlist(15, scale.seed);
    for &n in steps {
        let (forest, _) = ft1(scale, 1);
        // Re-fragment into n pieces, all on distinct sites.
        let mut forest = forest;
        if parbox_frag::strategies::fragment_evenly(&mut forest, n).is_err() {
            continue; // corpus exhausted; smaller scales stop earlier
        }
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let hybrid = run_algorithm("HybridParBoX", &cluster, &q);
        rows.push(Row::from_outcome(n as f64, hybrid.algorithm, &hybrid));
        let pb = parbox(&cluster, &q);
        rows.push(Row::from_outcome(n as f64, "ParBoX(forced)", &pb));
        let nc = naive_centralized(&cluster, &q);
        rows.push(Row::from_outcome(n as f64, "NaiveCentralized(forced)", &nc));
    }
    rows
}

/// One offered-rate point of the Experiment F open-loop sweep.
#[derive(Debug, Clone, Copy)]
pub struct RatePoint {
    /// Open-loop arrival rate the run was driven at, queries/sec.
    pub offered_qps: f64,
    /// Throughput actually achieved (queries / wall time), queries/sec.
    pub achieved_qps: f64,
    /// Median latency from *scheduled arrival* to completion, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, ms.
    pub p999_ms: f64,
}

/// Result of Experiment F: sustained-load saturation of the resident
/// serving engine plus the sharded-arena contention probe.
#[derive(Debug, Clone)]
pub struct ExpFRow {
    /// Participating sites (one persistent worker each).
    pub sites: usize,
    /// Worker threads of the intern contention probe.
    pub threads: usize,
    /// Queries issued per open-loop run.
    pub queries: usize,
    /// Closed-loop calibrated service capacity, queries/sec.
    pub capacity_qps: f64,
    /// Achieved throughput at the most oversubscribed offered rate —
    /// the engine's saturation throughput.
    pub saturated_qps: f64,
    /// Median latency at saturation, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency at saturation, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile latency at saturation, ms.
    pub p999_ms: f64,
    /// Every offered-rate point of the sweep, in sweep order.
    pub rates: Vec<RatePoint>,
    /// Coordinator-cache share of answered queries over the whole run.
    pub cache_hit_rate: f64,
    /// The sharded-vs-single-lock intern measurement at `threads`.
    pub probe: parbox_bool::contention::ContentionProbe,
}

/// Seeded xorshift64* for interarrival draws (no `rand` in the hot loop).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn percentile(sorted_s: &[f64], q: f64) -> f64 {
    if sorted_s.is_empty() {
        return 0.0;
    }
    let ix = ((sorted_s.len() - 1) as f64 * q).round() as usize;
    sorted_s[ix] * 1e3
}

/// Drives `queries` through a resident engine open-loop at `offered_qps`:
/// arrival times are drawn from an exponential interarrival distribution
/// (a Poisson process), the driver waits for each scheduled arrival, and
/// every latency is measured from the *scheduled* arrival — so queueing
/// delay behind a saturated server counts against the tail, exactly as a
/// client on the wire would see it.
fn open_loop_run(
    engine: &mut Engine,
    queries: &[parbox_query::Query],
    offered_qps: f64,
    seed: u64,
) -> RatePoint {
    let mut rng = seed | 1;
    let mut latencies_s: Vec<f64> = Vec::with_capacity(queries.len());
    let start = Instant::now();
    let mut scheduled_s = 0.0f64;
    for q in queries {
        // Exponential interarrival: −ln(1−u)/λ with u ∈ [0,1).
        let u = (xorshift(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
        scheduled_s += -(1.0 - u).ln() / offered_qps;
        while start.elapsed().as_secs_f64() < scheduled_s {
            std::hint::spin_loop();
        }
        engine.query(q);
        latencies_s.push(start.elapsed().as_secs_f64() - scheduled_s);
    }
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    latencies_s.sort_by(|a, b| a.total_cmp(b));
    RatePoint {
        offered_qps,
        achieved_qps: queries.len() as f64 / wall_s,
        p50_ms: percentile(&latencies_s, 0.50),
        p99_ms: percentile(&latencies_s, 0.99),
        p999_ms: percentile(&latencies_s, 0.999),
    }
}

/// **Experiment F**: sustained-load saturation of the resident
/// [`Engine`]. Three measurements in one row:
///
/// 1. **Contention probe** — [`parbox_bool::contention::intern_contention_probe`]
///    at `threads` worker threads: the sharded production arena vs the
///    single-mutex seed replica on the identical intern workload. The
///    acceptance gate (`modeled_scaling() ≥ 2`) is asserted by the
///    `expF_saturation` binary.
/// 2. **Oracle differential** — before any timing, the engine's exact
///    forest is pushed through both `bottomUp` pipelines (arena and
///    preserved seed representation) and the full resolved triplet of
///    *every* fragment is asserted byte-identical, expD-style.
/// 3. **Open-loop saturation sweep** — the engine is calibrated
///    closed-loop, then driven at `rate_multipliers` × capacity with
///    Poisson arrivals; the most oversubscribed point is the saturation
///    row (achieved qps + p50/p99/p999 from scheduled arrival).
pub fn expf_saturation(
    scale: Scale,
    sites: usize,
    threads: usize,
    queries: usize,
    rate_multipliers: &[f64],
) -> ExpFRow {
    use parbox_bool::contention::intern_contention_probe;
    use parbox_bool::reference::{ref_solve, RefTriplet};
    use parbox_bool::EquationSystem;
    use parbox_core::{bottom_up, bottom_up_reference};
    use std::collections::HashMap;

    let (forest, placement) = ft1(scale, sites);

    // (2) Oracle differential over the serving forest: byte-identical
    // resolved triplets, every fragment, before anything is timed.
    let order = forest.postorder();
    let (_, q) = query_with_qlist(8, scale.seed);
    let mut sys = EquationSystem::new();
    let mut seed_triplets: HashMap<FragmentId, RefTriplet> = HashMap::new();
    for f in forest.fragment_ids() {
        sys.insert(f, bottom_up(&forest.fragment(f).tree, &q).triplet);
        seed_triplets.insert(f, bottom_up_reference(&forest.fragment(f).tree, &q).triplet);
    }
    let arena_solved = sys.solve(&order).expect("solvable FT1");
    let seed_solved = ref_solve(&seed_triplets, &order).expect("solvable FT1");
    for f in forest.fragment_ids() {
        assert_eq!(
            arena_solved[&f], seed_solved[&f],
            "sharded arena diverged from the reference oracle on fragment {f}"
        );
    }

    // (1) The intern contention probe.
    let probe = intern_contention_probe(threads, 30_000);

    // (3) The saturation sweep.
    let stream: Vec<parbox_query::Query> = batch_workload(queries, scale.seed ^ 0xF0F0);
    let mut engine = Engine::new(forest, placement, EngineConfig::default()).expect("valid");

    // Closed-loop calibration: warm the caches with one full pass, then
    // time a second — the engine's steady-state service capacity.
    for q in &stream {
        engine.query(q);
    }
    let start = Instant::now();
    for q in &stream {
        engine.query(q);
    }
    let capacity_qps = stream.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let mut rates = Vec::new();
    for (i, m) in rate_multipliers.iter().enumerate() {
        rates.push(open_loop_run(
            &mut engine,
            &stream,
            (capacity_qps * m).max(1.0),
            scale.seed ^ (0xE0 + i as u64),
        ));
    }
    let saturated = rates
        .iter()
        .cloned()
        .max_by(|a, b| a.offered_qps.total_cmp(&b.offered_qps))
        .expect("at least one rate multiplier");

    let stats = engine.stats();
    ExpFRow {
        sites,
        threads,
        queries: stream.len(),
        capacity_qps,
        saturated_qps: saturated.achieved_qps,
        p50_ms: saturated.p50_ms,
        p99_ms: saturated.p99_ms,
        p999_ms: saturated.p999_ms,
        rates,
        cache_hit_rate: stats.members_from_cache as f64 / (stats.queries as f64).max(1.0),
        probe,
    }
}

/// Result of one chaos cell: a fault kind injected at one rate under
/// one network model, driven through a resident engine and checked
/// query-by-query against the centralized oracle.
#[derive(Debug, Clone)]
pub struct ExpGCell {
    /// Fault kind name (`panic`/`wedge`/`delay`/`drop`/`crash`/`mixed`),
    /// or `none` for the fault-free baseline.
    pub kind: String,
    /// Per-request injection probability.
    pub rate: f64,
    /// Network model name (`lan`/`wan`).
    pub network: String,
    /// Queries answered during the chaos phase.
    pub queries: usize,
    /// Updates applied during the chaos phase (exercises crash-apply).
    pub updates: usize,
    /// Faults the plan actually injected in this cell.
    pub injected: u64,
    /// Supervised deadline expiries.
    pub timeouts: u64,
    /// Supervised retry attempts beyond each round's first.
    pub retries: u64,
    /// Site actors restarted in place (no process restart).
    pub restarts: u64,
    /// Answers marked `Complete` (exact — full coverage or certain).
    pub complete_answers: usize,
    /// Answers that went out degraded (`Partial`).
    pub partial_answers: usize,
    /// `Complete` answers disagreeing with the oracle. **Must be 0**:
    /// a complete answer is never wrong.
    pub wrong_complete: usize,
    /// `Partial` answers disagreeing with the oracle (allowed — that is
    /// what the marking is for — but tracked).
    pub wrong_partial: usize,
    /// 99th-percentile actor outage (first failure sign → recovering
    /// reply), milliseconds.
    pub recovery_p99_ms: f64,
    /// Worst actor outage, milliseconds.
    pub recovery_max_ms: f64,
    /// Post-chaos verification: with the plan disarmed (hooks still in
    /// place), every re-asked query came back `Complete` and correct —
    /// the engine recovered fully without a process restart.
    pub recovered_after_disarm: bool,
}

/// **Experiment G**: chaos-hardened serving. For each network model,
/// each fault `kind`, and each injection `rate`, a fresh FT1 deployment
/// is driven through a query/update stream with deterministic fault
/// injection at the site actors, under a tight supervision policy
/// (short deadlines, bounded retries with backoff, restart-on-wedge).
/// Every answer is checked against the centralized oracle evaluated on
/// the engine's authoritative forest:
///
/// * `Complete` answers must match the oracle **always** — full
///   coverage, or certainty established by `partial_solve` (the answer
///   holds under any content of the missing fragments).
/// * `Partial` answers may disagree; they are explicitly marked and
///   name the sites that stayed down.
///
/// After the stream, the plan is disarmed (injection stops; wedged or
/// dead actors stay as the faults left them) and the stream is re-asked:
/// the supervisor must restart/re-seed its way back to all-`Complete`,
/// all-correct answers — recovery without a process restart.
pub fn expg_chaos(
    scale: Scale,
    machines: usize,
    queries: usize,
    rates: &[f64],
    kinds: &[&str],
) -> Vec<ExpGCell> {
    let networks = [("lan", NetworkModel::lan()), ("wan", NetworkModel::wan())];
    let mut cells = Vec::new();
    for (net_name, model) in networks {
        let mut runs: Vec<(String, f64)> = vec![("none".to_string(), 0.0)];
        for &kind in kinds {
            for &rate in rates {
                runs.push((kind.to_string(), rate));
            }
        }
        for (kind, rate) in runs {
            cells.push(expg_cell(
                scale, machines, queries, &kind, rate, net_name, model,
            ));
        }
    }
    cells
}

fn expg_cell(
    scale: Scale,
    machines: usize,
    queries: usize,
    kind: &str,
    rate: f64,
    net_name: &str,
    model: NetworkModel,
) -> ExpGCell {
    use parbox_core::Completeness;
    use parbox_net::{FaultKind, FaultPlan, FaultRates, SupervisorConfig};

    // Deadlines are wall-clock (the workers are real threads; only the
    // network is modeled), so one tight policy serves both models: long
    // enough for a healthy site to reply under CI load, short enough
    // that a wedge costs tens of milliseconds, not seconds.
    let supervisor = SupervisorConfig {
        deadline: Duration::from_millis(30),
        max_attempts: 4,
        restart_after_timeouts: 1,
        backoff_base: Duration::from_millis(2),
        jitter_seed: scale.seed ^ 0x9E37,
    };
    // Delayed replies overshoot the deadline by design.
    let delay = Duration::from_millis(75);
    let plan = match kind {
        "none" => FaultPlan::none(),
        "mixed" => FaultPlan::random(scale.seed ^ 0xC4A0, FaultRates::mixed(rate), delay),
        k => {
            let fk = match k {
                "panic" => FaultKind::Panic,
                "wedge" => FaultKind::Wedge,
                "delay" => FaultKind::DelayReply,
                "drop" => FaultKind::DropEnvelope,
                "crash" => FaultKind::CrashApply,
                other => panic!("unknown fault kind {other}"),
            };
            FaultPlan::random(scale.seed ^ 0xC4A0, FaultRates::only(fk, rate), delay)
        }
    };

    let (forest, placement) = ft1(scale, machines);
    let config = EngineConfig {
        model,
        fault_plan: plan.clone(),
        supervisor: Some(supervisor),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(forest, placement, config).expect("valid deployment");

    let stream: Vec<(parbox_query::Query, CompiledQuery)> =
        batch_workload(queries, scale.seed ^ 0xE6_0001)
            .into_iter()
            .map(|q| {
                let c = compile(&q);
                (q, c)
            })
            .collect();
    // The oracle: plain ParBoX over the engine's authoritative forest,
    // fresh scoped threads, no pool, no faults.
    let oracle = |engine: &Engine, c: &CompiledQuery| {
        let cluster = Cluster::new(engine.forest(), engine.placement(), model);
        parbox(&cluster, c).answer
    };

    let mut complete_answers = 0usize;
    let mut partial_answers = 0usize;
    let mut wrong_complete = 0usize;
    let mut wrong_partial = 0usize;
    let mut updates = 0usize;
    let mut answered = 0usize;
    let mut recovery_s: Vec<f64> = Vec::new();
    let mut absorb_recovery = |report: &parbox_net::RunReport| {
        if let Some(f) = &report.faults {
            recovery_s.extend(f.recovery_s.iter().copied());
        }
    };
    for (i, (q, c)) in stream.iter().enumerate() {
        // Every fifth op is an update — the only path that can trigger
        // crash-during-apply — resolved against the live forest.
        if i % 5 == 4 {
            if let Some(update) = resolve_update(engine.forest(), scale.seed ^ (0xD0 + i as u64)) {
                let up = engine.apply(update).expect("resolved update applies");
                absorb_recovery(&up.report);
                updates += 1;
                continue;
            }
        }
        let expected = oracle(&engine, c);
        let out = engine.query(q);
        absorb_recovery(&out.report);
        answered += 1;
        match out.completeness {
            Completeness::Complete => {
                complete_answers += 1;
                if out.answer != expected {
                    wrong_complete += 1;
                }
            }
            Completeness::Partial { .. } => {
                partial_answers += 1;
                if out.answer != expected {
                    wrong_partial += 1;
                }
            }
        }
    }

    // Injection stops; the damage it already did does not. The engine
    // must supervise its way back: every re-asked query Complete and
    // correct, without a process restart.
    plan.disarm();
    let mut recovered = true;
    for (q, c) in &stream {
        let expected = oracle(&engine, c);
        let out = engine.query(q);
        absorb_recovery(&out.report);
        recovered &= out.completeness.is_complete() && out.answer == expected;
    }

    recovery_s.sort_by(|a, b| a.total_cmp(b));
    let stats = engine.stats();
    ExpGCell {
        kind: kind.to_string(),
        rate,
        network: net_name.to_string(),
        queries: answered,
        updates,
        injected: plan.total_injected(),
        timeouts: stats.timeouts,
        retries: stats.retries,
        restarts: stats.restarts,
        complete_answers,
        partial_answers,
        wrong_complete,
        wrong_partial,
        recovery_p99_ms: percentile(&recovery_s, 0.99),
        recovery_max_ms: recovery_s.last().copied().unwrap_or(0.0) * 1e3,
        recovered_after_disarm: recovered,
    }
}

/// One measured row of Experiment H: incremental view maintenance under
/// an update-heavy stream.
#[derive(Debug, Clone)]
pub struct ExpHRow {
    /// Participating sites (= fragments, one per site).
    pub sites: usize,
    /// Operations in the stream (queries + updates).
    pub ops: usize,
    /// Queries answered (both runs, identically).
    pub queries: usize,
    /// Updates that resolved and were applied (both runs, identically).
    pub updates_applied: usize,
    /// Wall-clock of the delta-maintaining run, seconds.
    pub delta_wall_s: f64,
    /// Wall-clock of the invalidate-and-recompute run, seconds.
    pub legacy_wall_s: f64,
    /// `legacy_wall_s / delta_wall_s`.
    pub speedup: f64,
    /// Cache entries repaired in place (site + coordinator levels).
    pub entries_repaired: u64,
    /// Cache entries the delta run still had to invalidate.
    pub entries_invalidated: u64,
    /// Tree nodes re-interned across all repairs — the O(depth) update
    /// cost actually paid (compare against `fragment_nodes`).
    pub nodes_recomputed: u64,
    /// Nodes in the forest at the end of the delta run — the O(|F|)
    /// cost the legacy path pays per recompute, for contrast.
    pub fragment_nodes: usize,
    /// Wire bytes of shipped triplet deltas.
    pub delta_bytes: u64,
    /// Total simulated traffic of the delta run, bytes.
    pub delta_traffic_bytes: usize,
    /// Total simulated traffic of the legacy run, bytes.
    pub legacy_traffic_bytes: usize,
}

/// **Experiment H**: delta-repair view maintenance vs
/// invalidate-and-recompute on an update-heavy stream (≥50% pure data
/// updates, queries drawn from a small standing pool) over an FT1
/// deployment of `machines` sites. Both engines are identically
/// configured apart from [`EngineConfig::delta_maintenance`] and see the
/// same stream; their answers must match bit for bit. Admission is
/// single-query (`max_batch = 1`) so cached fingerprints stay bounded by
/// the standing pool — the serving regime delta repair targets.
pub fn exph_ivm(scale: Scale, machines: usize, ops: usize) -> ExpHRow {
    let stream = update_heavy_workload(ops, 4, scale.seed);
    let config = |delta_maintenance: bool| EngineConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        delta_maintenance,
        ..EngineConfig::default()
    };

    // --- Delta-maintaining run -----------------------------------------
    let (forest, placement) = ft1(scale, machines);
    let mut engine = Engine::new(forest, placement, config(true)).expect("valid deployment");
    let start = Instant::now();
    let delta = drive_stream_with(&mut engine, &stream, resolve_data_update);
    let delta_wall_s = start.elapsed().as_secs_f64();
    let stats = engine.stats();
    let fragment_nodes = engine.forest_stats().total_nodes();
    drop(engine);

    // --- Invalidate-and-recompute run ----------------------------------
    let (forest, placement) = ft1(scale, machines);
    let mut engine = Engine::new(forest, placement, config(false)).expect("valid deployment");
    let start = Instant::now();
    let legacy = drive_stream_with(&mut engine, &stream, resolve_data_update);
    let legacy_wall_s = start.elapsed().as_secs_f64();
    drop(engine);

    assert_eq!(
        delta.answers, legacy.answers,
        "delta repair and invalidate-and-recompute must agree on every answer"
    );
    assert_eq!(
        delta.updates_applied, legacy.updates_applied,
        "both runs must apply the same updates"
    );

    ExpHRow {
        sites: machines,
        ops,
        queries: delta.answers.len(),
        updates_applied: delta.updates_applied,
        delta_wall_s,
        legacy_wall_s,
        speedup: legacy_wall_s / delta_wall_s.max(1e-12),
        entries_repaired: stats.entries_repaired,
        entries_invalidated: stats.entries_invalidated,
        nodes_recomputed: stats.repair_nodes_recomputed,
        fragment_nodes,
        delta_bytes: stats.repair_delta_bytes,
        delta_traffic_bytes: delta.bytes,
        legacy_traffic_bytes: legacy.bytes,
    }
}

// Re-export used by binaries.
pub use crate::builders::plant_markers;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            corpus_bytes: 30_000,
            seed: 11,
        }
    }

    #[test]
    fn fig7_series_has_expected_shape() {
        let rows = experiment1_fig7(tiny(), 4);
        assert_eq!(rows.len(), 8);
        // NaiveCentralized ships data; ParBoX does not.
        let nc_bytes: usize = rows
            .iter()
            .filter(|r| r.series == "NaiveCentralized")
            .map(|r| r.bytes)
            .sum();
        let pb_bytes: usize = rows
            .iter()
            .filter(|r| r.series == "ParBoX")
            .map(|r| r.bytes)
            .sum();
        assert!(nc_bytes > 10 * pb_bytes, "nc {nc_bytes} vs pb {pb_bytes}");
        // ParBoX runtime at 4 machines beats NaiveCentralized at 4 (the
        // shipping term is deterministic; allow generous compute noise).
        let at = |series: &str, x: f64| {
            rows.iter()
                .find(|r| r.series == series && r.x == x)
                .unwrap()
                .runtime_s
        };
        assert!(
            at("ParBoX", 4.0) < at("NaiveCentralized", 4.0) + 0.002,
            "parbox {} vs naive {}",
            at("ParBoX", 4.0),
            at("NaiveCentralized", 4.0)
        );
    }

    #[test]
    fn fig8_more_subqueries_cost_more() {
        let rows = experiment1_fig8(tiny(), 2);
        let sum = |s: &str| -> f64 {
            rows.iter()
                .filter(|r| r.series == s)
                .map(|r| r.work as f64)
                .sum()
        };
        assert!(sum("|QList|=23") > sum("|QList|=2"));
    }

    #[test]
    fn experiment2_lazy_wins_at_root_target() {
        let rows = experiment2(tiny(), 4, Target::Root);
        // At n=4, lazy does least total work.
        let work = |s: &str| {
            rows.iter()
                .find(|r| r.series == s && r.x == 4.0)
                .unwrap()
                .work
        };
        assert!(work("LazyParBoX") < work("ParBoX"));
        assert!(work("LazyParBoX") < work("FullDistParBoX"));
    }

    #[test]
    fn experiment2_deepest_target_makes_lazy_sequential() {
        let rows = experiment2(tiny(), 4, Target::Deepest);
        let rt = |s: &str| {
            rows.iter()
                .find(|r| r.series == s && r.x == 4.0)
                .unwrap()
                .runtime_s
        };
        assert!(rt("LazyParBoX") >= rt("ParBoX"));
    }

    #[test]
    fn fig4_all_algorithms_agree_and_match_bounds() {
        let table = fig4_table(tiny(), 3);
        let answers: Vec<bool> = table.iter().map(|r| r.answer).collect();
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
        let get = |name: &str| table.iter().find(|r| r.algorithm == name).unwrap();
        assert_eq!(get("ParBoX").max_visits, 1);
        assert_eq!(get("NaiveCentralized").max_visits, 1);
        assert!(get("NaiveCentralized").bytes > get("ParBoX").bytes);
    }

    #[test]
    fn sec5_incremental_is_cheaper_and_localized() {
        let rows = sec5_incremental(tiny(), 3);
        for r in &rows {
            assert!(
                r.incremental_bytes <= r.reeval_bytes,
                "{}: {} > {}",
                r.scenario,
                r.incremental_bytes,
                r.reeval_bytes
            );
            assert!(
                r.sites_visited <= 2,
                "{} visited {}",
                r.scenario,
                r.sites_visited
            );
        }
    }

    #[test]
    fn expb_batch_of_32_single_visit_and_4x_network_win() {
        // The ISSUE acceptance criterion, at test scale: a batch of 32
        // issues exactly one visit per site and beats 32 sequential ParBoX
        // runs on total simulated network cost by at least 4×.
        let rows = expb_batch_vs_sequential(tiny(), 4, &[32]);
        let row = &rows[0];
        assert_eq!(row.batch_max_visits, 1, "batch must visit each site once");
        assert!(
            row.sequential_network_s >= 4.0 * row.batch_network_s,
            "network win below 4x: sequential {} vs batch {}",
            row.sequential_network_s,
            row.batch_network_s
        );
        assert!(
            row.batch_bytes < row.sequential_bytes,
            "batched traffic must not exceed sequential"
        );
        assert!(row.merged_qlist < row.summed_qlist, "no dedup happened");
    }

    #[test]
    fn expb_savings_grow_with_batch_size() {
        let rows = expb_batch_vs_sequential(tiny(), 3, &[1, 8, 32]);
        let ratio = |r: &BatchRow| r.sequential_network_s / r.batch_network_s.max(1e-12);
        assert!(ratio(&rows[2]) > ratio(&rows[1]));
        assert!(ratio(&rows[1]) > ratio(&rows[0]));
    }

    #[test]
    fn expc_resident_engine_beats_oneshot_with_zero_triplet_repeats() {
        // The ISSUE acceptance criterion, at test scale: on a mixed
        // workload with ~20% repeats and interleaved updates, the
        // resident engine beats spawn-per-query wall-clock, answers
        // match one-shot ParBoX op for op (asserted inside the driver),
        // and a fully cached repeat moves zero data-plane bytes.
        let row = expc_resident_vs_oneshot(tiny(), 8, 300);
        assert!(row.queries > 250, "most ops are queries: {}", row.queries);
        assert!(row.updates_applied > 0, "updates must interleave");
        assert!(row.members_from_cache > 0, "repeats must hit the cache");
        assert_eq!(row.cached_repeat_data_plane_bytes, 0);
        assert!(
            row.resident_wall_s < row.oneshot_wall_s,
            "resident {:.4}s !< one-shot {:.4}s",
            row.resident_wall_s,
            row.oneshot_wall_s
        );
    }

    #[test]
    fn expd_arena_matches_seed_and_wins() {
        // The ISSUE acceptance criterion, at test scale: the arena
        // pipeline must produce byte-identical resolved triplets to the
        // seed representation and a DAG wire encoding that never exceeds
        // the tree encoding (both asserted inside the experiment). The
        // ≥2x speedup headline is asserted by the release-mode
        // `expD_formula_arena` binary that CI runs (4x at the default
        // 2048-fragment scale); unoptimized debug timings at test scale
        // measure mutex/hashing constants, not the quadratic-vs-linear
        // asymptotics, so no timing is asserted here.
        let row = expd_formula_arena(tiny(), 8, 160, 4);
        assert_eq!(row.fragments, 160);
        assert!(row.arena_s > 0.0 && row.seed_s > 0.0);
        assert!(row.dag_triplet_bytes <= row.tree_triplet_bytes);
        assert!(row.envelope_dag_bytes <= row.envelope_tree_bytes);
        // The star's hub triplet is dominated by shared wide
        // disjunctions, so the DAG format should be a real win, not a tie.
        assert!(
            row.dag_triplet_bytes * 10 <= row.tree_triplet_bytes * 9,
            "expected ≥10% wire win: dag {} vs tree {}",
            row.dag_triplet_bytes,
            row.tree_triplet_bytes
        );
    }

    #[test]
    fn expd_dag_never_larger_across_workloads() {
        // asserts dag ≤ tree per triplet internally, across the FT1/FT2/
        // FT3 shapes of experiments A–C.
        let rows = expd_dag_bytes_on_workloads(tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.dag_bytes <= r.tree_bytes, "{}", r.workload);
        }
    }

    #[test]
    fn expe_adaptive_planner_tracks_best_fixed_strategy() {
        // The ISSUE acceptance criterion, at test scale: across query
        // shapes × fragmentations × network models, the adaptive
        // planner's deterministic modeled time stays within 1.1x of the
        // best fixed strategy (small absolute allowance for the
        // micro-scale cells where every strategy costs microseconds)
        // and beats the worst fixed strategy by ≥2x somewhere. Answer
        // agreement across all strategies and estimate-vs-measured
        // agreement (visits/messages exact, traffic within the
        // documented factor) are asserted inside the sweep.
        let rows = expe_planner(tiny(), 6);
        assert_eq!(rows.len(), 27, "3 shapes x 3 networks x 3 queries");
        expe_check(&rows, 5e-4);
        // The planner must not be a constant function: different cells
        // pick different strategies.
        let distinct: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.chosen.as_str()).collect();
        assert!(distinct.len() >= 2, "planner always chose {distinct:?}");
    }

    #[test]
    fn expf_open_loop_reports_sane_percentiles() {
        // Tiny smoke of the saturation sweep: percentiles monotone, the
        // oracle differential and the contention probe both run, and the
        // cache-hit rate is a rate. (The ≥2x scaling gate itself is
        // asserted by the expF_saturation binary and the 16-thread
        // regression test in crates/bool/tests/contention.rs.)
        let row = expf_saturation(tiny(), 3, 2, 40, &[1.0]);
        assert_eq!(row.rates.len(), 1);
        assert!(row.capacity_qps > 0.0 && row.saturated_qps > 0.0);
        assert!(row.p50_ms <= row.p99_ms && row.p99_ms <= row.p999_ms);
        assert!(row.probe.sharded.modeled_ops_per_sec > 0.0);
        assert!((0.0..=1.0).contains(&row.cache_hit_rate));
    }

    #[test]
    fn fig13_single_site_runtime_flat() {
        let rows = experiment4_fig13(tiny(), 5);
        let rts: Vec<f64> = rows.iter().map(|r| r.runtime_s).collect();
        let max = rts.iter().cloned().fold(0.0, f64::max);
        let min = rts.iter().cloned().fold(f64::INFINITY, f64::min);
        // "Almost constant": generous 4x guard for debug-build noise.
        assert!(max < min * 4.0 + 0.01, "not flat: {rts:?}");
    }

    #[test]
    fn expg_chaos_never_lies_and_recovers() {
        let cells = expg_chaos(tiny(), 3, 15, &[0.3], &["panic", "wedge"]);
        assert_eq!(cells.len(), 2 * 3, "baseline + 2 kinds, per network");
        let mut injected_total = 0u64;
        for c in &cells {
            assert_eq!(
                c.wrong_complete, 0,
                "{}/{}: Complete answer lied",
                c.network, c.kind
            );
            assert!(
                c.recovered_after_disarm,
                "{}/{}: did not recover",
                c.network, c.kind
            );
            if c.kind == "none" {
                assert_eq!(c.injected, 0);
                assert_eq!(c.partial_answers, 0);
                assert_eq!(
                    c.restarts + c.timeouts + c.retries,
                    0,
                    "inert plan cost nothing"
                );
            }
            injected_total += c.injected;
        }
        assert!(injected_total > 0, "chaos cells injected nothing");
    }

    #[test]
    fn exph_repairs_in_place_and_agrees() {
        // Answer equality between the two engines is asserted inside
        // exph_ivm; wall-clock ratios are left to the release binary.
        let row = exph_ivm(tiny(), 3, 80);
        assert!(row.updates_applied > 0, "stream must carry updates");
        // ~55% of ops are update seeds; a few don't resolve (guarded
        // deletions), so the applied floor sits below one half.
        assert!(
            row.updates_applied * 3 >= row.ops,
            "stream must be update-heavy"
        );
        assert!(row.entries_repaired > 0, "delta run must repair in place");
        assert!(
            (row.nodes_recomputed as usize) < row.fragment_nodes * row.updates_applied,
            "repair cost must undercut per-update full recompute"
        );
        assert!(
            row.delta_traffic_bytes < row.legacy_traffic_bytes,
            "triplet deltas must undercut full triplet re-ships"
        );
    }
}

//! XML serialization.

use crate::{NodeId, NodeKind, Tree};

/// Tag name used to serialize virtual nodes so fragments survive a
/// serialize → parse round-trip. The `ref` attribute carries the fragment
/// number.
pub const VIRTUAL_TAG: &str = "parbox:virtual";

/// Serializer configuration.
#[derive(Debug, Clone, Default)]
pub struct WriteOptions {
    /// Pretty-print with two-space indentation (default false: compact).
    pub indent: bool,
}

/// Serializes `tree` to an XML string.
pub fn write_tree(tree: &Tree, opts: &WriteOptions) -> String {
    let mut out = String::with_capacity(tree.len() * 16);
    write_node(tree, tree.root(), opts, 0, &mut out);
    out
}

fn write_node(tree: &Tree, id: NodeId, opts: &WriteOptions, depth: usize, out: &mut String) {
    let node = tree.node(id);
    if opts.indent && depth > 0 {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push('<');
    let name = tree.label_str(id);
    out.push_str(name);
    if let NodeKind::Virtual(f) = node.kind {
        out.push_str(&format!(" ref=\"{}\"", f.0));
    }
    for (k, v) in &node.attrs {
        if node.kind.is_virtual() && k.as_ref() == "ref" {
            continue; // already emitted from the kind
        }
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape_into(v, out);
        out.push('"');
    }
    let has_content = node.text.is_some() || !node.child_ids().is_empty();
    if !has_content {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if let Some(text) = &node.text {
        escape_into(text, out);
    }
    let had_children = !node.child_ids().is_empty();
    for &child in node.child_ids() {
        write_node(tree, child, opts, depth + 1, out);
    }
    if opts.indent && had_children {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

/// Escapes XML-special characters into `out`.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FragmentId;

    #[test]
    fn writes_minimal() {
        let t = Tree::new("a");
        assert_eq!(t.to_xml(), "<a/>");
    }

    #[test]
    fn writes_text_and_children() {
        let mut t = Tree::new("a");
        let r = t.root();
        t.add_text_child(r, "b", "x<y");
        assert_eq!(t.to_xml(), "<a><b>x&lt;y</b></a>");
    }

    #[test]
    fn round_trips_through_parse() {
        let mut t = Tree::new("portfolio");
        let r = t.root();
        let broker = t.add_child(r, "broker");
        t.add_text_child(broker, "name", "Merill Lynch");
        t.set_attr(broker, "id", "b1");
        t.add_virtual_child(broker, FragmentId(2));
        let xml = t.to_xml();
        let back = Tree::parse(&xml).unwrap();
        assert!(t.structural_eq(&back), "round-trip changed tree: {xml}");
    }

    #[test]
    fn pretty_print_round_trips() {
        let mut t = Tree::new("a");
        let r = t.root();
        let b = t.add_child(r, "b");
        t.add_text_child(b, "c", "v");
        let xml = write_tree(&t, &WriteOptions { indent: true });
        assert!(xml.contains('\n'));
        let back = Tree::parse(&xml).unwrap();
        assert!(t.structural_eq(&back));
    }

    #[test]
    fn virtual_node_serialization() {
        let mut t = Tree::new("a");
        let r = t.root();
        t.add_virtual_child(r, FragmentId(9));
        let xml = t.to_xml();
        assert!(xml.contains("parbox:virtual"));
        assert!(xml.contains("ref=\"9\""));
    }

    #[test]
    fn escapes_attribute_values() {
        let mut t = Tree::new("a");
        let r = t.root();
        t.set_attr(r, "k", "a\"b&c");
        let xml = t.to_xml();
        assert!(xml.contains("&quot;"));
        assert!(xml.contains("&amp;"));
        let back = Tree::parse(&xml).unwrap();
        assert_eq!(back.node(back.root()).attr("k"), Some("a\"b&c"));
    }
}

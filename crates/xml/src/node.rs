//! Node representation for the arena tree.

use crate::{FragmentId, LabelId};

/// Index of a node inside a [`crate::Tree`] arena.
///
/// Node ids are stable for the lifetime of a node: removing a subtree marks
/// its slots free but never shifts other nodes. Ids of removed nodes must
/// not be used again by callers (the tree debug-asserts liveness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index form, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a raw index. Intended for tests and for
    /// serialization layers that re-build trees; using an id that does not
    /// name a live node is caught by debug assertions.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A regular element node.
    Element,
    /// A *virtual node*: a leaf standing for the root of the sub-fragment
    /// with the given id, stored at some other site (paper, Section 2.1).
    /// During distributed evaluation the values of all sub-queries at a
    /// virtual node are unknown and are represented by Boolean variables.
    Virtual(FragmentId),
}

impl NodeKind {
    /// True when the node is virtual.
    #[inline]
    pub fn is_virtual(&self) -> bool {
        matches!(self, NodeKind::Virtual(_))
    }

    /// The referenced fragment when virtual.
    #[inline]
    pub fn fragment(&self) -> Option<FragmentId> {
        match self {
            NodeKind::Virtual(f) => Some(*f),
            NodeKind::Element => None,
        }
    }
}

/// A single tree node.
///
/// Kept intentionally small; the `children` vector is the only owned heap
/// payload besides optional text/attributes.
#[derive(Debug, Clone)]
pub struct Node {
    /// Interned tag name.
    pub label: LabelId,
    /// Element or virtual pointer.
    pub kind: NodeKind,
    /// Direct character content of the element (concatenated, trimmed),
    /// matching the paper's `text()` accessor.
    pub text: Option<Box<str>>,
    /// Attributes in document order. XBL does not query attributes but the
    /// store round-trips them faithfully.
    pub attrs: Vec<(Box<str>, Box<str>)>,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    /// Liveness flag: false after the node was removed from the tree.
    pub(crate) live: bool,
}

impl Node {
    pub(crate) fn new(label: LabelId, kind: NodeKind) -> Self {
        Node {
            label,
            kind,
            text: None,
            attrs: Vec::new(),
            parent: None,
            children: Vec::new(),
            live: true,
        }
    }

    /// The node's parent, or `None` for the root.
    #[inline]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Ids of the node's children, in document order.
    #[inline]
    pub fn child_ids(&self) -> &[NodeId] {
        &self.children
    }

    /// True if this node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Attribute lookup by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, v)| v.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_accessors() {
        assert!(!NodeKind::Element.is_virtual());
        assert_eq!(NodeKind::Element.fragment(), None);
        let v = NodeKind::Virtual(FragmentId(3));
        assert!(v.is_virtual());
        assert_eq!(v.fragment(), Some(FragmentId(3)));
    }

    #[test]
    fn attr_lookup_finds_first_match() {
        let mut n = Node::new(LabelId(0), NodeKind::Element);
        n.attrs.push(("id".into(), "1".into()));
        n.attrs.push(("class".into(), "x".into()));
        assert_eq!(n.attr("class"), Some("x"));
        assert_eq!(n.attr("missing"), None);
    }

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }
}

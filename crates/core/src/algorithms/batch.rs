//! The multi-query **batch engine**: ParBoX's three stages amortized over
//! a whole batch of concurrent queries.
//!
//! The paper proves, per query, that every site is visited exactly once
//! with `O(|q| · card(F))` traffic. Under serving traffic the unit of
//! work is a *batch* of `N` concurrent queries, and running ParBoX `N`
//! times repeats the per-site round trip — and the per-fragment tree
//! traversal — `N` times. [`run_batch`] instead:
//!
//! 1. ships each site the **merged program** of the whole batch
//!    ([`parbox_query::QueryBatch`]) in one visit;
//! 2. partially evaluates the merged program with **one `bottomUp`
//!    traversal per fragment** — the `(V, CV, DV)` triplet is as wide as
//!    the merged `QList`, so every member query's partial answer falls
//!    out of the same pass — and returns **one envelope per site**
//!    carrying all of its fragments' triplets;
//! 3. solves the combined equation system in **one solver pass**, then
//!    reads each member's answer off its own root sub-query.
//!
//! The per-site traffic stays within the paper's bound summed over the
//! batch (`O(Σ|qᵢ| · card(F))`), and is strictly below it whenever
//! members share sub-queries, since shared entries are shipped once.

use crate::algorithms::query_wire_size;
use crate::eval::bottom_up;
use parbox_bool::{site_envelope_dag_wire_size, EquationSystem, Triplet};
use parbox_net::{run_sites_parallel, BatchRound, Cluster, RunReport};
use parbox_query::QueryBatch;
use parbox_xml::FragmentId;
use std::time::Instant;

/// Result of one batched evaluation round.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-member answers, in the batch's input order.
    pub answers: Vec<bool>,
    /// Full cost accounting of the round (all members combined).
    pub report: RunReport,
    /// Algorithm label for harness output.
    pub algorithm: &'static str,
}

/// Wire size in bytes of a batch request: the merged program plus the
/// root-id table (4 bytes per member; [`query_wire_size`] already counts
/// the first root id).
pub fn batch_query_wire_size(batch: &QueryBatch) -> usize {
    query_wire_size(batch.merged()) + 4 * (batch.len() - 1)
}

/// Evaluates every query of `batch` over the cluster in one ParBoX-style
/// round: one visit, one request and one envelope per site, one
/// `bottomUp` traversal per fragment, one solver pass.
pub fn run_batch(cluster: &Cluster<'_>, batch: &QueryBatch) -> BatchOutcome {
    let wall = Instant::now();
    let coord = cluster.coordinator();
    let sites = cluster.sites();
    let merged = batch.merged();
    let request_bytes = batch_query_wire_size(batch);

    // Stage 1: one visit per site, shipping the merged program once.
    let mut round = BatchRound::new(coord);
    for &s in &sites {
        round.visit(s, request_bytes).expect("sites are distinct");
    }

    // Stage 2: each site partially evaluates the merged program over each
    // of its fragments — one traversal per fragment for the whole batch.
    let runs = run_sites_parallel(&sites, |s| {
        cluster
            .fragments_at(s)
            .into_iter()
            .map(|f| (f, bottom_up(&cluster.forest.fragment(f).tree, merged)))
            .collect::<Vec<(FragmentId, crate::eval::FragmentRun)>>()
    });

    let mut sys = EquationSystem::new();
    let mut remote_envelope_bytes: Vec<usize> = Vec::new();
    let mut max_compute = 0.0f64;
    for run in runs {
        round.report_mut().record_compute(run.site, run.elapsed);
        max_compute = max_compute.max(run.elapsed.as_secs_f64());
        let entries: Vec<(FragmentId, &Triplet)> = run
            .output
            .iter()
            .map(|(f, frun)| (*f, &frun.triplet))
            .collect();
        let bytes = site_envelope_dag_wire_size(&entries);
        round.reply(run.site, bytes).expect("site was visited");
        if run.site != coord {
            remote_envelope_bytes.push(bytes);
        }
        for (frag, frun) in run.output {
            round.report_mut().record_work(run.site, frun.work_units);
            sys.insert(frag, frun.triplet);
        }
    }

    // Stage 3: one solver pass over the combined equation system.
    let solve_start = Instant::now();
    let resolved = sys
        .solve(cluster.source_tree.postorder())
        .expect("envelopes cover every fragment in bottom-up order");
    let solve_time = solve_start.elapsed();
    let mut report = round.finish();
    report.record_compute(coord, solve_time);
    // The combined system has O(|merged QList| · card(F)) entries.
    report.record_work(coord, (merged.len() * cluster.forest.card()) as u64);

    // Each member's answer is its own root sub-query's value at the root
    // fragment — all read off the single resolved system.
    let root_frag = cluster.forest.root_fragment();
    let root_v = &resolved[&root_frag].v;
    let answers = batch.roots().iter().map(|&r| root_v[r as usize]).collect();

    // Modeled elapsed time, as for single-query ParBoX: request broadcast
    // ∥ → parallel compute → envelope return over the coordinator's shared
    // inbound link → solve.
    let model = &cluster.model;
    let broadcast = if sites.len() > 1 {
        model.transfer_time(request_bytes)
    } else {
        0.0
    };
    let collect = model.shared_link_time(remote_envelope_bytes.iter().copied());
    report.elapsed_model_s = broadcast + max_compute + collect + solve_time.as_secs_f64();
    report.elapsed_wall_s = wall.elapsed().as_secs_f64();

    BatchOutcome {
        answers,
        report,
        algorithm: "BatchParBoX",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::parbox;
    use crate::eval::centralized::centralized_eval;
    use parbox_frag::{Forest, Placement};
    use parbox_net::{MessageKind, NetworkModel};
    use parbox_query::{compile, compile_batch, parse_query, Query};
    use parbox_xml::Tree;

    fn fig1_forest() -> Forest {
        let tree = Tree::parse("<r><x><z><A/><A/></z><pad/></x><y><B/></y></r>").unwrap();
        let mut forest = Forest::from_tree(tree);
        let f0 = forest.root_fragment();
        let find = |forest: &Forest, frag, label: &str| {
            let t = &forest.fragment(frag).tree;
            t.descendants(t.root())
                .find(|&n| t.label_str(n) == label)
                .unwrap()
        };
        let x = find(&forest, f0, "x");
        let fx = forest.split(f0, x).unwrap();
        let z = find(&forest, fx, "z");
        forest.split(fx, z).unwrap();
        let y = find(&forest, f0, "y");
        forest.split(f0, y).unwrap();
        forest
    }

    fn queries(srcs: &[&str]) -> Vec<Query> {
        srcs.iter().map(|s| parse_query(s).unwrap()).collect()
    }

    const SRCS: [&str; 6] = [
        "[//A and //B]",
        "[//A]",
        "[//B and //pad]",
        "[//x[z/A]]",
        "[//A and not //B]",
        "[not(//nothing)]",
    ];

    #[test]
    fn batch_answers_match_per_query_parbox_and_centralized() {
        let forest = fig1_forest();
        let whole = forest.reassemble();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let qs = queries(&SRCS);
        let out = run_batch(&cluster, &compile_batch(&qs));
        assert_eq!(out.answers.len(), SRCS.len());
        assert_eq!(out.algorithm, "BatchParBoX");
        for (i, src) in SRCS.iter().enumerate() {
            let solo = parbox(&cluster, &compile(&qs[i]));
            assert_eq!(out.answers[i], solo.answer, "parbox mismatch on {src}");
            let central = centralized_eval(&whole, &compile(&qs[i]));
            assert_eq!(out.answers[i], central, "centralized mismatch on {src}");
        }
    }

    #[test]
    fn one_visit_and_one_envelope_per_site() {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let out = run_batch(&cluster, &compile_batch(&queries(&SRCS)));
        assert_eq!(out.report.max_visits(), 1);
        for (site, rep) in out.report.sites() {
            assert_eq!(rep.visits, 1, "site {}", site.0);
        }
        // Exactly one request + one envelope per remote site.
        let remote = cluster.sites().len() - 1;
        assert_eq!(out.report.total_messages(), 2 * remote);
        assert!(out.report.bytes_of_kind(MessageKind::Envelope) > 0);
    }

    #[test]
    fn batch_traffic_below_sequential_sum() {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let qs = queries(&SRCS);
        let batched = run_batch(&cluster, &compile_batch(&qs));
        let sequential: usize = qs
            .iter()
            .map(|q| parbox(&cluster, &compile(q)).report.total_bytes())
            .sum();
        assert!(
            batched.report.total_bytes() < sequential,
            "batched {} vs sequential {sequential}",
            batched.report.total_bytes()
        );
    }

    #[test]
    fn multi_fragment_sites_still_one_envelope() {
        let forest = fig1_forest();
        let placement = Placement::round_robin(&forest, 2);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let out = run_batch(&cluster, &compile_batch(&queries(&SRCS)));
        assert_eq!(out.report.max_visits(), 1);
        assert_eq!(out.report.total_messages(), 2);
        assert!(out.answers[0]);
    }

    #[test]
    fn single_site_batch_needs_no_traffic() {
        let tree = Tree::parse("<a><b/></a>").unwrap();
        let forest = Forest::from_tree(tree);
        let placement = Placement::single_site(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let out = run_batch(&cluster, &compile_batch(&queries(&["[//b]", "[//c]"])));
        assert_eq!(out.answers, vec![true, false]);
        assert_eq!(out.report.total_messages(), 0);
    }

    #[test]
    fn batch_of_one_agrees_with_parbox_costs() {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = parse_query("[//A and //B]").unwrap();
        let batched = run_batch(&cluster, &compile_batch(std::slice::from_ref(&q)));
        let solo = parbox(&cluster, &compile(&q));
        assert_eq!(batched.answers, vec![solo.answer]);
        assert_eq!(batched.report.max_visits(), solo.report.max_visits());
        // Same traversal work; the envelope adds a constant per fragment.
        assert_eq!(batched.report.total_work(), solo.report.total_work());
    }
}

//! Compilation of *data-selection* XPath queries.
//!
//! The paper's conclusions describe an extension of ParBoX from Boolean
//! to data-selection queries — queries returning the set of nodes
//! reached via a path, "with the performance guarantee that each site is
//! visited at most twice". This module provides the compile-time side:
//! a normalized path is turned into a [`SelectionProgram`], a small
//! automaton whose states are positions in the normalized step list
//! `β1/…/βk`, with qualifiers delegated to an ordinary compiled
//! [`CompiledQuery`] (so the Boolean machinery is reused wholesale).
//!
//! State `i` at node `v` means "β1…βi matched along the path from the
//! context root to `v`". Transitions:
//!
//! * `βi+1 = ε[q]` — ε-transition at `v` when `q` holds at `v`;
//! * `βi+1 = *`    — edge transition: `i+1` at every child;
//! * `βi+1 = //`   — ε-transition to `i+1` at `v` (zero descent) *and*
//!   `i` propagates to every child (keep descending).
//!
//! A node is selected when the final state `k` is active. State sets are
//! packed into a `u64`, so paths of up to 63 steps are supported — far
//! beyond any practical query.

use crate::compile::{CompiledQuery, SubId, SubQuery};
use crate::normalize::{normalize, NQuery, NStep};
use crate::Query;
use std::collections::HashMap;
use std::fmt;

/// One automaton step of a selection program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelStep {
    /// `*` — consume one child edge.
    Child,
    /// `//` — descend any number of edges (including zero).
    DescOrSelf,
    /// `ε[q]` — check qualifier `q` (a sub-query of [`SelectionProgram::quals`])
    /// at the current node.
    Qual(SubId),
}

/// A compiled data-selection query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionProgram {
    /// The automaton steps `β1…βk`.
    pub steps: Vec<SelStep>,
    /// Compiled qualifier sub-queries, shared across steps.
    pub quals: CompiledQuery,
}

/// Why a query cannot be compiled for selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionError {
    /// The query is not a path (Boolean connectives select nothing).
    NotAPath,
    /// More than 63 steps (the state-set word is a `u64`).
    TooLong(usize),
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::NotAPath => {
                write!(
                    f,
                    "selection requires a path query (Boolean combinations select no nodes)"
                )
            }
            SelectionError::TooLong(n) => {
                write!(f, "selection path has {n} steps; at most 63 are supported")
            }
        }
    }
}

impl std::error::Error for SelectionError {}

impl SelectionProgram {
    /// Number of automaton steps `k`; the accepting state.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the trivial program selecting only the context root.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Ids (within [`Self::quals`]) whose per-node values the top-down
    /// pass needs, in step order.
    pub fn qual_ids(&self) -> Vec<SubId> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                SelStep::Qual(id) => Some(*id),
                _ => None,
            })
            .collect()
    }
}

/// Compiles a path query (e.g. `//stock[code/text() = "GOOG"]`) into a
/// selection program.
///
/// `TextEq` queries select the nodes whose text matches; `LabelEq` the
/// context root when its label matches. Boolean combinations are
/// rejected — they denote truth values, not node sets.
pub fn compile_selection(q: &Query) -> Result<SelectionProgram, SelectionError> {
    let n = normalize(q);
    let steps = match n {
        NQuery::Path(steps) => steps,
        // A bare predicate selects the context root iff it holds there.
        NQuery::True => Vec::new(),
        q @ (NQuery::LabelIs(_) | NQuery::TextIs(_)) => vec![NStep::Qual(Box::new(q))],
        NQuery::And(_, _) | NQuery::Or(_, _) | NQuery::Not(_) => {
            return Err(SelectionError::NotAPath)
        }
    };
    if steps.len() > 63 {
        return Err(SelectionError::TooLong(steps.len()));
    }
    let mut builder = QualBuilder {
        subs: Vec::new(),
        memo: HashMap::new(),
    };
    let steps: Vec<SelStep> = steps
        .iter()
        .map(|s| match s {
            NStep::Wildcard => SelStep::Child,
            NStep::DescOrSelf => SelStep::DescOrSelf,
            NStep::Qual(q) => SelStep::Qual(builder.compile(q)),
        })
        .collect();
    Ok(SelectionProgram {
        steps,
        quals: builder.finish(),
    })
}

/// Builds one shared `CompiledQuery` holding every qualifier.
struct QualBuilder {
    subs: Vec<SubQuery>,
    memo: HashMap<SubQuery, SubId>,
}

impl QualBuilder {
    fn add(&mut self, s: SubQuery) -> SubId {
        if let Some(&id) = self.memo.get(&s) {
            return id;
        }
        let id = self.subs.len() as SubId;
        self.subs.push(s.clone());
        self.memo.insert(s, id);
        id
    }

    fn compile(&mut self, q: &NQuery) -> SubId {
        match q {
            NQuery::True => self.add(SubQuery::True),
            NQuery::LabelIs(a) => self.add(SubQuery::LabelIs(a.clone())),
            NQuery::TextIs(s) => self.add(SubQuery::TextIs(s.clone())),
            NQuery::Path(steps) => self.compile_steps(steps),
            NQuery::Not(x) => {
                let i = self.compile(x);
                self.add(SubQuery::Not(i))
            }
            NQuery::And(a, b) => {
                let x = self.compile(a);
                let y = self.compile(b);
                self.add(SubQuery::And(x, y))
            }
            NQuery::Or(a, b) => {
                let x = self.compile(a);
                let y = self.compile(b);
                self.add(SubQuery::Or(x, y))
            }
        }
    }

    fn compile_steps(&mut self, steps: &[NStep]) -> SubId {
        match steps.split_first() {
            None => self.add(SubQuery::True),
            Some((NStep::Wildcard, rest)) => {
                let r = self.compile_steps(rest);
                self.add(SubQuery::Child(r))
            }
            Some((NStep::DescOrSelf, rest)) => {
                let r = self.compile_steps(rest);
                self.add(SubQuery::Desc(r))
            }
            Some((NStep::Qual(q), rest)) => {
                let x = self.compile(q);
                if rest.is_empty() {
                    x
                } else {
                    let r = self.compile_steps(rest);
                    self.add(SubQuery::And(x, r))
                }
            }
        }
    }

    fn finish(mut self) -> CompiledQuery {
        // A program must never be empty: anchor with ε so `resolve` and
        // the evaluators have a well-formed root.
        if self.subs.is_empty() {
            self.add(SubQuery::True);
        }
        let root = (self.subs.len() - 1) as SubId;
        CompiledQuery::from_parts(self.subs, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn sel(src: &str) -> SelectionProgram {
        compile_selection(&parse_query(src).unwrap()).unwrap()
    }

    #[test]
    fn descendant_label_path() {
        let p = sel("[//stock]");
        // //, *, ε[label()=stock]
        assert_eq!(p.steps.len(), 3);
        assert!(matches!(p.steps[0], SelStep::DescOrSelf));
        assert!(matches!(p.steps[1], SelStep::Child));
        assert!(matches!(p.steps[2], SelStep::Qual(_)));
        assert!(!p.quals.is_empty());
    }

    #[test]
    fn qualifiers_share_the_qual_program() {
        let p = sel("[//stock[code/text() = \"GOOG\"]]");
        // label()=stock merged with the code qualifier into one ∧.
        let ids = p.qual_ids();
        assert_eq!(ids.len(), 1);
        assert!(p.quals.len() >= 5);
    }

    #[test]
    fn boolean_queries_are_rejected() {
        let q = parse_query("[//a and //b]").unwrap();
        assert_eq!(compile_selection(&q), Err(SelectionError::NotAPath));
        let q = parse_query("[not //a]").unwrap();
        assert_eq!(compile_selection(&q), Err(SelectionError::NotAPath));
    }

    #[test]
    fn trivial_and_predicate_selections() {
        let p = sel("[.]");
        assert!(p.is_empty(), "ε selects just the root");
        let p = sel("[label() = a]");
        assert_eq!(p.steps.len(), 1);
        assert!(matches!(p.steps[0], SelStep::Qual(_)));
    }

    #[test]
    fn text_eq_becomes_final_qualifier() {
        let p = sel("[//code/text() = \"GOOG\"]");
        assert!(matches!(p.steps.last(), Some(SelStep::Qual(_))));
    }

    #[test]
    fn too_long_paths_rejected() {
        let long = format!("[{}]", vec!["a"; 40].join("/"));
        // 40 labels → 80 steps (wildcard + qualifier each).
        let q = parse_query(&long).unwrap();
        assert!(matches!(
            compile_selection(&q),
            Err(SelectionError::TooLong(_))
        ));
    }
}

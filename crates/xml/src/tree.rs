//! The arena-based XML tree.

use crate::iter::{Ancestors, Descendants, Postorder};
use crate::{FragmentId, LabelId, LabelTable, Node, NodeId, NodeKind, XmlError};

/// An ordered, labelled XML tree stored in a flat arena.
///
/// The tree always has a root. Structural mutation (insert / remove /
/// split / graft) is supported in place; removed slots are tomb-stoned, so
/// `NodeId`s of live nodes are never invalidated by unrelated mutations.
///
/// This is the storage substrate for both whole documents and fragments of
/// documents: a *fragment* is simply a `Tree` whose leaves may include
/// [`NodeKind::Virtual`] nodes pointing at sub-fragments (paper, Section 2.1).
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    labels: LabelTable,
    root: NodeId,
    live_count: usize,
}

impl Tree {
    /// Creates a tree with a single root element labelled `root_label`.
    pub fn new(root_label: &str) -> Self {
        let mut labels = LabelTable::new();
        let lid = labels.intern(root_label);
        let root = Node::new(lid, NodeKind::Element);
        Tree {
            nodes: vec![root],
            labels,
            root: NodeId(0),
            live_count: 1,
        }
    }

    /// Parses an XML document string. See [`crate::parse_str`].
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        crate::parse_str(input, &crate::ParseOptions::default())
    }

    /// Serializes the tree back to XML. See [`crate::write_tree`].
    pub fn to_xml(&self) -> String {
        crate::write_tree(self, &crate::WriteOptions::default())
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    /// Panics (in debug builds) if `id` refers to a removed node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        let n = &self.nodes[id.index()];
        debug_assert!(n.live, "access to removed node {id}");
        n
    }

    /// Mutable access to a node.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let n = &mut self.nodes[id.index()];
        debug_assert!(n.live, "access to removed node {id}");
        n
    }

    /// True if `id` names a live node of this tree.
    #[inline]
    pub fn is_live(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).map(|n| n.live).unwrap_or(false)
    }

    /// The label table of this tree.
    #[inline]
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Interns a label in this tree's table.
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        self.labels.intern(name)
    }

    /// The tag name of a node as a string.
    #[inline]
    pub fn label_str(&self, id: NodeId) -> &str {
        self.labels.resolve(self.node(id).label)
    }

    /// Number of live nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True when only tomb-stones remain (cannot normally happen: the root
    /// is never removable).
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Size of the backing arena (≥ [`Self::len`]; tomb-stones included).
    /// Useful for sizing side tables indexed by [`NodeId::index`].
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Appends a new element child to `parent` and returns its id.
    pub fn add_child(&mut self, parent: NodeId, label: &str) -> NodeId {
        let lid = self.labels.intern(label);
        self.push_node(parent, Node::new(lid, NodeKind::Element))
    }

    /// Appends a new element child with text content.
    pub fn add_text_child(&mut self, parent: NodeId, label: &str, text: &str) -> NodeId {
        let id = self.add_child(parent, label);
        self.node_mut(id).text = Some(text.into());
        id
    }

    /// Appends a virtual child pointing at sub-fragment `frag`.
    pub fn add_virtual_child(&mut self, parent: NodeId, frag: FragmentId) -> NodeId {
        let lid = self.labels.intern(crate::writer::VIRTUAL_TAG);
        self.push_node(parent, Node::new(lid, NodeKind::Virtual(frag)))
    }

    /// Inserts a new element child of `parent` at position `pos` among its
    /// children (clamped to the end).
    pub fn insert_child(&mut self, parent: NodeId, pos: usize, label: &str) -> NodeId {
        let lid = self.labels.intern(label);
        let id = self.alloc(Node::new(lid, NodeKind::Element));
        self.nodes[id.index()].parent = Some(parent);
        let kids = &mut self.nodes[parent.index()].children;
        let pos = pos.min(kids.len());
        kids.insert(pos, id);
        id
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.live_count += 1;
        id
    }

    fn push_node(&mut self, parent: NodeId, mut node: Node) -> NodeId {
        debug_assert!(self.is_live(parent));
        node.parent = Some(parent);
        let id = self.alloc(node);
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Sets the text content of a node.
    pub fn set_text(&mut self, id: NodeId, text: &str) {
        self.node_mut(id).text = Some(text.into());
    }

    /// Adds an attribute to a node.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        let node = self.node_mut(id);
        if let Some(slot) = node.attrs.iter_mut().find(|(n, _)| n.as_ref() == name) {
            slot.1 = value.into();
        } else {
            node.attrs.push((name.into(), value.into()));
        }
    }

    /// Children of `id` in document order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(id).children.iter().copied()
    }

    /// Proper ancestors of `id`, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors::new(self, id)
    }

    /// `id` and all its descendants, preorder (document order).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants::new(self, id)
    }

    /// `id` and all its descendants, postorder (children before parents) —
    /// the traversal order of the paper's `bottomUp` procedure.
    pub fn postorder(&self, id: NodeId) -> Postorder<'_> {
        Postorder::new(self, id)
    }

    /// Number of nodes in the subtree rooted at `id` (inclusive).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants(id).count()
    }

    /// Ids of all virtual nodes in the subtree rooted at `id`, in document
    /// order, together with the fragments they reference.
    pub fn virtual_nodes(&self, id: NodeId) -> Vec<(NodeId, FragmentId)> {
        self.descendants(id)
            .filter_map(|n| self.node(n).kind.fragment().map(|f| (n, f)))
            .collect()
    }

    /// Removes the subtree rooted at `id` from the tree (the paper's
    /// `delNode`). The root cannot be removed.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<(), XmlError> {
        if !self.is_live(id) {
            return Err(XmlError::StaleNode);
        }
        if id == self.root {
            return Err(XmlError::RootNotAllowed);
        }
        let parent = self.nodes[id.index()].parent.expect("non-root has parent");
        let kids = &mut self.nodes[parent.index()].children;
        let pos = kids
            .iter()
            .position(|&c| c == id)
            .expect("child listed in parent");
        kids.remove(pos);
        // Tomb-stone the whole subtree.
        let ids: Vec<NodeId> = self.descendants(id).collect();
        for nid in ids {
            self.nodes[nid.index()].live = false;
            self.nodes[nid.index()].children.clear();
            self.live_count -= 1;
        }
        Ok(())
    }

    /// Extracts the subtree rooted at `at` into a new `Tree`, replacing it
    /// in `self` with a virtual node referencing `frag`. This is the tree
    /// half of the paper's `splitFragments(v)` (Section 5).
    pub fn split_off(&mut self, at: NodeId, frag: FragmentId) -> Result<Tree, XmlError> {
        if !self.is_live(at) {
            return Err(XmlError::StaleNode);
        }
        if at == self.root {
            return Err(XmlError::RootNotAllowed);
        }
        let extracted = self.extract_subtree(at);
        let parent = self.nodes[at.index()].parent.expect("non-root has parent");
        let pos = self.nodes[parent.index()]
            .children
            .iter()
            .position(|&c| c == at)
            .expect("child listed in parent");
        // Tomb-stone the original subtree nodes.
        let ids: Vec<NodeId> = self.descendants(at).collect();
        for nid in ids {
            self.nodes[nid.index()].live = false;
            self.nodes[nid.index()].children.clear();
            self.live_count -= 1;
        }
        // Replace with a virtual node at the same position.
        let lid = self.labels.intern(crate::writer::VIRTUAL_TAG);
        let mut vn = Node::new(lid, NodeKind::Virtual(frag));
        vn.parent = Some(parent);
        let vid = self.alloc(vn);
        self.nodes[parent.index()].children[pos] = vid;
        Ok(extracted)
    }

    /// Deep-copies the subtree rooted at `at` into a fresh tree (labels
    /// re-interned). Does not modify `self`.
    pub fn extract_subtree(&self, at: NodeId) -> Tree {
        let mut out = Tree::new(self.label_str(at));
        let root = out.root();
        out.node_mut(root).text = self.node(at).text.clone();
        out.node_mut(root).attrs = self.node(at).attrs.clone();
        out.node_mut(root).kind = self.node(at).kind;
        self.copy_children_into(at, &mut out, root);
        out
    }

    fn copy_children_into(&self, from: NodeId, out: &mut Tree, to: NodeId) {
        // Iterative copy: depth is bounded only by memory. Sibling order is
        // preserved because children are appended while visiting their
        // parent pair, in document order; the stack order of *pairs* only
        // affects when grandchildren get filled in.
        let mut stack: Vec<(NodeId, NodeId)> = vec![(from, to)];
        while let Some((src_parent, dst_parent)) = stack.pop() {
            for &child in self.node(src_parent).child_ids() {
                let src = self.node(child);
                let lid = out.labels.intern(self.labels.resolve(src.label));
                let mut n = Node::new(lid, src.kind);
                n.text = src.text.clone();
                n.attrs = src.attrs.clone();
                let nid = out.push_node(dst_parent, n);
                stack.push((child, nid));
            }
        }
    }

    /// Appends a deep copy of `sub` (root included) as the last child of
    /// `parent`. Labels are re-interned. Returns the id of the copied
    /// root.
    pub fn append_tree(&mut self, parent: NodeId, sub: &Tree) -> NodeId {
        let sroot = sub.root();
        let lid = self.labels.intern(sub.label_str(sroot));
        let mut n = Node::new(lid, sub.node(sroot).kind);
        n.text = sub.node(sroot).text.clone();
        n.attrs = sub.node(sroot).attrs.clone();
        let nid = self.push_node(parent, n);
        sub.copy_children_into(sroot, self, nid);
        nid
    }

    /// Grafts `sub` into this tree at the virtual node `at`, which must
    /// reference a fragment: the virtual node is replaced by a deep copy of
    /// `sub`'s root and subtree. This is the tree half of the paper's
    /// `mergeFragments(v)`. Returns the id of the grafted root.
    pub fn graft(&mut self, at: NodeId, sub: &Tree) -> Result<NodeId, XmlError> {
        if !self.is_live(at) {
            return Err(XmlError::StaleNode);
        }
        debug_assert!(
            self.node(at).kind.is_virtual(),
            "graft target must be a virtual node"
        );
        let parent = self.nodes[at.index()]
            .parent
            .ok_or(XmlError::RootNotAllowed)?;
        let pos = self.nodes[parent.index()]
            .children
            .iter()
            .position(|&c| c == at)
            .expect("child listed in parent");
        // Copy sub's root.
        let sroot = sub.root();
        let lid = self.labels.intern(sub.label_str(sroot));
        let mut n = Node::new(lid, sub.node(sroot).kind);
        n.text = sub.node(sroot).text.clone();
        n.attrs = sub.node(sroot).attrs.clone();
        n.parent = Some(parent);
        let nid = self.alloc(n);
        self.nodes[parent.index()].children[pos] = nid;
        sub.copy_children_into(sroot, self, nid);
        // Tomb-stone the virtual node.
        self.nodes[at.index()].live = false;
        self.live_count -= 1;
        Ok(nid)
    }

    /// Structural equality: same labels, kinds, text, attributes and child
    /// structure (node ids may differ).
    pub fn structural_eq(&self, other: &Tree) -> bool {
        fn eq_at(a: &Tree, an: NodeId, b: &Tree, bn: NodeId) -> bool {
            let na = a.node(an);
            let nb = b.node(bn);
            if a.labels.resolve(na.label) != b.labels.resolve(nb.label)
                || na.kind != nb.kind
                || na.text != nb.text
                || na.attrs != nb.attrs
                || na.children.len() != nb.children.len()
            {
                return false;
            }
            na.children
                .iter()
                .zip(nb.children.iter())
                .all(|(&ca, &cb)| eq_at(a, ca, b, cb))
        }
        eq_at(self, self.root, other, other.root)
    }

    /// Approximate serialized size in bytes of the subtree rooted at `id`.
    /// Used by the network simulator to cost data shipping (the
    /// `NaiveCentralized` baseline ships fragments wholesale).
    pub fn byte_size(&self, id: NodeId) -> usize {
        self.descendants(id).map(|n| self.node_byte_size(n)).sum()
    }

    /// Approximate serialized size of a single node (its own tags, text
    /// and attributes, children excluded) — the per-node summand of
    /// [`Tree::byte_size`], exposed so statistics can be maintained in
    /// `O(1)` under single-node data updates.
    pub fn node_byte_size(&self, id: NodeId) -> usize {
        let node = self.node(id);
        // "<tag>" + "</tag>" + text + attributes.
        let tag = self.labels.resolve(node.label).len();
        let attrs: usize = node.attrs.iter().map(|(k, v)| k.len() + v.len() + 4).sum();
        2 * tag + 5 + attrs + node.text.as_deref().map_or(0, str::len)
    }

    /// Verifies arena invariants (parent/child symmetry, liveness, single
    /// root, acyclicity). Intended for tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if !self.is_live(self.root) {
            return Err("root is not live".into());
        }
        if self.node(self.root).parent.is_some() {
            return Err("root has a parent".into());
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                return Err(format!("cycle or shared node at {id}"));
            }
            seen[id.index()] = true;
            count += 1;
            let n = &self.nodes[id.index()];
            if !n.live {
                return Err(format!("reachable node {id} is tomb-stoned"));
            }
            for &c in &n.children {
                if self.nodes[c.index()].parent != Some(id) {
                    return Err(format!("child {c} of {id} has wrong parent link"));
                }
                stack.push(c);
            }
        }
        if count != self.live_count {
            return Err(format!(
                "live_count {} != reachable {}",
                self.live_count, count
            ));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.live && !seen[i] {
                return Err(format!("live node n{i} unreachable from root"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // <a><b>one</b><c><d/></c></a>
        let mut t = Tree::new("a");
        let r = t.root();
        t.add_text_child(r, "b", "one");
        let c = t.add_child(r, "c");
        t.add_child(c, "d");
        t
    }

    #[test]
    fn build_and_navigate() {
        let t = sample();
        let r = t.root();
        assert_eq!(t.label_str(r), "a");
        assert_eq!(t.len(), 4);
        let kids: Vec<_> = t.children(r).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.label_str(kids[0]), "b");
        assert_eq!(t.node(kids[0]).text.as_deref(), Some("one"));
        let d = t.children(kids[1]).next().unwrap();
        assert_eq!(t.label_str(d), "d");
        assert_eq!(t.node(d).parent(), Some(kids[1]));
        t.validate().unwrap();
    }

    #[test]
    fn insert_child_positions() {
        let mut t = Tree::new("r");
        let r = t.root();
        t.add_child(r, "x");
        t.add_child(r, "z");
        t.insert_child(r, 1, "y");
        let names: Vec<_> = t.children(r).map(|c| t.label_str(c).to_string()).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
        // Position past the end clamps.
        t.insert_child(r, 99, "w");
        let names: Vec<_> = t.children(r).map(|c| t.label_str(c).to_string()).collect();
        assert_eq!(names, vec!["x", "y", "z", "w"]);
        t.validate().unwrap();
    }

    #[test]
    fn remove_subtree_tombstones() {
        let mut t = sample();
        let r = t.root();
        let c = t.children(r).nth(1).unwrap();
        t.remove_subtree(c).unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.is_live(c));
        assert_eq!(t.children(r).count(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn remove_root_is_rejected() {
        let mut t = sample();
        let r = t.root();
        assert_eq!(t.remove_subtree(r), Err(XmlError::RootNotAllowed));
    }

    #[test]
    fn remove_twice_is_stale() {
        let mut t = sample();
        let r = t.root();
        let b = t.children(r).next().unwrap();
        t.remove_subtree(b).unwrap();
        assert_eq!(t.remove_subtree(b), Err(XmlError::StaleNode));
    }

    #[test]
    fn split_off_replaces_with_virtual_node() {
        let mut t = sample();
        let r = t.root();
        let c = t.children(r).nth(1).unwrap();
        let sub = t.split_off(c, FragmentId(7)).unwrap();
        // Extracted fragment is <c><d/></c>.
        assert_eq!(sub.label_str(sub.root()), "c");
        assert_eq!(sub.len(), 2);
        // Original now has a virtual node in c's position.
        let kids: Vec<_> = t.children(r).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.node(kids[1]).kind, NodeKind::Virtual(FragmentId(7)));
        t.validate().unwrap();
        sub.validate().unwrap();
    }

    #[test]
    fn graft_restores_split() {
        let mut t = sample();
        let before = t.clone();
        let r = t.root();
        let c = t.children(r).nth(1).unwrap();
        let sub = t.split_off(c, FragmentId(1)).unwrap();
        let v = t
            .virtual_nodes(t.root())
            .into_iter()
            .find(|&(_, f)| f == FragmentId(1))
            .unwrap()
            .0;
        t.graft(v, &sub).unwrap();
        assert!(t.structural_eq(&before));
        t.validate().unwrap();
    }

    #[test]
    fn structural_eq_detects_differences() {
        let a = sample();
        let mut b = sample();
        assert!(a.structural_eq(&b));
        let r = b.root();
        b.add_child(r, "extra");
        assert!(!a.structural_eq(&b));
    }

    #[test]
    fn extract_subtree_is_nondestructive() {
        let t = sample();
        let r = t.root();
        let c = t.children(r).nth(1).unwrap();
        let sub = t.extract_subtree(c);
        assert_eq!(sub.len(), 2);
        assert_eq!(t.len(), 4); // unchanged
        sub.validate().unwrap();
    }

    #[test]
    fn byte_size_grows_with_content() {
        let mut t = Tree::new("r");
        let base = t.byte_size(t.root());
        let r = t.root();
        t.add_text_child(r, "item", "payload-payload");
        assert!(t.byte_size(t.root()) > base + 10);
    }

    #[test]
    fn set_attr_overwrites_existing() {
        let mut t = Tree::new("r");
        let r = t.root();
        t.set_attr(r, "k", "1");
        t.set_attr(r, "k", "2");
        assert_eq!(t.node(r).attr("k"), Some("2"));
        assert_eq!(t.node(r).attrs.len(), 1);
    }

    #[test]
    fn append_tree_copies_whole_subtree() {
        let mut host = Tree::new("host");
        let sub = sample();
        let r = host.root();
        let at = host.append_tree(r, &sub);
        assert_eq!(host.label_str(at), "a");
        assert_eq!(host.subtree_size(at), 4);
        assert_eq!(host.len(), 5);
        // Source unchanged; host valid.
        assert_eq!(sub.len(), 4);
        host.validate().unwrap();
    }

    #[test]
    fn virtual_nodes_are_listed_in_document_order() {
        let mut t = Tree::new("r");
        let r = t.root();
        t.add_virtual_child(r, FragmentId(2));
        let m = t.add_child(r, "mid");
        t.add_virtual_child(m, FragmentId(5));
        let vs = t.virtual_nodes(t.root());
        let frags: Vec<_> = vs.iter().map(|&(_, f)| f).collect();
        assert_eq!(frags, vec![FragmentId(2), FragmentId(5)]);
    }

    #[test]
    fn subtree_size_counts_inclusive() {
        let t = sample();
        assert_eq!(t.subtree_size(t.root()), 4);
        let c = t.children(t.root()).nth(1).unwrap();
        assert_eq!(t.subtree_size(c), 2);
    }
}

//! A small fixed-width bitset used by the centralized evaluator.
//!
//! The evaluator keeps three Boolean vectors of width `|QList|` per live
//! traversal frame; packing them into `u64` words makes the per-node
//! child-accumulation (`CV |= V_w`, `DV |= DV_w`) a handful of word ORs.

/// Fixed-width bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// All-zero set of `width` bits.
    pub fn zeros(width: usize) -> BitSet {
        BitSet {
            words: vec![0; width.div_ceil(64)],
        }
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// `self |= other` (widths must match).
    #[inline]
    pub fn or_assign(&mut self, other: &BitSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Clears all bits (for frame reuse).
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::zeros(130);
        assert!(!b.get(0));
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        b.set(64, false);
        assert!(!b.get(64));
    }

    #[test]
    fn or_assign_unions() {
        let mut a = BitSet::zeros(70);
        let mut b = BitSet::zeros(70);
        a.set(3, true);
        b.set(69, true);
        a.or_assign(&b);
        assert!(a.get(3) && a.get(69));
    }

    #[test]
    fn clear_resets() {
        let mut a = BitSet::zeros(10);
        a.set(7, true);
        a.clear();
        assert!(!a.get(7));
    }
}

//! Regenerates the **Section 5** incremental-maintenance study:
//! maintenance cost vs full re-evaluation for irrelevant updates,
//! answer-flipping updates, and fragmentation changes.

use parbox_bench::experiments::sec5_incremental;
use parbox_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = sec5_incremental(scale, 6);
    println!(
        "## Section 5 — incremental view maintenance (corpus {} bytes)",
        scale.corpus_bytes
    );
    println!(
        "{:<24} {:>14} {:>12} {:>12} {:>12} {:>8}",
        "scenario", "incr (s)", "reeval (s)", "incr bytes", "reeval B", "sites"
    );
    for r in rows {
        println!(
            "{:<24} {:>14.6} {:>12.6} {:>12} {:>12} {:>8}",
            r.scenario,
            r.incremental_s,
            r.reeval_s,
            r.incremental_bytes,
            r.reeval_bytes,
            r.sites_visited
        );
    }
}

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # parbox
//!
//! Umbrella crate for the ParBoX system: **partial evaluation for
//! distributed Boolean XPath query evaluation**, a reproduction of
//! Buneman, Cong, Fan and Kementsietsidis, *Using Partial Evaluation in
//! Distributed Query Evaluation*, VLDB 2006.
//!
//! This crate re-exports the public API of the workspace crates:
//!
//! * [`xml`] — arena XML tree store with virtual (fragment-pointer) nodes.
//! * [`query`] — the XBL Boolean XPath language: parser, normalization,
//!   [`query::CompiledQuery`] (the paper's `QList`).
//! * [`boolean`] — Boolean formulas with free variables and the equation
//!   system solver used to compose partial answers.
//! * [`frag`] — tree fragmentation: fragments, fragment tree, source tree,
//!   split/merge operations.
//! * [`net`] — the simulated distributed substrate: sites, messages,
//!   network cost model, parallel per-site execution.
//! * [`core`] — the algorithms: centralized baseline, `NaiveCentralized`,
//!   `NaiveDistributed`, **ParBoX** and its variants, the cost-based
//!   planner ([`core::plan`]) that picks among them per query, and
//!   incremental view maintenance.
//! * [`xmark`] — XMark-style synthetic workload and query generators.
//!
//! ## Quickstart
//!
//! ```
//! use parbox::prelude::*;
//!
//! // A whole document…
//! let tree = Tree::parse(
//!     "<portfolio><broker><name>Bache</name>\
//!      <stock><code>GOOG</code><sell>376</sell></stock></broker></portfolio>",
//! )
//! .unwrap();
//!
//! // …fragmented over three sites…
//! let mut forest = Forest::from_tree(tree);
//! let root_frag = forest.root_fragment();
//! let broker = forest.fragment(root_frag).tree.children(
//!     forest.fragment(root_frag).tree.root()).next().unwrap();
//! forest.split(root_frag, broker).unwrap();
//! let placement = Placement::round_robin(&forest, 2);
//!
//! // …queried with a Boolean XPath query evaluated by partial evaluation.
//! let q = parse_query("[//stock[code/text() = \"GOOG\" and sell/text() = \"376\"]]").unwrap();
//! let compiled = compile(&q);
//! let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
//! let outcome = parbox(&cluster, &compiled);
//! assert!(outcome.answer);
//! // Each site is visited exactly once (the paper's headline guarantee):
//! assert!(outcome.report.sites().all(|(_, s)| s.visits <= 1));
//! ```

// The architecture guide is authored as docs/ARCHITECTURE.md and also
// compiled into rustdoc here, so `cargo doc` (with broken-intra-doc-link
// warnings denied) verifies that every module path the guide names
// resolves — the guide cannot silently rot as the code moves.
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub mod architecture {}

pub use parbox_bool as boolean;
pub use parbox_core as core;
pub use parbox_frag as frag;
pub use parbox_net as net;
pub use parbox_query as query;
pub use parbox_xmark as xmark;
pub use parbox_xml as xml;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    #[allow(deprecated)] // the expA-era hybrid shim stays in the prelude
    pub use parbox_core::hybrid_parbox;
    pub use parbox_core::{
        centralized_eval, count_distributed, full_dist_parbox, lazy_parbox, naive_centralized,
        naive_distributed, parbox, plan_run, run_batch, select_distributed, sum_distributed,
        BatchOutcome, Completeness, CostEstimate, Engine, EngineConfig, EvalOutcome,
        MaterializedView, PlanContext, Planner, QueryOutcome, RoundOutcome, Update,
    };
    pub use parbox_frag::{Forest, Placement, SourceTree};
    pub use parbox_net::{Cluster, NetworkModel, SiteId};
    pub use parbox_net::{FaultKind, FaultPlan, FaultRates, SupervisorConfig};
    pub use parbox_query::compile_selection;
    pub use parbox_query::{compile, compile_batch, parse_query, CompiledQuery, Query, QueryBatch};
    pub use parbox_xml::{FragmentId, NodeId, Tree};
}

//! Regenerates **Fig. 8**: ParBoX scalability in query size
//! (|QList| ∈ {2, 8, 15, 23}), 1→10 machines, constant corpus.

use parbox_bench::experiments::experiment1_fig8;
use parbox_bench::{print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = experiment1_fig8(scale, 10);
    print_table(
        &format!(
            "Fig. 8 — scalability in query size (corpus {} bytes)",
            scale.corpus_bytes
        ),
        "machines",
        &rows,
    );
}

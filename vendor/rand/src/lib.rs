//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate (0.9 API
//! names), covering the subset this workspace uses: a deterministic
//! seedable generator ([`rngs::StdRng`]) and the [`Rng`] convenience
//! methods `random_range` / `random_bool`.
//!
//! The container this workspace builds in has no crates.io access, so
//! external dependencies are vendored as API-compatible subsets (see
//! `vendor/README.md`). Everything here is deterministic per seed — which
//! is exactly what the workload generators and tests require — but makes
//! no statistical-quality claims beyond "good enough to exercise code
//! paths" (the core is xoshiro256++ seeded via SplitMix64).

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can serve as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen to i128 so full-width ranges (e.g. i64::MIN..i64::MAX)
                // cannot overflow the span arithmetic.
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`. Panics on empty ranges.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++ core, SplitMix64
    /// seed expansion). Stands in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            // One warm-up round so the first draws of adjacent seeds
            // (common in test code: seed, seed + 1) decorrelate better.
            splitmix64(&mut sm);
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let stream_a: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let stream_c: Vec<u64> = (0..8).map(|_| c.random_range(0u64..u64::MAX)).collect();
        assert_ne!(stream_a, stream_c);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(30..400);
            assert!((30..400).contains(&v));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}

//! Recursive-descent parser for the XBL concrete syntax.
//!
//! Grammar (precedence low→high: `or`, `and`, `not`):
//!
//! ```text
//! query   := '[' or ']' | or          -- outer brackets optional
//! or      := and ( 'or' and )*
//! and     := unary ( 'and' unary )*
//! unary   := 'not' unary | primary
//! primary := '(' or ')'
//!          | 'label()' '=' (name | string)
//!          | 'text()' '=' string                      -- ε path
//!          | path ( '=' string )?                     -- trailing text eq
//! path    := ('//' | '/')? step ( ('/' | '//') step )*
//! step    := (name | '*' | '.' | 'text()') ('[' or ']')*
//! ```
//!
//! A trailing `= "str"` after a path is sugar for `path/text() = "str"`,
//! matching the paper's `[/portofolio/broker/name = "Merill Lynch"]`.

use crate::ast::{Path, Query, Step};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use std::fmt;

/// Parse error for XBL queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            at: e.at,
        }
    }
}

/// Parses an XBL query from its concrete syntax.
///
/// ```
/// use parbox_query::parse_query;
/// let q = parse_query("[//stock[code/text() = \"GOOG\"] and not(//error)]").unwrap();
/// assert!(q.size() > 4);
/// ```
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let bracketed = p.eat(&TokenKind::LBracket);
    let q = p.parse_or()?;
    if bracketed {
        p.expect(TokenKind::RBracket)?;
    }
    p.expect(TokenKind::Eof)?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at(&self) -> usize {
        self.tokens[self.pos].at
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected {kind}, found {}", self.peek()),
                at: self.at(),
            })
        }
    }

    fn parse_or(&mut self) -> Result<Query, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Query, ParseError> {
        let mut left = self.parse_unary()?;
        while self.eat(&TokenKind::And) {
            let right = self.parse_unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Query, ParseError> {
        if self.eat(&TokenKind::Not) {
            // Allow both `not(q)` and `not q`; `(q)` parses as primary.
            let inner = self.parse_unary()?;
            return Ok(inner.not());
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Query, ParseError> {
        match self.peek() {
            TokenKind::LParen => {
                self.bump();
                let q = self.parse_or()?;
                self.expect(TokenKind::RParen)?;
                Ok(q)
            }
            TokenKind::LabelFn => {
                self.bump();
                self.expect(TokenKind::Eq)?;
                match self.bump() {
                    TokenKind::Name(n) => Ok(Query::LabelEq(n)),
                    TokenKind::Str(s) => Ok(Query::LabelEq(s)),
                    other => Err(ParseError {
                        message: format!("expected a label after 'label() =', found {other}"),
                        at: self.at(),
                    }),
                }
            }
            TokenKind::TextFn => {
                self.bump();
                self.expect(TokenKind::Eq)?;
                let s = self.expect_string()?;
                Ok(Query::TextEq(Path::empty(), s))
            }
            _ => self.parse_path_query(),
        }
    }

    fn expect_string(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Str(s) => Ok(s),
            other => Err(ParseError {
                message: format!("expected a string literal, found {other}"),
                at: self.at(),
            }),
        }
    }

    /// Parses a path and optional trailing text comparison.
    fn parse_path_query(&mut self) -> Result<Query, ParseError> {
        let (path, text_fn) = self.parse_path()?;
        if text_fn {
            // `p/text()` must be compared.
            self.expect(TokenKind::Eq)?;
            let s = self.expect_string()?;
            return Ok(Query::TextEq(path, s));
        }
        if self.eat(&TokenKind::Eq) {
            let s = self.expect_string()?;
            return Ok(Query::TextEq(path, s));
        }
        Ok(Query::Path(path))
    }

    /// Parses a path. Returns `(path, true)` when the path ended with a
    /// `text()` pseudo-step (which demands a comparison).
    fn parse_path(&mut self) -> Result<(Path, bool), ParseError> {
        let mut steps: Vec<Step> = Vec::new();

        // Leading axis. `//` is descendant-or-self. A leading `/` anchors
        // the path at the document root: `/portofolio/broker` requires the
        // root *element* to be labelled `portofolio` (absolute-path XPath
        // semantics), so the first label step becomes a self test.
        let mut rooted = false;
        if self.eat(&TokenKind::DoubleSlash) {
            steps.push(Step::DescOrSelf);
        } else if self.eat(&TokenKind::Slash) {
            rooted = true;
        }

        let mut first = true;
        loop {
            match self.peek().clone() {
                TokenKind::Name(n) => {
                    self.bump();
                    if rooted && first {
                        steps.push(Step::SelfStep);
                        steps.push(Step::Qualifier(Box::new(Query::LabelEq(n))));
                    } else {
                        steps.push(Step::Label(n));
                    }
                }
                TokenKind::Star => {
                    self.bump();
                    steps.push(Step::Wildcard);
                }
                TokenKind::Dot => {
                    self.bump();
                    steps.push(Step::SelfStep);
                }
                TokenKind::TextFn => {
                    self.bump();
                    return Ok((Path { steps }, true));
                }
                other => {
                    return Err(ParseError {
                        message: format!("expected a path step, found {other}"),
                        at: self.at(),
                    })
                }
            }
            first = false;
            // Qualifiers attach to the step just parsed.
            while self.peek() == &TokenKind::LBracket {
                self.bump();
                let q = self.parse_or()?;
                self.expect(TokenKind::RBracket)?;
                steps.push(Step::Qualifier(Box::new(q)));
            }
            // Separator or end of path.
            if self.eat(&TokenKind::DoubleSlash) {
                steps.push(Step::DescOrSelf);
            } else if !self.eat(&TokenKind::Slash) {
                break;
            }
        }
        Ok((Path { steps }, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Query, Step};

    #[test]
    fn parses_simple_descendant() {
        let q = parse_query("[//A]").unwrap();
        match q {
            Query::Path(p) => {
                assert_eq!(p.steps, vec![Step::DescOrSelf, Step::Label("A".into())]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn outer_brackets_are_optional() {
        assert_eq!(parse_query("//A").unwrap(), parse_query("[//A]").unwrap());
    }

    #[test]
    fn parses_paper_intro_query() {
        // Q = [//A ∧ //B]
        let q = parse_query("[//A ∧ //B]").unwrap();
        assert!(matches!(q, Query::And(_, _)));
    }

    #[test]
    fn parses_paper_stock_query() {
        let q = parse_query("[//stock[code/text() = \"GOOG\" and sell/text() = \"376\"]]").unwrap();
        let Query::Path(p) = q else {
            panic!("expected path")
        };
        assert!(matches!(p.steps.last(), Some(Step::Qualifier(_))));
    }

    #[test]
    fn parses_paper_broker_query() {
        // [//broker[//stock/code/text()="goog" ∧ ¬(//stock/code/text()="yhoo")]]
        let q = parse_query(
            "[//broker[//stock/code/text() = \"goog\" ∧ ¬(//stock/code/text() = \"yhoo\")]]",
        )
        .unwrap();
        assert!(q.size() > 8);
    }

    #[test]
    fn trailing_eq_is_text_sugar() {
        let a = parse_query("[/portofolio/broker/name = \"Merill Lynch\"]").unwrap();
        let b = parse_query("[/portofolio/broker/name/text() = \"Merill Lynch\"]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bare_text_comparison() {
        let q = parse_query("[text() = \"x\"]").unwrap();
        assert_eq!(q, Query::TextEq(crate::ast::Path::empty(), "x".into()));
    }

    #[test]
    fn label_comparison_forms() {
        assert_eq!(
            parse_query("[label() = stock]").unwrap(),
            Query::LabelEq("stock".into())
        );
        assert_eq!(
            parse_query("[label() = \"stock\"]").unwrap(),
            Query::LabelEq("stock".into())
        );
    }

    #[test]
    fn precedence_or_lower_than_and() {
        let q = parse_query("[//a or //b and //c]").unwrap();
        // Must parse as a or (b and c).
        let Query::Or(_, rhs) = q else {
            panic!("expected Or at top")
        };
        assert!(matches!(*rhs, Query::And(_, _)));
    }

    #[test]
    fn double_slash_inside_path() {
        let q = parse_query("[a//b]").unwrap();
        let Query::Path(p) = q else { panic!() };
        assert_eq!(
            p.steps,
            vec![
                Step::Label("a".into()),
                Step::DescOrSelf,
                Step::Label("b".into())
            ]
        );
    }

    #[test]
    fn wildcard_and_dot_steps() {
        let q = parse_query("[*/./x]").unwrap();
        let Query::Path(p) = q else { panic!() };
        assert_eq!(
            p.steps,
            vec![Step::Wildcard, Step::SelfStep, Step::Label("x".into())]
        );
    }

    #[test]
    fn multiple_qualifiers_stack() {
        let q = parse_query("[a[//b][//c]]").unwrap();
        let Query::Path(p) = q else { panic!() };
        assert_eq!(p.steps.len(), 3);
        assert!(matches!(p.steps[1], Step::Qualifier(_)));
        assert!(matches!(p.steps[2], Step::Qualifier(_)));
    }

    #[test]
    fn not_without_parens() {
        let q = parse_query("[not //a]").unwrap();
        assert!(matches!(q, Query::Not(_)));
    }

    #[test]
    fn reports_errors_with_position() {
        let err = parse_query("[//a or ]").unwrap_err();
        assert!(err.message.contains("expected a path step"));
        let err = parse_query("[label() = ]").unwrap_err();
        assert!(err.message.contains("label"));
        let err = parse_query("[//a").unwrap_err();
        assert!(err.message.contains("']'"));
    }

    #[test]
    fn display_parse_round_trip() {
        for src in [
            "[//stock[code/text() = \"GOOG\"]]",
            "[(//a and //b) or not(//c)]",
            "[label() = portfolio and //broker/name = \"Bache\"]",
        ] {
            let q = parse_query(src).unwrap();
            let printed = format!("[{q}]");
            let q2 = parse_query(&printed).unwrap();
            assert_eq!(q, q2, "round-trip failed for {src} -> {printed}");
        }
    }

    #[test]
    fn text_mid_path_requires_comparison() {
        assert!(parse_query("[a/text()]").is_err());
    }
}

//! Regenerates **Fig. 12**: ParBoX scalability in data size on the FT3
//! tree, |QList| ∈ {2, 8, 15, 23}.

use parbox_bench::experiments::experiment3_fig12;
use parbox_bench::{print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = experiment3_fig12(scale, 8);
    print_table(
        &format!(
            "Fig. 12 — scalability in data size (unit corpus {} bytes)",
            scale.corpus_bytes
        ),
        "total bytes",
        &rows,
    );
}

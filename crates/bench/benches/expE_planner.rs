//! Experiment E bench: the adaptive planner against fixed strategies on
//! two contrasting cells — the paper's LAN star (where ParBoX-style
//! rounds win) and a WAN star with a small corpus (where shipping can
//! win) — plus the planning step itself, which must stay microseconds.

// Named after the issue-tracker experiment id.
#![allow(non_snake_case)]

use criterion::{criterion_group, criterion_main, Criterion};
use parbox_bench::{ft1, Scale};
use parbox_core::plan::{plan_run, PlanContext, Planner};
use parbox_core::{naive_centralized, parbox};
use parbox_frag::ForestStats;
use parbox_net::{Cluster, NetworkModel};
use parbox_xmark::query_with_qlist;

fn bench_planner(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 64 * 1024,
        seed: 2006,
    };
    let (forest, placement) = ft1(scale, 8);
    let (_, q) = query_with_qlist(8, scale.seed);
    let stats = ForestStats::compute(&forest, &placement);

    let lan = Cluster::new(&forest, &placement, NetworkModel::lan());
    let wan = Cluster::new(&forest, &placement, NetworkModel::wan());

    // The decision alone: estimate all six strategies from statistics.
    c.bench_function("expE/choose_only", |b| {
        let planner = Planner::standard();
        let cx = PlanContext::new(&lan, &q, &stats);
        b.iter(|| planner.choose(&cx).summary.estimate.modeled_s)
    });

    c.bench_function("expE/adaptive_lan", |b| {
        b.iter(|| plan_run(&lan, &q).answer)
    });
    c.bench_function("expE/parbox_lan", |b| b.iter(|| parbox(&lan, &q).answer));
    c.bench_function("expE/naive_lan", |b| {
        b.iter(|| naive_centralized(&lan, &q).answer)
    });
    c.bench_function("expE/adaptive_wan", |b| {
        b.iter(|| plan_run(&wan, &q).answer)
    });
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);

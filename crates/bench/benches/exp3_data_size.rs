//! Criterion bench for Experiment 3 (Fig. 12): ParBoX over the FT3 tree
//! as the corpus grows, for small and large queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbox_bench::{ft3, Scale};
use parbox_core::parbox;
use parbox_net::{Cluster, NetworkModel};
use parbox_xmark::query_with_qlist;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 48 * 1024,
        seed: 2006,
    };
    let mut group = c.benchmark_group("exp3");
    group.sample_size(10);
    for growth_pct in [0usize, 50, 100] {
        let (forest, placement) = ft3(scale, growth_pct as f64 / 100.0);
        for qsize in [2usize, 23] {
            let (_, q) = query_with_qlist(qsize, scale.seed ^ qsize as u64);
            group.bench_with_input(
                BenchmarkId::new(format!("q{qsize}"), growth_pct),
                &growth_pct,
                |b, _| {
                    b.iter(|| {
                        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
                        black_box(parbox(&cluster, &q).answer)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Algorithm **ParBoX** (paper, Section 3.1, Fig. 3).
//!
//! Three stages:
//!
//! 1. the coordinating site identifies, from the source tree, every site
//!    holding at least one fragment and sends each the whole query;
//! 2. all sites — in parallel — partially evaluate the query over each of
//!    their fragments with `bottomUp`, producing `(V, CV, DV)` triplets of
//!    Boolean formulas, and send them back;
//! 3. the coordinator composes the partial answers by solving the
//!    resulting linear system of Boolean equations (`evalST`) in one
//!    bottom-up pass of the source tree.
//!
//! Guarantees (Section 3.2): each site is visited exactly once; total
//! network traffic is `O(|q| · card(F))`, independent of `|T|`; total
//! computation is `O(|q| (|T| + card(F)))`.

use crate::algorithms::{answer_from_resolved, query_wire_size, EvalOutcome};
use crate::eval::bottom_up;
use parbox_bool::{triplet_dag_wire_size, EquationSystem};
use parbox_net::{run_sites_parallel, Cluster, MessageKind, RunReport};
use parbox_query::CompiledQuery;
use parbox_xml::FragmentId;
use std::time::Instant;

/// Evaluates `q` over the cluster with the ParBoX algorithm.
pub fn parbox(cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
    let wall = Instant::now();
    let mut report = RunReport::new();
    let coord = cluster.coordinator();
    let sites = cluster.sites();
    let qsize = query_wire_size(q);

    // Stage 1: one visit per site; ship the query to the remote ones.
    for &s in &sites {
        report.record_visit(s);
        if s != coord {
            report.record_message(coord, s, qsize, MessageKind::Query);
        }
    }

    // Stage 2: parallel partial evaluation of every fragment.
    let runs = run_sites_parallel(&sites, |s| {
        cluster
            .fragments_at(s)
            .into_iter()
            .map(|f| (f, bottom_up(&cluster.forest.fragment(f).tree, q)))
            .collect::<Vec<(FragmentId, crate::eval::FragmentRun)>>()
    });

    let mut sys = EquationSystem::new();
    let mut remote_triplet_bytes: Vec<usize> = Vec::new();
    let mut max_compute = 0.0f64;
    for run in runs {
        report.record_compute(run.site, run.elapsed);
        max_compute = max_compute.max(run.elapsed.as_secs_f64());
        for (frag, frun) in run.output {
            report.record_work(run.site, frun.work_units);
            let bytes = triplet_dag_wire_size(&frun.triplet);
            if run.site != coord {
                report.record_message(run.site, coord, bytes, MessageKind::Triplet);
                remote_triplet_bytes.push(bytes);
            }
            sys.insert(frag, frun.triplet);
        }
    }

    // Stage 3: solve the Boolean equation system at the coordinator.
    let solve_start = Instant::now();
    let resolved = sys
        .solve(cluster.source_tree.postorder())
        .expect("triplets cover every fragment in bottom-up order");
    let solve_time = solve_start.elapsed();
    report.record_compute(coord, solve_time);
    // The system has O(|q| · card(F)) entries; count its resolution as one
    // work unit per entry (paper: linear-time solve).
    report.record_work(coord, (q.len() * cluster.forest.card()) as u64);

    let answer = answer_from_resolved(&resolved, cluster, q);

    // Modeled elapsed time: query broadcast ∥ → parallel compute → triplet
    // return over the coordinator's shared inbound link → solve.
    let model = &cluster.model;
    let broadcast = if sites.len() > 1 {
        model.transfer_time(qsize)
    } else {
        0.0
    };
    let collect = model.shared_link_time(remote_triplet_bytes.iter().copied());
    report.elapsed_model_s = broadcast + max_compute + collect + solve_time.as_secs_f64();
    report.elapsed_wall_s = wall.elapsed().as_secs_f64();

    EvalOutcome {
        answer,
        report,
        algorithm: "ParBoX",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::centralized::centralized_eval;
    use parbox_frag::{strategies, Forest, Placement};
    use parbox_net::NetworkModel;
    use parbox_query::{compile, parse_query};
    use parbox_xml::Tree;

    fn fig1_forest() -> Forest {
        // Paper Fig. 1(a): R{X{Z{A}}, Y{B}} with A only in Z, B only in Y.
        let tree = Tree::parse("<r><x><z><A/><A/></z><pad/></x><y><B/></y></r>").unwrap();
        let mut forest = Forest::from_tree(tree);
        let f0 = forest.root_fragment();
        let find = |forest: &Forest, frag, label: &str| {
            let t = &forest.fragment(frag).tree;
            t.descendants(t.root())
                .find(|&n| t.label_str(n) == label)
                .unwrap()
        };
        let x = find(&forest, f0, "x");
        let fx = forest.split(f0, x).unwrap();
        let z = find(&forest, fx, "z");
        forest.split(fx, z).unwrap();
        let y = find(&forest, f0, "y");
        forest.split(f0, y).unwrap();
        forest
    }

    #[test]
    fn intro_example_answer_true() {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//A and //B]").unwrap());
        let out = parbox(&cluster, &q);
        assert!(out.answer);
        assert_eq!(out.algorithm, "ParBoX");
    }

    #[test]
    fn each_site_visited_exactly_once() {
        let forest = fig1_forest();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//A and //B]").unwrap());
        let out = parbox(&cluster, &q);
        for (_, site) in out.report.sites() {
            assert_eq!(site.visits, 1);
        }
        assert_eq!(out.report.max_visits(), 1);
    }

    #[test]
    fn one_visit_even_with_many_fragments_per_site() {
        // All four fragments on a single remote-ish setup: 2 sites.
        let forest = fig1_forest();
        let placement = Placement::round_robin(&forest, 2);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//A and //B]").unwrap());
        let out = parbox(&cluster, &q);
        assert!(out.answer);
        assert_eq!(out.report.max_visits(), 1, "S2-style multi-fragment sites");
    }

    #[test]
    fn agrees_with_centralized_oracle() {
        let forest = fig1_forest();
        let whole = forest.reassemble();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for src in [
            "[//A]",
            "[//B and //pad]",
            "[//A and not //B]",
            "[//x/z]",
            "[//x[z/A]]",
            "[//z/A and //y/B]",
            "[not(//nothing)]",
            "[*/*]",
        ] {
            let q = compile(&parse_query(src).unwrap());
            let out = parbox(&cluster, &q);
            assert_eq!(out.answer, centralized_eval(&whole, &q), "query {src}");
        }
    }

    #[test]
    fn traffic_independent_of_data_size() {
        // Same fragmentation shape, 10× the data: triplet traffic must not
        // grow (it depends on |q| and card(F) only).
        let q = compile(&parse_query("[//A and //B]").unwrap());

        let small = fig1_forest();
        let placement = Placement::one_per_fragment(&small);
        let bytes_small = {
            let cluster = Cluster::new(&small, &placement, NetworkModel::lan());
            parbox(&cluster, &q).report.total_bytes()
        };

        let tree = {
            let mut xml = String::from("<r><x><z><A/>");
            for i in 0..200 {
                xml.push_str(&format!("<junk{}/>", i % 7));
            }
            xml.push_str("</z></x><y><B/>");
            for _ in 0..200 {
                xml.push_str("<more/>");
            }
            xml.push_str("</y></r>");
            Tree::parse(&xml).unwrap()
        };
        let mut big = Forest::from_tree(tree);
        let root = big.root_fragment();
        strategies::star(&mut big, root).unwrap();
        let placement = Placement::one_per_fragment(&big);
        let bytes_big = {
            let cluster = Cluster::new(&big, &placement, NetworkModel::lan());
            parbox(&cluster, &q).report.total_bytes()
        };
        // Allow the difference driven by card(F) (4 vs 3 fragments) but
        // not by the ~50× node count.
        assert!(
            bytes_big < bytes_small * 3,
            "traffic grew with data: {bytes_small} -> {bytes_big}"
        );
    }

    #[test]
    fn work_comparable_to_centralized() {
        let forest = fig1_forest();
        let whole = forest.reassemble();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//A and //B]").unwrap());
        let central = crate::eval::centralized_eval_counted(&whole, &q);
        let out = parbox(&cluster, &q);
        let eval_work: u64 = out.report.total_work();
        // Distributed total work = centralized + virtual nodes + solve term.
        let overhead = (3 * q.len() * cluster.forest.card()) as u64 + q.len() as u64 * 4;
        assert!(eval_work >= central.work_units);
        assert!(
            eval_work <= central.work_units + overhead,
            "work {eval_work} vs centralized {} + {overhead}",
            central.work_units
        );
    }

    #[test]
    fn single_fragment_degenerates_gracefully() {
        let tree = Tree::parse("<a><b/></a>").unwrap();
        let forest = Forest::from_tree(tree);
        let placement = Placement::single_site(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//b]").unwrap());
        let out = parbox(&cluster, &q);
        assert!(out.answer);
        assert_eq!(
            out.report.total_messages(),
            0,
            "no remote sites, no traffic"
        );
    }
}

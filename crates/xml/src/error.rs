//! Error type for XML parsing and tree manipulation.

use std::fmt;

/// Errors produced while parsing or manipulating XML trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended before the document was complete.
    UnexpectedEof {
        /// Byte offset at which the parser ran out of input.
        at: usize,
    },
    /// A character that is not allowed at this position.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// What the parser expected instead.
        expected: &'static str,
        /// Byte offset of the offending character.
        at: usize,
    },
    /// Closing tag does not match the currently open element.
    MismatchedTag {
        /// Name of the element that is open.
        open: String,
        /// Name found in the closing tag.
        close: String,
        /// Byte offset of the closing tag.
        at: usize,
    },
    /// Content found after the root element was closed.
    TrailingContent {
        /// Byte offset of the trailing content.
        at: usize,
    },
    /// The document contains no root element.
    NoRootElement,
    /// An unknown entity reference such as `&foo;`.
    UnknownEntity {
        /// The entity name without `&` and `;`.
        name: String,
        /// Byte offset of the reference.
        at: usize,
    },
    /// A virtual-node reference attribute was malformed.
    BadVirtualRef {
        /// The attribute value that failed to parse.
        value: String,
        /// Byte offset.
        at: usize,
    },
    /// A structural operation referenced a node that is not in the tree
    /// (e.g. it was previously removed).
    StaleNode,
    /// An operation that requires a non-root node was applied to the root.
    RootNotAllowed,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { at } => {
                write!(f, "unexpected end of input at byte {at}")
            }
            XmlError::UnexpectedChar {
                found,
                expected,
                at,
            } => {
                write!(
                    f,
                    "unexpected character {found:?} at byte {at}, expected {expected}"
                )
            }
            XmlError::MismatchedTag { open, close, at } => {
                write!(
                    f,
                    "mismatched closing tag </{close}> for <{open}> at byte {at}"
                )
            }
            XmlError::TrailingContent { at } => {
                write!(f, "trailing content after the root element at byte {at}")
            }
            XmlError::NoRootElement => write!(f, "document contains no root element"),
            XmlError::UnknownEntity { name, at } => {
                write!(f, "unknown entity reference &{name}; at byte {at}")
            }
            XmlError::BadVirtualRef { value, at } => {
                write!(f, "malformed virtual-node reference {value:?} at byte {at}")
            }
            XmlError::StaleNode => write!(f, "operation on a node that is no longer in the tree"),
            XmlError::RootNotAllowed => {
                write!(f, "operation cannot be applied to the root node")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_human_readable_messages() {
        let e = XmlError::UnexpectedChar {
            found: '<',
            expected: "a tag name",
            at: 3,
        };
        assert!(e.to_string().contains("byte 3"));
        assert!(e.to_string().contains("tag name"));
        let e = XmlError::MismatchedTag {
            open: "a".into(),
            close: "b".into(),
            at: 9,
        };
        assert!(e.to_string().contains("</b>"));
        assert!(e.to_string().contains("<a>"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(XmlError::NoRootElement, XmlError::NoRootElement);
        assert_ne!(XmlError::NoRootElement, XmlError::StaleNode);
    }
}

//! Normalization of XBL queries (paper, Section 2.2).
//!
//! Every path is rewritten to the normal form `β1/…/βn` where each `βi`
//! is one of `ε`, `*`, `//`, or `ε[q']`:
//!
//! ```text
//! normalize(A)            = */ε[label() = A]
//! normalize(p1/p2)        = normalize(p1)/normalize(p2)
//! normalize(p[q'])        = normalize(p)/ε[normalize(q')]
//! normalize(p/text()=s)   = normalize(p)[text() = s]
//! normalize(ε[q1]/…/ε[qn]) = ε[q1 ∧ … ∧ qn]     (ε-merge rule)
//! ```
//!
//! Boolean connectives are normalized structurally. The ε-merge rule keeps
//! the sub-query list tight: consecutive qualifiers collapse into one
//! conjunction.

use crate::ast::{Path, Query, Step};

/// A query in normal form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NQuery {
    /// `ε` — trivially true at any node.
    True,
    /// `label() = A`.
    LabelIs(String),
    /// `text() = s`.
    TextIs(String),
    /// A normalized path `β1/…/βn` (never empty; an empty path normalizes
    /// to [`NQuery::True`]).
    Path(Vec<NStep>),
    /// `¬ q`.
    Not(Box<NQuery>),
    /// `q ∧ q`.
    And(Box<NQuery>, Box<NQuery>),
    /// `q ∨ q`.
    Or(Box<NQuery>, Box<NQuery>),
}

/// A normalized path step `β`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NStep {
    /// `*` — any child.
    Wildcard,
    /// `//` — descendant-or-self.
    DescOrSelf,
    /// `ε[q]` — qualifier at the current node.
    Qual(Box<NQuery>),
}

/// Normalizes a query. Runs in `O(|q|)` time (each AST node is visited
/// once; the ε-merge touches each produced step once).
pub fn normalize(q: &Query) -> NQuery {
    match q {
        Query::Path(p) => steps_to_nquery(normalize_path(p, None)),
        Query::TextEq(p, s) => {
            let steps = normalize_path(p, Some(NQuery::TextIs(s.clone())));
            steps_to_nquery(steps)
        }
        Query::LabelEq(a) => NQuery::LabelIs(a.clone()),
        Query::Not(inner) => NQuery::Not(Box::new(normalize(inner))),
        Query::And(a, b) => NQuery::And(Box::new(normalize(a)), Box::new(normalize(b))),
        Query::Or(a, b) => NQuery::Or(Box::new(normalize(a)), Box::new(normalize(b))),
    }
}

fn steps_to_nquery(steps: Vec<NStep>) -> NQuery {
    if steps.is_empty() {
        NQuery::True
    } else if steps.len() == 1 {
        // A path consisting of a single qualifier ε[q] is just q.
        if let NStep::Qual(q) = &steps[0] {
            (**q).clone()
        } else {
            NQuery::Path(steps)
        }
    } else {
        NQuery::Path(steps)
    }
}

/// Normalizes the steps of a path; `final_qual` (used for `text() = s`)
/// is appended as a last qualifier, merging with a trailing qualifier if
/// one exists.
fn normalize_path(p: &Path, final_qual: Option<NQuery>) -> Vec<NStep> {
    let mut out: Vec<NStep> = Vec::with_capacity(p.steps.len() + 1);
    for step in &p.steps {
        match step {
            Step::SelfStep => {} // ε is the identity on paths
            Step::Wildcard => out.push(NStep::Wildcard),
            Step::DescOrSelf => out.push(NStep::DescOrSelf),
            Step::Label(a) => {
                out.push(NStep::Wildcard);
                push_qual(&mut out, NQuery::LabelIs(a.clone()));
            }
            Step::Qualifier(q) => push_qual(&mut out, normalize(q)),
        }
    }
    if let Some(q) = final_qual {
        push_qual(&mut out, q);
    }
    out
}

/// Appends `ε[q]`, applying the ε-merge rule when the previous step is
/// already a qualifier.
fn push_qual(steps: &mut Vec<NStep>, q: NQuery) {
    if let Some(NStep::Qual(prev)) = steps.last_mut() {
        let merged = NQuery::And(prev.clone(), Box::new(q));
        **prev = merged;
    } else {
        steps.push(NStep::Qual(Box::new(q)));
    }
}

impl std::fmt::Display for NQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NQuery::True => write!(f, "ε"),
            NQuery::LabelIs(a) => write!(f, "label() = {a}"),
            NQuery::TextIs(s) => write!(f, "text() = \"{s}\""),
            NQuery::Path(steps) => {
                let mut first = true;
                for s in steps {
                    if !first {
                        write!(f, "/")?;
                    }
                    match s {
                        NStep::Wildcard => write!(f, "*")?,
                        NStep::DescOrSelf => write!(f, "ε//ε")?,
                        NStep::Qual(q) => write!(f, "ε[{q}]")?,
                    }
                    first = false;
                }
                Ok(())
            }
            NQuery::Not(q) => write!(f, "¬({q})"),
            NQuery::And(a, b) => write!(f, "({a} ∧ {b})"),
            NQuery::Or(a, b) => write!(f, "({a} ∨ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn norm(src: &str) -> NQuery {
        normalize(&parse_query(src).unwrap())
    }

    #[test]
    fn label_step_desugars_to_wildcard_plus_qualifier() {
        let n = norm("[A]");
        let NQuery::Path(steps) = n else {
            panic!("expected path, got {n}")
        };
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0], NStep::Wildcard);
        assert!(matches!(&steps[1], NStep::Qual(q) if **q == NQuery::LabelIs("A".into())));
    }

    #[test]
    fn example_2_1_shape() {
        // q = //stock[code/text() = "yhoo"]
        // normalize = ε[//ε[label()=stock ∧ */ε[label()=code ∧ text()="yhoo"]]]
        let n = norm("[//stock[code/text() = \"yhoo\"]]");
        let NQuery::Path(steps) = &n else {
            panic!("expected path, got {n}")
        };
        // Leading //, then wildcard (from `stock`), then one merged qualifier.
        assert_eq!(steps[0], NStep::DescOrSelf);
        assert_eq!(steps[1], NStep::Wildcard);
        let NStep::Qual(q) = &steps[2] else {
            panic!("expected qualifier")
        };
        // Merged: label()=stock ∧ (inner path)
        let NQuery::And(l, r) = &**q else {
            panic!("expected ∧, got {q}")
        };
        assert_eq!(**l, NQuery::LabelIs("stock".into()));
        let NQuery::Path(inner) = &**r else {
            panic!("expected inner path")
        };
        assert_eq!(inner[0], NStep::Wildcard);
        let NStep::Qual(iq) = &inner[1] else { panic!() };
        let NQuery::And(il, ir) = &**iq else {
            panic!("expected merged ∧")
        };
        assert_eq!(**il, NQuery::LabelIs("code".into()));
        assert_eq!(**ir, NQuery::TextIs("yhoo".into()));
    }

    #[test]
    fn self_steps_vanish() {
        assert_eq!(norm("[./././a]"), norm("[a]"));
        assert_eq!(norm("[.]"), NQuery::True);
    }

    #[test]
    fn consecutive_qualifiers_merge() {
        let n = norm("[a[//b][//c]]");
        let NQuery::Path(steps) = &n else { panic!() };
        // */ε[label=a ∧ (//b ∧ //c)] — one qualifier step after the wildcard.
        assert_eq!(steps.len(), 2);
        let NStep::Qual(q) = &steps[1] else { panic!() };
        // label=a merged with b-qual merged with c-qual.
        let s = q.to_string();
        assert!(s.contains("label() = a"));
        assert!(s.matches('∧').count() >= 2, "{s}");
    }

    #[test]
    fn text_eq_appends_qualifier() {
        let n = norm("[code/text() = \"GOOG\"]");
        let NQuery::Path(steps) = &n else { panic!() };
        assert_eq!(steps[0], NStep::Wildcard);
        let NStep::Qual(q) = &steps[1] else { panic!() };
        let NQuery::And(l, r) = &**q else {
            panic!("expected label ∧ text merge")
        };
        assert_eq!(**l, NQuery::LabelIs("code".into()));
        assert_eq!(**r, NQuery::TextIs("GOOG".into()));
    }

    #[test]
    fn bare_text_eq_is_textis() {
        assert_eq!(norm("[text() = \"x\"]"), NQuery::TextIs("x".into()));
    }

    #[test]
    fn booleans_normalize_structurally() {
        let n = norm("[//a and not(//b or label() = c)]");
        let NQuery::And(_, r) = &n else { panic!() };
        let NQuery::Not(inner) = &**r else { panic!() };
        assert!(matches!(&**inner, NQuery::Or(_, _)));
    }

    #[test]
    fn single_qualifier_path_unwraps() {
        // Path `.[//a]` is just the qualifier query.
        let a = norm("[.[//a]]");
        let b = norm("[//a]");
        assert_eq!(a, b);
    }
}

//! Procedure `bottomUp` (paper, Fig. 3b): partial evaluation of the
//! sub-query list over one fragment, producing a `(V, CV, DV)` triplet of
//! Boolean *formulas*.
//!
//! At a virtual node (a leaf standing for sub-fragment `F_k`) the values
//! of the sub-queries are unknown; fresh variables `x_i`, `cx_i`, `dx_i`
//! are introduced instead (Example 3.1) and the traversal continues
//! without waiting — this is what decouples the dependencies between the
//! per-fragment partial-evaluation processes.
//!
//! Like the paper's procedure, the implementation maintains only two
//! vector triplets at a time per live ancestor (current accumulation +
//! completed child), not one per node. Child accumulation is **buffered**:
//! each live frame collects per-sub-query operand lists and interns one
//! n-ary `Or` per entry when the node completes, so fan-out `k` costs
//! `O(k)` operand slots instead of the `O(k²)` a pairwise
//! re-flattening accumulation pays (see the `wide_fanout_*` regression
//! tests). The seed implementation, with the original accumulation, is
//! preserved in [`crate::eval::reference`] as the `expD` baseline.

use parbox_bool::{Formula, Triplet};
use parbox_query::{CompiledQuery, Op, ResolvedQuery};
use parbox_xml::{FragmentId, NodeId, Tree};

/// Result of partially evaluating one fragment.
#[derive(Debug, Clone)]
pub struct FragmentRun {
    /// The computed `(V, CV, DV)` triplet for the fragment root.
    pub triplet: Triplet,
    /// Work units: `nodes visited × |QList|`.
    pub work_units: u64,
}

/// Partially evaluates `q` over the fragment `tree` (which may contain
/// virtual nodes), returning the triplet for its root.
///
/// Fragments *without* virtual nodes — every leaf fragment, and whole
/// documents — have no unknowns: partial evaluation degenerates to full
/// evaluation, and the fast bitset kernel of the centralized evaluator
/// is used directly, producing a constant triplet.
pub fn bottom_up(tree: &Tree, q: &CompiledQuery) -> FragmentRun {
    let resolved = q.resolve(tree.labels());
    let m = resolved.len();
    let root = tree.root();
    // Mark the *spine*: nodes whose subtree contains a virtual node. Only
    // spine nodes need formula-valued evaluation; every other subtree is
    // handled by the bitset kernel at centralized speed.
    let spine = compute_spine(tree, root);
    if !spine[root.index()] {
        let (v, cv, dv, nodes) = crate::eval::centralized::eval_vectors_at(tree, &resolved, root);
        let to_vec = |b: &crate::eval::bitset::BitSet| {
            (0..m)
                .map(|i| Formula::constant(b.get(i)))
                .collect::<Vec<_>>()
        };
        return FragmentRun {
            triplet: Triplet {
                v: to_vec(&v),
                cv: to_vec(&cv),
                dv: to_vec(&dv),
            },
            work_units: nodes * m as u64,
        };
    }
    let mut eval = FormulaEvaluator {
        tree,
        q: &resolved,
        m,
        nodes: 0,
        spine: &spine,
    };
    let (v, cv, dv) = eval.run(root);
    FragmentRun {
        triplet: Triplet { v, cv, dv },
        work_units: eval.nodes * m as u64,
    }
}

/// Ablation reference: `bottomUp` with the spine optimization disabled —
/// every node is evaluated through the formula path, as a literal reading
/// of the paper's Fig. 3(b) would. Exists so the benchmark suite can
/// quantify the spine fast-path (see `benches/kernels.rs`); production
/// callers should use [`bottom_up`].
pub fn bottom_up_formula_only(tree: &Tree, q: &CompiledQuery) -> FragmentRun {
    let resolved = q.resolve(tree.labels());
    let m = resolved.len();
    let root = tree.root();
    // An all-true spine forces the formula path everywhere.
    let spine = vec![true; tree.arena_len()];
    let mut eval = FormulaEvaluator {
        tree,
        q: &resolved,
        m,
        nodes: 0,
        spine: &spine,
    };
    let (v, cv, dv) = eval.run(root);
    FragmentRun {
        triplet: Triplet { v, cv, dv },
        work_units: eval.nodes * m as u64,
    }
}

/// One postorder sweep computing, per arena slot, whether the subtree
/// contains a virtual node.
fn compute_spine(tree: &Tree, root: NodeId) -> Vec<bool> {
    let mut spine = vec![false; tree.arena_len()];
    for n in tree.postorder(root) {
        let node = tree.node(n);
        spine[n.index()] =
            node.kind.is_virtual() || node.child_ids().iter().any(|c| spine[c.index()]);
    }
    spine
}

struct FormulaEvaluator<'a> {
    tree: &'a Tree,
    q: &'a ResolvedQuery,
    m: usize,
    nodes: u64,
    /// `spine[n]` — does n's subtree contain a virtual node?
    spine: &'a [bool],
}

struct Frame {
    node: NodeId,
    child_idx: usize,
    /// Per sub-query: `V_w(qi)` of each completed child `w` (lines 3–5's
    /// `CV_v(qi) |= V_w(qi)`, deferred to one n-ary intern at pop).
    cv_ops: Vec<Vec<Formula>>,
    /// Per sub-query: `DV_w(qi)` of each completed child.
    dv_ops: Vec<Vec<Formula>>,
}

type Vectors = (Vec<Formula>, Vec<Formula>, Vec<Formula>);

impl<'a> FormulaEvaluator<'a> {
    fn empty_frame(&self, node: NodeId) -> Frame {
        Frame {
            node,
            child_idx: 0,
            cv_ops: vec![Vec::new(); self.m],
            dv_ops: vec![Vec::new(); self.m],
        }
    }

    /// Iterative postorder evaluation; returns `(V, CV, DV)` of `start`.
    fn run(&mut self, start: NodeId) -> Vectors {
        let mut stack = vec![self.empty_frame(start)];
        // (V, DV) of the most recently completed child.
        let mut done: Option<(Vec<Formula>, Vec<Formula>)> = None;
        loop {
            let frame = stack.last_mut().expect("non-empty until return");
            if let Some((v_w, dv_w)) = done.take() {
                // Lines 3–5: buffer the child's vectors; the disjunction
                // is interned once when this frame pops. `false` operands
                // would be dropped by the n-ary constructor anyway — skip
                // them here so buffers stay proportional to the number of
                // *contributing* children.
                for i in 0..self.m {
                    if v_w[i] != Formula::FALSE {
                        frame.cv_ops[i].push(v_w[i]);
                    }
                    if dv_w[i] != Formula::FALSE {
                        frame.dv_ops[i].push(dv_w[i]);
                    }
                }
            }
            let kids = self.tree.node(frame.node).child_ids();
            if frame.child_idx < kids.len() {
                let child = kids[frame.child_idx];
                frame.child_idx += 1;
                if !self.spine[child.index()] {
                    // Virtual-free subtree: bitset kernel, constant result.
                    let (v, _cv, dv, nodes) =
                        crate::eval::centralized::eval_vectors_at(self.tree, self.q, child);
                    self.nodes += nodes;
                    let to_vec = |b: &crate::eval::bitset::BitSet, m: usize| {
                        (0..m)
                            .map(|i| Formula::constant(b.get(i)))
                            .collect::<Vec<_>>()
                    };
                    done = Some((to_vec(&v, self.m), to_vec(&dv, self.m)));
                    continue;
                }
                let frame = self.empty_frame(child);
                stack.push(frame);
                continue;
            }
            let frame = stack.pop().expect("just peeked");
            let (v, cv, dv) = self.compute_node(frame);
            if stack.is_empty() {
                return (v, cv, dv);
            }
            done = Some((v, dv));
        }
    }

    /// Computes `V` at a node (lines 6–17), or introduces fresh variables
    /// at a virtual node. The buffered child operands are interned here —
    /// one n-ary `Or` per sub-query entry.
    fn compute_node(&mut self, frame: Frame) -> Vectors {
        self.nodes += 1;
        let Frame {
            node,
            cv_ops,
            dv_ops,
            ..
        } = frame;
        let n = self.tree.node(node);
        if let Some(frag) = n.kind.fragment() {
            return self.virtual_vectors(frag);
        }
        let cv: Vec<Formula> = cv_ops.into_iter().map(Formula::any).collect();
        let mut dv: Vec<Formula> = Vec::with_capacity(self.m);
        let mut v: Vec<Formula> = Vec::with_capacity(self.m);
        for (i, op) in self.q.ops.iter().enumerate() {
            let value = match op {
                Op::True => Formula::TRUE,
                Op::LabelIs(l) => Formula::constant(Some(n.label) == *l),
                Op::TextIs(s) => Formula::constant(n.text.as_deref() == Some(s.as_ref())),
                Op::Child(j) => cv[*j as usize],
                // Sub-queries are topologically numbered, so `j < i` and
                // `dv[j]` is already finalized (includes `V` at this node).
                Op::Desc(j) => dv[*j as usize],
                Op::Or(a, b) => Formula::or(v[*a as usize], v[*b as usize]),
                Op::And(a, b) => Formula::and(v[*a as usize], v[*b as usize]),
                Op::Not(a) => v[*a as usize].not(),
            };
            // Line 17: DV_v(qi) := V_v(qi) ∨ ⋁_w DV_w(qi), one intern.
            dv.push(Formula::any(
                dv_ops[i].iter().copied().chain(std::iter::once(value)),
            ));
            v.push(value);
        }
        (v, cv, dv)
    }

    /// Fresh-variable triplet for a virtual node referencing `frag`.
    ///
    /// The paper (Example 3.1) additionally runs the case analysis at the
    /// virtual node, so only leaf cases receive fresh variables; unifying
    /// against the sub-fragment's full `(V, CV, DV)` triplet is
    /// semantically identical and keeps the solver uniform (DESIGN.md §4).
    fn virtual_vectors(&self, frag: FragmentId) -> Vectors {
        let t = Triplet::fresh_vars(frag, self.m);
        (t.v, t.cv, t.dv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_bool::VecKind;
    use parbox_query::{compile, parse_query};

    fn triplet(xml: &str, q: &str) -> Triplet {
        let tree = Tree::parse(xml).unwrap();
        let compiled = compile(&parse_query(q).unwrap());
        bottom_up(&tree, &compiled).triplet
    }

    #[test]
    fn closed_fragment_yields_constants() {
        let t = triplet("<a><b/></a>", "[//b]");
        assert!(t.is_closed());
        let r = t.resolved().unwrap();
        let root = r.v.len() - 1;
        assert!(r.v[root], "//b holds at the root");
    }

    #[test]
    fn virtual_node_introduces_variables() {
        let t = triplet(r#"<a><parbox:virtual ref="2"/></a>"#, "[//b]");
        assert!(!t.is_closed());
        let vars =
            t.v.iter()
                .chain(&t.cv)
                .chain(&t.dv)
                .flat_map(|f| f.vars())
                .collect::<std::collections::BTreeSet<_>>();
        assert!(vars.iter().all(|v| v.frag == FragmentId(2)));
        assert!(!vars.is_empty());
    }

    #[test]
    fn matches_centralized_on_whole_trees() {
        use crate::eval::centralized::centralized_eval;
        for (xml, q) in [
            ("<a><b><c>x</c></b><d/></a>", "[//c = \"x\" and //d]"),
            ("<a><b/><b><c/></b></a>", "[//b[c]]"),
            ("<r><s><t/></s></r>", "[not //q or //t]"),
            ("<r><a/></r>", "[*/a]"),
        ] {
            let tree = Tree::parse(xml).unwrap();
            let compiled = compile(&parse_query(q).unwrap());
            let run = bottom_up(&tree, &compiled);
            let r = run.triplet.resolved().expect("closed");
            let root = compiled.root() as usize;
            assert_eq!(
                r.v[root],
                centralized_eval(&tree, &compiled),
                "mismatch on {xml} {q}"
            );
        }
    }

    #[test]
    fn work_counts_virtual_nodes_too() {
        let tree = Tree::parse(r#"<a><b/><parbox:virtual ref="1"/></a>"#).unwrap();
        let compiled = compile(&parse_query("[//b]").unwrap());
        let run = bottom_up(&tree, &compiled);
        assert_eq!(run.work_units, 3 * compiled.len() as u64);
    }

    #[test]
    fn example_3_1_structure() {
        // Fragment F1 of the paper: broker with a name child and a virtual
        // node for F2. Query: [//stock[code/text()="yhoo"]].
        let xml = r#"<broker><name>Merill Lynch</name><parbox:virtual ref="2"/></broker>"#;
        let t = triplet(xml, "[//stock[code/text() = \"yhoo\"]]");
        // The query can only hold via F2: the root V is a small residual
        // formula over F2's variables — "F2's root subtree contains the
        // stock" (a DV variable) or "F2's root itself is the matching
        // stock child of the broker" (a V variable). This is the analogue
        // of the paper's V_F1 = <…, dx8, dx8>.
        let root = t.v.len() - 1;
        let vars = t.v[root].vars();
        assert!(
            !vars.is_empty() && vars.len() <= 2,
            "V_root = {}",
            t.v[root]
        );
        for var in vars {
            assert_eq!(var.frag, FragmentId(2));
            assert!(matches!(var.vec, VecKind::DV | VecKind::V));
        }
    }

    #[test]
    fn cv_accumulates_over_children() {
        let t = triplet("<r><a/><b/></r>", "[.]");
        // ε is true at every node, so CV at the root must be true (it has
        // children) and DV true as well.
        let r = t.resolved().unwrap();
        assert!(r.cv[0]);
        assert!(r.dv[0]);
    }

    #[test]
    fn leaf_fragment_cv_false() {
        let t = triplet("<r/>", "[.]");
        let r = t.resolved().unwrap();
        assert!(!r.cv[0], "no children");
        assert!(r.v[0] && r.dv[0]);
    }

    #[test]
    fn variables_reference_all_three_kinds() {
        let t = triplet(r#"<a><parbox:virtual ref="5"/></a>"#, "[*/x or //y]");
        let mut kinds = std::collections::BTreeSet::new();
        for f in t.v.iter().chain(&t.cv).chain(&t.dv) {
            for v in f.vars() {
                kinds.insert(v.vec);
            }
        }
        // Child accumulation uses V vars; descendant accumulation uses DV.
        assert!(kinds.contains(&VecKind::V));
        assert!(kinds.contains(&VecKind::DV));
    }

    /// Builds a fragment whose root has `fanout` virtual children — the
    /// widest possible formula-path node.
    fn wide_fanout_tree(fanout: u32) -> Tree {
        let mut xml = String::from("<hub>");
        for i in 0..fanout {
            xml.push_str(&format!(r#"<parbox:virtual ref="{}"/>"#, i + 1));
        }
        xml.push_str("</hub>");
        Tree::parse(&xml).unwrap()
    }

    #[test]
    fn wide_fanout_accumulation_is_linear() {
        // Regression for the O(k²) child-accumulation: evaluating a node
        // with 10 000 virtual children must write O(k) operand slots into
        // the arena, not O(k²). The seed accumulation would copy
        // ~k²/2 ≈ 5·10⁷ operands per sub-query and time out here.
        let fanout = 10_000u32;
        let tree = wide_fanout_tree(fanout);
        let compiled = compile(&parse_query("[//b]").unwrap());
        let before = Formula::arena_stats();
        let run = bottom_up(&tree, &compiled);
        let after = Formula::arena_stats();
        assert!(!run.triplet.is_closed());
        let slots = after.operand_slots - before.operand_slots;
        // Linear bound: a handful of n-ary nodes per sub-query, each with
        // ≤ fanout operands. 8·k is generous; k²/2 would be 5·10⁷.
        assert!(
            slots <= 8 * u64::from(fanout) * compiled.len() as u64,
            "operand slots {slots} not linear in fan-out {fanout}"
        );
        // And the result is the expected wide disjunction: every child
        // fragment is referenced.
        let root = compiled.root() as usize;
        let frags: std::collections::BTreeSet<FragmentId> = run.triplet.dv[root]
            .vars()
            .into_iter()
            .map(|v| v.frag)
            .collect();
        assert_eq!(frags.len(), fanout as usize);
    }

    #[test]
    fn wide_fanout_matches_reference_semantics() {
        // The buffered accumulation must agree with the seed evaluator
        // entry by entry (here: after closing both with the same
        // assignment).
        let tree = wide_fanout_tree(64);
        let compiled = compile(&parse_query("[//b or */c]").unwrap());
        let run = bottom_up(&tree, &compiled);
        let ref_run = crate::eval::reference::bottom_up_reference(&tree, &compiled);
        assert_eq!(run.work_units, ref_run.work_units);
        let assign = |v: parbox_bool::Var| (v.frag.0 + v.sub).is_multiple_of(3);
        let close = run
            .triplet
            .substitute(&|v| Some(Formula::constant(assign(v))));
        let ref_close = ref_run
            .triplet
            .substitute(&|v| Some(parbox_bool::reference::RefFormula::Const(assign(v))));
        assert_eq!(close.resolved(), ref_close.resolved());
    }
}

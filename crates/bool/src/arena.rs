//! The hash-consing formula arena backing [`crate::Formula`].
//!
//! Every distinct formula is stored exactly once in a process-wide node
//! table; a [`FormulaId`] (a `u32`) names it. Interning performs
//! *canonicalization* at construction time:
//!
//! * constants fold (`compFm`'s cases, plus `¬¬f = f`),
//! * `And`/`Or` operands are flattened one level (children of a
//!   canonical `And` are never `And`s or constants), sorted by id and
//!   deduplicated.
//!
//! Canonical form makes structural equality *id equality* (`O(1)`), lets
//! per-node metadata (`size`, `has_vars`) be computed once at interning,
//! and turns `substitute`/`eval` into memoized single passes over the
//! shared DAG instead of walks over an exponentially larger tree
//! expansion.
//!
//! # Sharding and the locking discipline
//!
//! The arena is split into [`SHARD_COUNT`] **shards** (a power of two),
//! selected by the canonical node's hash, so concurrent site actors
//! interning unrelated formulas take unrelated locks. A [`FormulaId`]
//! encodes its shard in the top [`SHARD_BITS`] bits and the slot within
//! the shard below; two structurally equal nodes hash to the same shard
//! and therefore still canonicalize to the same id process-wide.
//!
//! Each shard has two halves:
//!
//! * a [`Mutex`]-guarded intern map (node → slot) — the only lock in the
//!   arena, held for one map probe plus at most one append;
//! * an append-only, **lock-free readable** node store: exponentially
//!   growing segments of `OnceLock` slots, published before the id that
//!   names them escapes the interning call. Reads (`node`, `size_of`,
//!   `has_vars`, snapshot extraction, `mk_nary` flattening) never take
//!   any lock — cross-shard operand reads therefore cannot deadlock,
//!   and [`snapshot`] runs concurrently with interning on every shard.
//!
//! On top of the shards, every thread keeps a bounded **thread-local
//! intern cache** (canonical node → id). The mapping is immutable — the
//! arena only grows and ids never move — so the cache needs no
//! invalidation; a hit skips hashing into the shared map and the shard
//! lock entirely. This is the `SitePool` workers' fast path: a serving
//! round re-interns the same working set of variables and small
//! residual formulas over and over.
//!
//! As before, no lock is ever held while invoking caller-supplied
//! closures (lookups and assignments run against a lock-free [`Dag`]
//! snapshot), the arena only grows — ids stay valid for the life of the
//! process — and growth is bounded by the number of *distinct* formulas
//! ever built.

use crate::var::Var;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The rustc-style Fx multiplicative hasher. Interning hashes a `Node`
/// on every constructor call — the hottest hash site in the system —
/// and the inputs are tiny structured ids, exactly the workload SipHash
/// is overkill for.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

/// Number of bits of a [`FormulaId`] naming the shard.
pub(crate) const SHARD_BITS: u32 = 4;
/// Number of interning shards (power of two).
pub const SHARD_COUNT: usize = 1 << SHARD_BITS;
/// Bits left for the slot within a shard.
const SLOT_BITS: u32 = 32 - SHARD_BITS;
const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;

/// Id of one distinct (canonical) formula in the process-wide arena.
///
/// Two formulas are structurally equal iff their ids are equal, which is
/// what makes [`crate::Formula`] comparisons, hashing, and cache keys
/// `O(1)`. The top `SHARD_BITS` (4) bits name the interning shard; the
/// rest is the slot within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FormulaId(pub u32);

/// Id of the constant `false` (seeded into shard 0 at construction).
pub(crate) const FALSE_ID: FormulaId = FormulaId(0);
/// Id of the constant `true` (seeded into shard 0 at construction).
pub(crate) const TRUE_ID: FormulaId = FormulaId(1);

#[inline]
fn compose(shard: usize, slot: u32) -> FormulaId {
    FormulaId(((shard as u32) << SLOT_BITS) | slot)
}

#[inline]
fn shard_of_id(id: FormulaId) -> usize {
    (id.0 >> SLOT_BITS) as usize
}

#[inline]
fn slot_of_id(id: FormulaId) -> u32 {
    id.0 & SLOT_MASK
}

/// One interned node. Operand ids always name already-published nodes,
/// so following them through the lock-free store can never observe an
/// unfinished entry.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum Node {
    Const(bool),
    Var(Var),
    Not(FormulaId),
    And(Arc<[FormulaId]>),
    Or(Arc<[FormulaId]>),
}

/// Intern-path counters of one arena shard (see
/// [`crate::Formula::arena_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Distinct nodes interned into this shard (intern-map misses that
    /// appended to the store).
    pub interns: u64,
    /// Intern-map hits under the shard lock (the node already existed).
    pub hits: u64,
    /// Times the shard lock was acquired by the intern path.
    pub locks: u64,
}

/// Arena occupancy and intern-path counters (see
/// [`crate::Formula::arena_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct formulas interned since process start (all shards).
    pub nodes: usize,
    /// Total operand slots stored across all n-ary nodes — the figure
    /// that is linear in fan-out for buffered construction and quadratic
    /// for naive pairwise accumulation.
    pub operand_slots: u64,
    /// Intern requests answered by a thread-local cache — no shard lock,
    /// no shared-map probe.
    pub local_hits: u64,
    /// Per-shard intern counters, indexed by shard.
    pub shards: [ShardCounters; SHARD_COUNT],
}

// ---------------------------------------------------------------------------
// Lock-free append-only node store
// ---------------------------------------------------------------------------

/// Everything the read paths need about one interned node.
pub(crate) struct Entry {
    pub(crate) node: Node,
    /// Tree-expansion node count (saturating).
    pub(crate) size: u64,
    /// Does the formula reference any variable?
    pub(crate) has_vars: bool,
}

/// Smallest segment, in slots. Segment `s` holds `SEG_BASE << s` slots.
const SEG_BASE: usize = 64;
/// `SEG_BASE · (2^SEG_COUNT − 1) ≥ 2^SLOT_BITS`: enough segments to back
/// every addressable slot of a shard.
const SEG_COUNT: usize = 23;

/// Append-only node storage of one shard. Writers (holding the shard's
/// intern lock) publish entries through `OnceLock::set`; readers resolve
/// any *escaped* id without synchronization beyond the `OnceLock`
/// acquire load — the entry was published before its id was returned.
struct Store {
    segments: [OnceLock<Box<[OnceLock<Entry>]>>; SEG_COUNT],
}

impl Store {
    fn new() -> Store {
        Store {
            segments: [const { OnceLock::new() }; SEG_COUNT],
        }
    }

    /// `(segment, offset)` of a slot: segment `s` starts at slot
    /// `SEG_BASE · (2^s − 1)`.
    #[inline]
    fn locate(slot: u32) -> (usize, usize) {
        let seg = (slot as usize / SEG_BASE + 1).ilog2() as usize;
        let offset = slot as usize - SEG_BASE * ((1 << seg) - 1);
        (seg, offset)
    }

    /// Lock-free read of a published slot.
    #[inline]
    fn get(&self, slot: u32) -> &Entry {
        let (seg, offset) = Self::locate(slot);
        self.segments[seg]
            .get()
            .expect("segment of an escaped id is allocated")[offset]
            .get()
            .expect("entry of an escaped id is published")
    }

    /// Publishes `entry` at `slot`. Called with the shard intern lock
    /// held, before the slot's id escapes.
    fn publish(&self, slot: u32, entry: Entry) {
        let (seg, offset) = Self::locate(slot);
        let segment = self.segments[seg].get_or_init(|| {
            (0..SEG_BASE << seg)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        if segment[offset].set(entry).is_err() {
            unreachable!("arena slot {slot} published twice");
        }
    }
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

struct ShardMap {
    /// Canonical node → slot within this shard.
    intern: HashMap<Node, u32, FxBuild>,
    /// Next free slot (== number of interned nodes).
    len: u32,
    operand_slots: u64,
    hits: u64,
    locks: u64,
}

struct Shard {
    map: Mutex<ShardMap>,
    store: Store,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: Mutex::new(ShardMap {
                intern: HashMap::default(),
                len: 0,
                operand_slots: 0,
                hits: 0,
                locks: 0,
            }),
            store: Store::new(),
        }
    }

    /// Interns `node` into this shard, appending to the store on a miss.
    /// Poisoning is ignored: an append either completes (store publish,
    /// then map insert) or leaves both untouched, so a panicking holder
    /// cannot leave state that later operations would misread.
    fn intern(&self, shard_ix: usize, node: Node, size: u64, has_vars: bool) -> FormulaId {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        map.locks += 1;
        if let Some(&slot) = map.intern.get(&node) {
            map.hits += 1;
            return compose(shard_ix, slot);
        }
        // Count operand slots only for nodes actually stored — a
        // hash-consing hit stores nothing.
        if let Node::And(xs) | Node::Or(xs) = &node {
            map.operand_slots += xs.len() as u64;
        }
        // `< SLOT_MASK`, not `≤`: the snapshot memo stores `id + 1`, so
        // the all-ones raw id must stay unused.
        let slot = map.len;
        assert!(slot < SLOT_MASK, "formula arena shard full (2^28 nodes)");
        map.len += 1;
        self.store.publish(
            slot,
            Entry {
                node: node.clone(),
                size,
                has_vars,
            },
        );
        map.intern.insert(node, slot);
        compose(shard_ix, slot)
    }
}

struct Arena {
    shards: [Shard; SHARD_COUNT],
    /// Intern requests served by thread-local caches (no shard lock).
    local_hits: AtomicU64,
}

static ARENA: OnceLock<Arena> = OnceLock::new();

fn arena() -> &'static Arena {
    ARENA.get_or_init(|| {
        let arena = Arena {
            shards: std::array::from_fn(|_| Shard::new()),
            local_hits: AtomicU64::new(0),
        };
        // The two constants are seeded into shard 0 — *not* hash-placed —
        // so `FALSE_ID`/`TRUE_ID` are the compile-time ids 0 and 1. This
        // cannot produce duplicates later: every constructor folds
        // constants before interning, so `Node::Const` never reaches the
        // hash-directed intern path.
        let f = arena.shards[0].intern(0, Node::Const(false), 1, false);
        let t = arena.shards[0].intern(0, Node::Const(true), 1, false);
        debug_assert_eq!(f, FALSE_ID);
        debug_assert_eq!(t, TRUE_ID);
        arena
    })
}

/// Shard index of a canonical node: the top bits of its Fx hash (the
/// multiplicative mix concentrates entropy in the high bits).
#[inline]
fn shard_of_node(node: &Node) -> usize {
    let mut h = FxHasher::default();
    node.hash(&mut h);
    (h.finish() >> (64 - SHARD_BITS)) as usize
}

// ---------------------------------------------------------------------------
// Thread-local intern fast path
// ---------------------------------------------------------------------------

/// Bound on the per-thread cache; reaching it clears the cache (epoch
/// style) rather than evicting, keeping the fast path branch-light.
const LOCAL_CAP: usize = 8192;

thread_local! {
    static LOCAL_INTERN: RefCell<HashMap<Node, FormulaId, FxBuild>> =
        RefCell::new(HashMap::default());
}

/// The interning entry point: thread-local cache first, then the node's
/// hash-selected shard. The node→id mapping is immutable, so the local
/// cache never needs invalidation.
fn intern(node: Node, size: u64, has_vars: bool) -> FormulaId {
    if let Some(id) = LOCAL_INTERN.with(|c| c.borrow().get(&node).copied()) {
        arena().local_hits.fetch_add(1, Ordering::Relaxed);
        return id;
    }
    let a = arena();
    let s = shard_of_node(&node);
    let id = a.shards[s].intern(s, node.clone(), size, has_vars);
    LOCAL_INTERN.with(|c| {
        let mut cache = c.borrow_mut();
        if cache.len() >= LOCAL_CAP {
            cache.clear();
        }
        cache.insert(node, id);
    });
    id
}

// ---------------------------------------------------------------------------
// Constructors and read paths (crate-internal API)
// ---------------------------------------------------------------------------

/// Lock-free read of a published node.
#[inline]
pub(crate) fn entry(id: FormulaId) -> &'static Entry {
    arena().shards[shard_of_id(id)].store.get(slot_of_id(id))
}

/// The node named by `id` (lock-free).
#[inline]
pub(crate) fn node(id: FormulaId) -> &'static Node {
    &entry(id).node
}

/// Tree-expansion size of `id` (lock-free).
#[inline]
pub(crate) fn size_of(id: FormulaId) -> u64 {
    entry(id).size
}

/// Does `id` reference any variable? (lock-free).
#[inline]
pub(crate) fn has_vars(id: FormulaId) -> bool {
    entry(id).has_vars
}

pub(crate) fn mk_const(b: bool) -> FormulaId {
    if b {
        TRUE_ID
    } else {
        FALSE_ID
    }
}

pub(crate) fn mk_var(v: Var) -> FormulaId {
    intern(Node::Var(v), 1, true)
}

pub(crate) fn mk_not(a: FormulaId) -> FormulaId {
    match entry(a) {
        Entry {
            node: Node::Const(b),
            ..
        } => mk_const(!b),
        Entry {
            node: Node::Not(inner),
            ..
        } => *inner,
        e => intern(Node::Not(a), e.size.saturating_add(1), e.has_vars),
    }
}

/// Canonical n-ary conjunction (`conj`) or disjunction: folds constants,
/// flattens same-operator children one level (sufficient by the
/// canonical invariant), sorts by id and deduplicates, all in one pass —
/// a single interning regardless of operand count. Operand reads go
/// through the lock-free store, so flattening never holds any lock.
pub(crate) fn mk_nary<I>(conj: bool, ops: I) -> FormulaId
where
    I: IntoIterator<Item = FormulaId>,
{
    let (absorbing, neutral) = if conj {
        (FALSE_ID, TRUE_ID)
    } else {
        (TRUE_ID, FALSE_ID)
    };
    let mut out: Vec<FormulaId> = Vec::new();
    for id in ops {
        if id == absorbing {
            return absorbing;
        }
        if id == neutral {
            continue;
        }
        match node(id) {
            Node::And(xs) if conj => out.extend_from_slice(xs),
            Node::Or(xs) if !conj => out.extend_from_slice(xs),
            _ => out.push(id),
        }
    }
    out.sort_unstable();
    out.dedup();
    match out.len() {
        0 => neutral,
        1 => out[0],
        _ => {
            let size = out
                .iter()
                .fold(1u64, |acc, i| acc.saturating_add(size_of(*i)));
            let has_vars = out.iter().any(|i| has_vars(*i));
            let n = if conj {
                Node::And(out.into())
            } else {
                Node::Or(out.into())
            };
            intern(n, size, has_vars)
        }
    }
}

/// Occupancy and intern-path counters over all shards.
pub(crate) fn stats() -> ArenaStats {
    let a = arena();
    let mut shards = [ShardCounters::default(); SHARD_COUNT];
    let mut nodes = 0usize;
    let mut operand_slots = 0u64;
    for (i, shard) in a.shards.iter().enumerate() {
        let map = shard
            .map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Deliberately not counted in `locks`: those meter the intern
        // path, not diagnostics.
        shards[i] = ShardCounters {
            interns: u64::from(map.len),
            hits: map.hits,
            locks: map.locks,
        };
        nodes += map.len as usize;
        operand_slots += map.operand_slots;
    }
    ArenaStats {
        nodes,
        operand_slots,
        local_hits: a.local_hits.load(Ordering::Relaxed),
        shards,
    }
}

/// Extracts the sub-DAG reachable from `roots` into a local snapshot,
/// children before parents. Iterative (no recursion), so arbitrarily
/// deep formulas cannot overflow the stack; entirely lock-free — it
/// reads published store entries only, so it runs concurrently with
/// interning on every shard.
pub(crate) fn snapshot(roots: &[FormulaId]) -> Dag {
    let mut dag = Dag {
        nodes: Vec::new(),
        operands: Vec::new(),
        roots: Vec::with_capacity(roots.len()),
    };
    let mut memo = IdMap::new();
    let mut stack: Vec<(FormulaId, bool)> = Vec::new();
    for &root in roots {
        if memo.get(root.0).is_none() {
            stack.push((root, false));
            while let Some((id, expanded)) = stack.pop() {
                if memo.get(id.0).is_some() {
                    continue;
                }
                let n = node(id);
                if expanded {
                    let at = |x: &FormulaId| memo.get(x.0).expect("child snapshot first");
                    let local = match n {
                        Node::Const(b) => DagNode::Const(*b),
                        Node::Var(v) => DagNode::Var(*v),
                        Node::Not(x) => DagNode::Not(at(x)),
                        Node::And(xs) | Node::Or(xs) => {
                            let start = dag.operands.len() as u32;
                            dag.operands.extend(xs.iter().map(at));
                            let range = start..dag.operands.len() as u32;
                            if matches!(n, Node::And(_)) {
                                DagNode::And(range)
                            } else {
                                DagNode::Or(range)
                            }
                        }
                    };
                    memo.insert(id.0, dag.nodes.len() as u32);
                    dag.nodes.push(local);
                } else {
                    stack.push((id, true));
                    match n {
                        Node::Not(x) if memo.get(x.0).is_none() => stack.push((*x, false)),
                        Node::And(xs) | Node::Or(xs) => {
                            for x in xs.iter() {
                                if memo.get(x.0).is_none() {
                                    stack.push((*x, false));
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        dag.roots
            .push(memo.get(root.0).expect("root snapshot above"));
    }
    dag
}

/// One node of a [`Dag`] snapshot; operand references are indices into
/// [`Dag::operands`] / earlier [`Dag::nodes`] entries.
#[derive(Debug, Clone)]
pub(crate) enum DagNode {
    Const(bool),
    Var(Var),
    Not(u32),
    And(Range<u32>),
    Or(Range<u32>),
}

/// A lock-free snapshot of the sub-DAG reachable from a set of roots, in
/// topological order (children strictly before parents). All traversal
/// algorithms — eval, substitute, rendering, wire encoding — run over
/// snapshots so no arena lock is ever held across user code.
#[derive(Debug, Clone)]
pub(crate) struct Dag {
    pub(crate) nodes: Vec<DagNode>,
    pub(crate) operands: Vec<u32>,
    /// One entry per requested root, in request order.
    pub(crate) roots: Vec<u32>,
}

impl Dag {
    /// Local indices of the operands of an n-ary node.
    pub(crate) fn ops(&self, range: &Range<u32>) -> &[u32] {
        &self.operands[range.start as usize..range.end as usize]
    }
}

/// Minimal open-addressing `u32 → u32` map with multiplicative hashing.
/// The snapshot memo is the hot data structure of every
/// substitute/eval/encode pass; `std`'s SipHash-backed `HashMap`
/// dominated those passes, and the keys here are small structured ids
/// for which a Fibonacci-hashed probe sequence is both faster and
/// collision-resistant enough.
struct IdMap {
    /// `(key + 1, value)`; key slot 0 means empty.
    slots: Vec<(u32, u32)>,
    mask: usize,
    len: usize,
}

impl IdMap {
    fn new() -> IdMap {
        IdMap {
            slots: vec![(0, 0); 16],
            mask: 15,
            len: 0,
        }
    }

    #[inline]
    fn probe(&self, key: u32) -> usize {
        (key.wrapping_add(1).wrapping_mul(0x9e37_79b1) as usize) & self.mask
    }

    fn get(&self, key: u32) -> Option<u32> {
        let stored = key + 1;
        let mut i = self.probe(key);
        loop {
            let (k, v) = self.slots[i];
            if k == stored {
                return Some(v);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert(&mut self, key: u32, value: u32) {
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let stored = key + 1;
        let mut i = self.probe(key);
        loop {
            let (k, _) = self.slots[i];
            if k == 0 {
                self.slots[i] = (stored, value);
                self.len += 1;
                return;
            }
            if k == stored {
                self.slots[i] = (stored, value);
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); 0]);
        self.mask = old.len() * 2 - 1;
        self.slots = vec![(0, 0); old.len() * 2];
        self.len = 0;
        for (k, v) in old {
            if k != 0 {
                self.insert(k - 1, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VecKind;
    use parbox_xml::FragmentId;

    #[test]
    fn constants_have_fixed_ids() {
        assert_eq!(mk_const(false), FALSE_ID);
        assert_eq!(mk_const(true), TRUE_ID);
        // Seeded in shard 0 at slots 0 and 1.
        assert_eq!(shard_of_id(FALSE_ID), 0);
        assert_eq!(slot_of_id(TRUE_ID), 1);
    }

    #[test]
    fn store_locate_is_contiguous() {
        // Slots map to (segment, offset) without gaps or overlaps.
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for seg in 0..4 {
            for off in 0..SEG_BASE << seg {
                expected.push((seg, off));
            }
        }
        for (slot, want) in expected.iter().enumerate() {
            assert_eq!(Store::locate(slot as u32), *want, "slot {slot}");
        }
        // The full segment ladder covers every addressable slot.
        assert!(SEG_BASE * ((1usize << SEG_COUNT) - 1) >= SLOT_MASK as usize);
    }

    #[test]
    fn same_node_same_id_across_shrad_paths() {
        let v = Var::new(FragmentId(7001), VecKind::V, 3);
        let a = mk_var(v);
        let b = mk_var(v);
        assert_eq!(a, b);
        // The id round-trips through its shard/slot decomposition.
        assert_eq!(compose(shard_of_id(a), slot_of_id(a)), a);
    }

    #[test]
    fn stats_count_per_shard() {
        let before = stats();
        let vars: Vec<FormulaId> = (0..64)
            .map(|i| mk_var(Var::new(FragmentId(8000 + i), VecKind::DV, i)))
            .collect();
        let or = mk_nary(false, vars.clone());
        assert_ne!(or, TRUE_ID);
        let after = stats();
        assert!(after.nodes >= before.nodes + 64);
        assert!(after.operand_slots >= before.operand_slots + 64);
        let interned: u64 = after.shards.iter().map(|s| s.interns).sum();
        assert_eq!(interned as usize, after.nodes);
        // Fresh vars spread over more than one shard.
        let touched = after
            .shards
            .iter()
            .zip(before.shards.iter())
            .filter(|(a, b)| a.interns > b.interns)
            .count();
        assert!(touched > 1, "64 fresh vars landed in {touched} shard(s)");
    }

    #[test]
    fn local_cache_absorbs_repeats() {
        let v = Var::new(FragmentId(9102), VecKind::CV, 1);
        let _ = mk_var(v); // ensure cached
        let before = stats();
        for _ in 0..100 {
            let _ = mk_var(v);
        }
        let after = stats();
        assert!(after.local_hits >= before.local_hits + 100);
        let locks = |s: &ArenaStats| s.shards.iter().map(|c| c.locks).sum::<u64>();
        assert_eq!(locks(&after), locks(&before), "repeats must not lock");
    }
}

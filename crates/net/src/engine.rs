//! Persistent site workers — the resident substrate of the serving
//! engine.
//!
//! The one-shot algorithms ([`crate::run_sites_parallel`]) spawn a fresh
//! scoped thread per site *per query* and throw all per-site state away
//! when the query returns. A serving deployment instead keeps every site
//! **resident**: [`SitePool`] spawns one long-lived worker thread per
//! site, each owning shared handles to its fragments' trees and a
//! [`(FragmentId, QueryFingerprint)`](parbox_query::QueryFingerprint)
//! keyed **triplet cache**, and serves evaluation requests over a
//! request channel (an actor loop). Site startup is paid once per
//! deployment instead of once per query, and a fragment evaluated twice
//! under the same program fingerprint skips `bottomUp` entirely.
//!
//! Layering: this module provides the *mechanics* (threads, channels,
//! fragment ownership, caching); the evaluation kernel is injected by the
//! algorithm layer as an [`EvalFn`] (`parbox-core` passes its `bottomUp`)
//! and the protocol accounting (visits, messages, cost models) stays with
//! the coordinator in `parbox-core::serve`.

use crate::SiteId;
use parbox_bool::Triplet;
use parbox_query::{CompiledQuery, QueryFingerprint};
use parbox_xml::{FragmentId, Tree};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Result of evaluating one program over one fragment.
#[derive(Debug, Clone)]
pub struct FragmentEval {
    /// The fragment's `(V, CV, DV)` triplet under the program.
    pub triplet: Triplet,
    /// Work units spent (`nodes visited × |QList|`; 0 on a cache hit).
    pub work_units: u64,
}

/// The per-fragment evaluation kernel a site worker runs. Injected by the
/// algorithm layer (`parbox-core` passes procedure `bottomUp`), keeping
/// this crate below the algorithms in the dependency DAG.
pub type EvalFn = fn(&Tree, &CompiledQuery) -> FragmentEval;

/// The initial deployment passed to [`SitePool::spawn`]: each site with
/// the fragments (ids + shared tree handles) it will own.
pub type SiteDeployment = Vec<(SiteId, Vec<(FragmentId, Arc<Tree>)>)>;

/// One site's reply to an evaluation request.
#[derive(Debug)]
pub struct EvalReply {
    /// The replying site.
    pub site: SiteId,
    /// Per requested fragment: its triplet and whether it was served from
    /// the site's cache (no `bottomUp` run).
    pub triplets: Vec<(FragmentId, Arc<Triplet>, bool)>,
    /// Work units actually spent (cache hits contribute none).
    pub work_units: u64,
    /// Measured wall-clock time of the site's local work.
    pub elapsed: Duration,
}

/// Cache counters of one resident site worker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteCacheStats {
    /// Live cache entries.
    pub entries: usize,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that ran the evaluation kernel.
    pub misses: u64,
    /// Entries dropped by the FIFO capacity bound.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation (updates).
    pub invalidated: u64,
    /// Freshly computed triplets that matched an already-stored one and
    /// were deduplicated into a shared allocation. Triplet contents are
    /// arena `FormulaId`s, so the content comparison is `O(|QList|)` id
    /// equality — cheap enough to run on every miss.
    pub shared: u64,
}

impl SiteCacheStats {
    /// Fraction of lookups answered from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

enum Request {
    /// Evaluate `program` over the listed resident fragments, consulting
    /// the cache under `fingerprint`.
    Eval {
        program: Arc<CompiledQuery>,
        fingerprint: QueryFingerprint,
        frags: Vec<FragmentId>,
        reply: mpsc::Sender<EvalReply>,
    },
    /// Install (or replace) a fragment's tree handle, dropping every
    /// cache entry of that fragment — the update-invalidation path.
    Load {
        frag: FragmentId,
        tree: Arc<Tree>,
    },
    /// Remove a fragment (merged away or migrated) and its cache entries.
    Unload {
        frag: FragmentId,
    },
    /// Report cache counters.
    Stats {
        reply: mpsc::Sender<SiteCacheStats>,
    },
    Shutdown,
}

struct SiteWorker {
    site: SiteId,
    eval: EvalFn,
    fragments: HashMap<FragmentId, Arc<Tree>>,
    cache: HashMap<(FragmentId, QueryFingerprint), Arc<Triplet>>,
    /// FIFO eviction order of cache keys.
    order: VecDeque<(FragmentId, QueryFingerprint)>,
    /// Content-addressed dedup: triplets keyed by their own
    /// `FormulaId`-stable value, so equal results computed under
    /// different fingerprints (or for different fragments) share one
    /// allocation. Keys equal values, so a hit can never return a stale
    /// *wrong* triplet; the map is only ever a memory optimization and
    /// is simply cleared when it outgrows the cache capacity.
    content: HashMap<Triplet, Arc<Triplet>>,
    capacity: usize,
    stats: SiteCacheStats,
}

impl SiteWorker {
    fn run(mut self, inbox: mpsc::Receiver<Request>) {
        while let Ok(req) = inbox.recv() {
            match req {
                Request::Eval {
                    program,
                    fingerprint,
                    frags,
                    reply,
                } => {
                    let start = Instant::now();
                    let mut work_units = 0u64;
                    let triplets: Vec<(FragmentId, Arc<Triplet>, bool)> = frags
                        .into_iter()
                        .map(|f| {
                            if let Some(t) = self.cache.get(&(f, fingerprint)) {
                                self.stats.hits += 1;
                                return (f, Arc::clone(t), true);
                            }
                            self.stats.misses += 1;
                            let tree = self.fragments.get(&f).unwrap_or_else(|| {
                                panic!("site {}: fragment {f} not resident", self.site)
                            });
                            let run = (self.eval)(tree, &program);
                            work_units += run.work_units;
                            let t = self.share(run.triplet);
                            self.insert(f, fingerprint, Arc::clone(&t));
                            (f, t, false)
                        })
                        .collect();
                    // The round may have been abandoned; a dead reply
                    // channel is not the worker's problem.
                    let _ = reply.send(EvalReply {
                        site: self.site,
                        triplets,
                        work_units,
                        elapsed: start.elapsed(),
                    });
                }
                Request::Load { frag, tree } => {
                    self.fragments.insert(frag, tree);
                    self.drop_entries_of(frag);
                }
                Request::Unload { frag } => {
                    self.fragments.remove(&frag);
                    self.drop_entries_of(frag);
                }
                Request::Stats { reply } => {
                    let mut s = self.stats.clone();
                    s.entries = self.cache.len();
                    let _ = reply.send(s);
                }
                Request::Shutdown => break,
            }
        }
    }

    /// Returns a shared handle for `t`, reusing an existing allocation
    /// when an identical triplet is already stored.
    fn share(&mut self, t: Triplet) -> Arc<Triplet> {
        if self.capacity == 0 {
            return Arc::new(t);
        }
        if self.content.len() > self.capacity {
            self.content.clear();
        }
        if let Some(existing) = self.content.get(&t) {
            self.stats.shared += 1;
            return Arc::clone(existing);
        }
        let arc = Arc::new(t);
        self.content.insert((*arc).clone(), Arc::clone(&arc));
        arc
    }

    fn insert(&mut self, frag: FragmentId, fp: QueryFingerprint, t: Arc<Triplet>) {
        if self.capacity == 0 {
            return;
        }
        if self.cache.insert((frag, fp), t).is_none() {
            self.order.push_back((frag, fp));
        }
        while self.cache.len() > self.capacity {
            // Entries already removed by invalidation may linger in the
            // order queue; skip them until a live key is found.
            match self.order.pop_front() {
                Some(key) => {
                    if self.cache.remove(&key).is_some() {
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }

    fn drop_entries_of(&mut self, frag: FragmentId) {
        let before = self.cache.len();
        self.cache.retain(|(f, _), _| *f != frag);
        self.stats.invalidated += (before - self.cache.len()) as u64;
    }
}

/// A pool of resident site workers — one long-lived thread per site,
/// spawned once per deployment and reused across every query, batch and
/// update until the pool is dropped.
#[derive(Debug)]
pub struct SitePool {
    eval: EvalFn,
    capacity: usize,
    senders: BTreeMap<u32, mpsc::Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
}

impl SitePool {
    /// Spawns one worker per site, each owning handles to its fragments'
    /// trees and an empty triplet cache bounded to `cache_capacity`
    /// entries (FIFO eviction; 0 disables caching).
    pub fn spawn(sites: SiteDeployment, cache_capacity: usize, eval: EvalFn) -> SitePool {
        let mut pool = SitePool {
            eval,
            capacity: cache_capacity,
            senders: BTreeMap::new(),
            handles: Vec::new(),
        };
        for (site, frags) in sites {
            pool.spawn_worker(site, frags);
        }
        pool
    }

    fn spawn_worker(&mut self, site: SiteId, frags: Vec<(FragmentId, Arc<Tree>)>) {
        let (tx, rx) = mpsc::channel();
        let worker = SiteWorker {
            site,
            eval: self.eval,
            fragments: frags.into_iter().collect(),
            cache: HashMap::new(),
            order: VecDeque::new(),
            content: HashMap::new(),
            capacity: self.capacity,
            stats: SiteCacheStats::default(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("parbox-site-{}", site.0))
            .spawn(move || worker.run(rx))
            .expect("spawn site worker");
        self.senders.insert(site.0, tx);
        self.handles.push(handle);
    }

    /// Ensures a worker exists for `site` (updates can migrate fragments
    /// to sites that were not part of the initial deployment).
    pub fn ensure_site(&mut self, site: SiteId) {
        if !self.senders.contains_key(&site.0) {
            self.spawn_worker(site, Vec::new());
        }
    }

    /// Sites with a resident worker, ascending.
    pub fn sites(&self) -> Vec<SiteId> {
        self.senders.keys().map(|&s| SiteId(s)).collect()
    }

    fn sender(&self, site: SiteId) -> &mpsc::Sender<Request> {
        self.senders
            .get(&site.0)
            .unwrap_or_else(|| panic!("no resident worker for site {site}"))
    }

    /// Fans one evaluation round out to the listed sites **in parallel**
    /// (each worker runs concurrently on its own thread) and collects all
    /// replies. Replies are returned in ascending site order.
    pub fn eval_round(
        &self,
        program: &Arc<CompiledQuery>,
        fingerprint: QueryFingerprint,
        per_site: Vec<(SiteId, Vec<FragmentId>)>,
    ) -> Vec<EvalReply> {
        let (tx, rx) = mpsc::channel();
        let n = per_site.len();
        for (site, frags) in per_site {
            self.sender(site)
                .send(Request::Eval {
                    program: Arc::clone(program),
                    fingerprint,
                    frags,
                    reply: tx.clone(),
                })
                .expect("site worker alive");
        }
        drop(tx);
        let mut replies: Vec<EvalReply> = (0..n)
            .map(|_| rx.recv().expect("site worker replied"))
            .collect();
        replies.sort_by_key(|r| r.site);
        replies
    }

    /// Installs (or refreshes) a fragment's tree handle at `site`,
    /// invalidating that fragment's cache entries there.
    pub fn load(&self, site: SiteId, frag: FragmentId, tree: Arc<Tree>) {
        self.sender(site)
            .send(Request::Load { frag, tree })
            .expect("site worker alive");
    }

    /// Removes a fragment (and its cache entries) from `site`.
    pub fn unload(&self, site: SiteId, frag: FragmentId) {
        self.sender(site)
            .send(Request::Unload { frag })
            .expect("site worker alive");
    }

    /// Snapshot of every site's cache counters (sequential per site; the
    /// stats path is diagnostic, not hot).
    pub fn cache_stats(&self) -> BTreeMap<u32, SiteCacheStats> {
        let mut out = BTreeMap::new();
        for (&site, sender) in &self.senders {
            let (tx, rx) = mpsc::channel();
            sender
                .send(Request::Stats { reply: tx })
                .expect("site worker alive");
            out.insert(site, rx.recv().expect("site worker replied"));
        }
        out
    }
}

impl Drop for SitePool {
    fn drop(&mut self) {
        for sender in self.senders.values() {
            let _ = sender.send(Request::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_bool::Formula;
    use parbox_query::{compile, parse_query};

    /// A toy kernel: constant triplet, one work unit per program op.
    fn toy_eval(tree: &Tree, q: &CompiledQuery) -> FragmentEval {
        FragmentEval {
            triplet: Triplet {
                v: vec![Formula::constant(tree.len().is_multiple_of(2)); q.len()],
                cv: vec![Formula::FALSE; q.len()],
                dv: vec![Formula::FALSE; q.len()],
            },
            work_units: q.len() as u64,
        }
    }

    fn pool_of(n_sites: u32, capacity: usize) -> SitePool {
        let sites = (0..n_sites)
            .map(|s| {
                let tree = Arc::new(Tree::parse(&format!("<s{s}><a/></s{s}>")).unwrap());
                (SiteId(s), vec![(FragmentId(s), tree)])
            })
            .collect();
        SitePool::spawn(sites, capacity, toy_eval)
    }

    fn q() -> Arc<CompiledQuery> {
        Arc::new(compile(&parse_query("[//a]").unwrap()))
    }

    #[test]
    fn round_reaches_all_sites_in_parallel() {
        let pool = pool_of(4, 16);
        let program = q();
        let per_site = (0..4).map(|s| (SiteId(s), vec![FragmentId(s)])).collect();
        let replies = pool.eval_round(&program, program.fingerprint(), per_site);
        assert_eq!(replies.len(), 4);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.site, SiteId(i as u32));
            assert_eq!(r.triplets.len(), 1);
            assert!(!r.triplets[0].2, "first evaluation cannot hit the cache");
            assert_eq!(r.work_units, program.len() as u64);
        }
    }

    #[test]
    fn repeat_fingerprint_hits_cache_and_skips_work() {
        let pool = pool_of(2, 16);
        let program = q();
        let per_site: Vec<_> = (0..2).map(|s| (SiteId(s), vec![FragmentId(s)])).collect();
        pool.eval_round(&program, program.fingerprint(), per_site.clone());
        let replies = pool.eval_round(&program, program.fingerprint(), per_site);
        for r in &replies {
            assert!(r.triplets[0].2, "second round must hit");
            assert_eq!(r.work_units, 0);
        }
        let stats = pool.cache_stats();
        assert_eq!(stats[&0].hits, 1);
        assert_eq!(stats[&0].misses, 1);
    }

    #[test]
    fn load_invalidates_only_that_fragment() {
        let tree = Arc::new(Tree::parse("<r><a/></r>").unwrap());
        let sites = vec![(
            SiteId(0),
            vec![(FragmentId(0), Arc::clone(&tree)), (FragmentId(1), tree)],
        )];
        let pool = SitePool::spawn(sites, 16, toy_eval);
        let program = q();
        let frags = vec![(SiteId(0), vec![FragmentId(0), FragmentId(1)])];
        pool.eval_round(&program, program.fingerprint(), frags.clone());
        // Refresh fragment 0 only.
        pool.load(
            SiteId(0),
            FragmentId(0),
            Arc::new(Tree::parse("<r><a/><b/></r>").unwrap()),
        );
        let replies = pool.eval_round(&program, program.fingerprint(), frags);
        assert!(!replies[0].triplets[0].2, "refreshed fragment re-evaluates");
        assert!(replies[0].triplets[1].2, "untouched fragment stays cached");
        let stats = pool.cache_stats();
        assert_eq!(stats[&0].invalidated, 1);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let pool = pool_of(1, 1);
        let a = Arc::new(compile(&parse_query("[//a]").unwrap()));
        let b = Arc::new(compile(&parse_query("[//b]").unwrap()));
        let frags = vec![(SiteId(0), vec![FragmentId(0)])];
        pool.eval_round(&a, a.fingerprint(), frags.clone());
        pool.eval_round(&b, b.fingerprint(), frags.clone());
        // `a` was evicted to make room for `b`.
        let replies = pool.eval_round(&a, a.fingerprint(), frags);
        assert!(!replies[0].triplets[0].2);
        let stats = pool.cache_stats();
        assert!(stats[&0].evictions >= 1);
        assert_eq!(stats[&0].entries, 1);
    }

    #[test]
    fn identical_triplets_share_one_allocation() {
        // toy_eval yields equal triplets for any two same-width programs,
        // so the second program's miss dedups against the first's entry:
        // same Arc, `shared` counter bumped.
        let pool = pool_of(1, 16);
        let a = Arc::new(compile(&parse_query("[//a]").unwrap()));
        let b = Arc::new(compile(&parse_query("[//b]").unwrap()));
        assert_eq!(a.len(), b.len());
        let frags = vec![(SiteId(0), vec![FragmentId(0)])];
        let r1 = pool.eval_round(&a, a.fingerprint(), frags.clone());
        let r2 = pool.eval_round(&b, b.fingerprint(), frags);
        assert!(!r2[0].triplets[0].2, "distinct fingerprint: a cache miss");
        assert!(
            Arc::ptr_eq(&r1[0].triplets[0].1, &r2[0].triplets[0].1),
            "equal triplets must share one allocation"
        );
        let stats = pool.cache_stats();
        assert_eq!(stats[&0].shared, 1);
    }

    #[test]
    fn ensure_site_spawns_new_workers() {
        let mut pool = pool_of(1, 4);
        assert_eq!(pool.sites(), vec![SiteId(0)]);
        pool.ensure_site(SiteId(7));
        pool.ensure_site(SiteId(7)); // idempotent
        assert_eq!(pool.sites(), vec![SiteId(0), SiteId(7)]);
        pool.load(
            SiteId(7),
            FragmentId(3),
            Arc::new(Tree::parse("<m><a/></m>").unwrap()),
        );
        let program = q();
        let replies = pool.eval_round(
            &program,
            program.fingerprint(),
            vec![(SiteId(7), vec![FragmentId(3)])],
        );
        assert_eq!(replies[0].site, SiteId(7));
    }
}

//! The **seed** `bottomUp` evaluator, preserved over
//! [`parbox_bool::reference::RefFormula`] trees with the original
//! pairwise child accumulation — the differential-testing oracle and the
//! baseline the `expD` experiment measures the hash-consed arena against.
//!
//! This is a line-for-line port of the pre-arena implementation: the
//! accumulation loop re-flattens the growing n-ary `Or` once per child
//! (`O(k²)` over fan-out `k`), and every composition allocates a fresh
//! `Vec` + `Arc<[..]>`. Production callers use
//! [`crate::eval::bottom_up()`]; nothing outside tests and benchmarks
//! should call into this module.

use parbox_bool::reference::{RefFormula, RefTriplet};
use parbox_query::{CompiledQuery, Op, ResolvedQuery};
use parbox_xml::{FragmentId, NodeId, Tree};

/// Result of partially evaluating one fragment in the seed
/// representation.
#[derive(Debug, Clone)]
pub struct RefFragmentRun {
    /// The computed `(V, CV, DV)` triplet for the fragment root.
    pub triplet: RefTriplet,
    /// Work units: `nodes visited × |QList|` (identical accounting to
    /// [`crate::eval::bottom_up()`]).
    pub work_units: u64,
}

/// Seed-representation `bottomUp` (same spine fast path, original
/// formula kernel).
pub fn bottom_up_reference(tree: &Tree, q: &CompiledQuery) -> RefFragmentRun {
    let resolved = q.resolve(tree.labels());
    let m = resolved.len();
    let root = tree.root();
    let spine = compute_spine(tree, root);
    if !spine[root.index()] {
        let (v, cv, dv, nodes) = crate::eval::centralized::eval_vectors_at(tree, &resolved, root);
        let to_vec = |b: &crate::eval::bitset::BitSet| {
            (0..m)
                .map(|i| RefFormula::Const(b.get(i)))
                .collect::<Vec<_>>()
        };
        return RefFragmentRun {
            triplet: RefTriplet {
                v: to_vec(&v),
                cv: to_vec(&cv),
                dv: to_vec(&dv),
            },
            work_units: nodes * m as u64,
        };
    }
    let mut eval = RefEvaluator {
        tree,
        q: &resolved,
        m,
        nodes: 0,
        spine: &spine,
    };
    let (v, cv, dv) = eval.run(root);
    RefFragmentRun {
        triplet: RefTriplet { v, cv, dv },
        work_units: eval.nodes * m as u64,
    }
}

fn compute_spine(tree: &Tree, root: NodeId) -> Vec<bool> {
    let mut spine = vec![false; tree.arena_len()];
    for n in tree.postorder(root) {
        let node = tree.node(n);
        spine[n.index()] =
            node.kind.is_virtual() || node.child_ids().iter().any(|c| spine[c.index()]);
    }
    spine
}

struct RefEvaluator<'a> {
    tree: &'a Tree,
    q: &'a ResolvedQuery,
    m: usize,
    nodes: u64,
    spine: &'a [bool],
}

struct Frame {
    node: NodeId,
    child_idx: usize,
    cv: Vec<RefFormula>,
    dv: Vec<RefFormula>,
}

type Vectors = (Vec<RefFormula>, Vec<RefFormula>, Vec<RefFormula>);

impl<'a> RefEvaluator<'a> {
    fn empty_frame(&self, node: NodeId) -> Frame {
        Frame {
            node,
            child_idx: 0,
            cv: vec![RefFormula::FALSE; self.m],
            dv: vec![RefFormula::FALSE; self.m],
        }
    }

    fn run(&mut self, start: NodeId) -> Vectors {
        let mut stack = vec![self.empty_frame(start)];
        let mut done: Option<(Vec<RefFormula>, Vec<RefFormula>)> = None;
        loop {
            let frame = stack.last_mut().expect("non-empty until return");
            if let Some((v_w, dv_w)) = done.take() {
                // The seed accumulation: one binary `or` per child, which
                // re-flattens the accumulated n-ary node every time.
                for i in 0..self.m {
                    frame.cv[i] = RefFormula::or(take(&mut frame.cv[i]), v_w[i].clone());
                    frame.dv[i] = RefFormula::or(take(&mut frame.dv[i]), dv_w[i].clone());
                }
            }
            let kids = self.tree.node(frame.node).child_ids();
            if frame.child_idx < kids.len() {
                let child = kids[frame.child_idx];
                frame.child_idx += 1;
                if !self.spine[child.index()] {
                    let (v, _cv, dv, nodes) =
                        crate::eval::centralized::eval_vectors_at(self.tree, self.q, child);
                    self.nodes += nodes;
                    let to_vec = |b: &crate::eval::bitset::BitSet, m: usize| {
                        (0..m)
                            .map(|i| RefFormula::Const(b.get(i)))
                            .collect::<Vec<_>>()
                    };
                    done = Some((to_vec(&v, self.m), to_vec(&dv, self.m)));
                    continue;
                }
                let frame = self.empty_frame(child);
                stack.push(frame);
                continue;
            }
            let frame = stack.pop().expect("just peeked");
            let (v, cv, dv) = self.compute_node(frame);
            if stack.is_empty() {
                return (v, cv, dv);
            }
            done = Some((v, dv));
        }
    }

    fn compute_node(&mut self, frame: Frame) -> Vectors {
        self.nodes += 1;
        let Frame {
            node, cv, mut dv, ..
        } = frame;
        let n = self.tree.node(node);
        if let Some(frag) = n.kind.fragment() {
            return self.virtual_vectors(frag);
        }
        let mut v: Vec<RefFormula> = Vec::with_capacity(self.m);
        for (i, op) in self.q.ops.iter().enumerate() {
            let value = match op {
                Op::True => RefFormula::TRUE,
                Op::LabelIs(l) => RefFormula::Const(Some(n.label) == *l),
                Op::TextIs(s) => RefFormula::Const(n.text.as_deref() == Some(s.as_ref())),
                Op::Child(j) => cv[*j as usize].clone(),
                Op::Desc(j) => dv[*j as usize].clone(),
                Op::Or(a, b) => RefFormula::or(v[*a as usize].clone(), v[*b as usize].clone()),
                Op::And(a, b) => RefFormula::and(v[*a as usize].clone(), v[*b as usize].clone()),
                Op::Not(a) => v[*a as usize].clone().not(),
            };
            dv[i] = RefFormula::or(value.clone(), take(&mut dv[i]));
            v.push(value);
        }
        (v, cv, dv)
    }

    fn virtual_vectors(&self, frag: FragmentId) -> Vectors {
        let t = RefTriplet::fresh_vars(frag, self.m);
        (t.v, t.cv, t.dv)
    }
}

#[inline]
fn take(f: &mut RefFormula) -> RefFormula {
    std::mem::replace(f, RefFormula::FALSE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_query::{compile, parse_query};

    #[test]
    fn reference_agrees_with_production_on_closed_trees() {
        for (xml, q) in [
            ("<a><b><c>x</c></b><d/></a>", "[//c = \"x\" and //d]"),
            ("<a><b/><b><c/></b></a>", "[//b[c]]"),
            ("<r><s><t/></s></r>", "[not //q or //t]"),
        ] {
            let tree = Tree::parse(xml).unwrap();
            let compiled = compile(&parse_query(q).unwrap());
            let prod = crate::eval::bottom_up(&tree, &compiled);
            let seed = bottom_up_reference(&tree, &compiled);
            assert_eq!(
                prod.triplet.resolved().expect("closed"),
                seed.triplet.resolved().expect("closed"),
                "{xml} {q}"
            );
            assert_eq!(prod.work_units, seed.work_units);
        }
    }

    #[test]
    fn reference_agrees_on_open_fragments_under_all_small_assignments() {
        let tree = Tree::parse(r#"<a><parbox:virtual ref="1"/><b/><parbox:virtual ref="2"/></a>"#)
            .unwrap();
        let compiled = compile(&parse_query("[//b and */c]").unwrap());
        let prod = crate::eval::bottom_up(&tree, &compiled);
        let seed = bottom_up_reference(&tree, &compiled);
        for bits in 0..64u32 {
            let assign = move |v: parbox_bool::Var| {
                let h = v.frag.0 * 7 + v.sub * 3 + v.vec as u32;
                bits & (1 << (h % 6)) != 0
            };
            let p = prod
                .triplet
                .substitute(&|v| Some(parbox_bool::Formula::constant(assign(v))))
                .resolved()
                .expect("closed");
            let s = seed
                .triplet
                .substitute(&|v| Some(RefFormula::Const(assign(v))))
                .resolved()
                .expect("closed");
            assert_eq!(p, s, "assignment {bits:b}");
        }
    }
}

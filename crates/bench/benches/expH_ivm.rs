//! Criterion bench for Experiment H: an update-heavy stream (≥50% pure
//! data updates, queries from a small standing pool) through a
//! delta-maintaining engine vs the invalidate-and-recompute engine.
//! Engines are rebuilt per iteration — updates mutate the forest, so a
//! warm engine would measure a drifting document. Both arms pay the
//! identical build cost; the difference is pure maintenance strategy.

// The experiment is named expH in the issue tracker; keep the bench name.
#![allow(non_snake_case)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parbox_bench::{ft1, Scale};
use parbox_core::{Engine, EngineConfig};
use parbox_xmark::{drive_stream_with, resolve_data_update, update_heavy_workload};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = Scale {
        corpus_bytes: 96 * 1024,
        seed: 2006,
    };
    let sites = 4;
    let ops = 64;
    let stream = update_heavy_workload(ops, 4, scale.seed);

    let mut group = c.benchmark_group("expH");
    group.sample_size(10);

    for (name, delta_maintenance) in [("delta", true), ("legacy", false)] {
        group.bench_with_input(BenchmarkId::new(name, ops), &ops, |b, _| {
            b.iter(|| {
                let (forest, placement) = ft1(scale, sites);
                let mut engine = Engine::new(
                    forest,
                    placement,
                    EngineConfig {
                        max_batch: 1,
                        batch_window: Duration::ZERO,
                        delta_maintenance,
                        ..EngineConfig::default()
                    },
                )
                .expect("valid deployment");
                let report = drive_stream_with(&mut engine, &stream, resolve_data_update);
                black_box(report.answers.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The distributed query-evaluation algorithms of the paper
//! (Sections 3 and 4) plus the naive baselines they are compared against.
//!
//! All algorithms take a [`Cluster`] (fragmented document + placement +
//! network model) and a compiled query, and return an [`EvalOutcome`]:
//! the Boolean answer plus a full [`RunReport`] of visits, messages,
//! traffic, work and modeled/measured elapsed time. The reports are what
//! regenerate the paper's Fig. 4 complexity table and the runtime figures
//! of Section 6.

mod batch;
mod fulldist;
mod hybrid;
mod lazy;
mod naive;
mod parbox_algo;

pub use self::batch::{batch_query_wire_size, run_batch, BatchOutcome};
pub use self::fulldist::full_dist_parbox;
#[allow(deprecated)] // the expA-era shim stays re-exported for old callers
pub use self::hybrid::{hybrid_parbox, hybrid_prefers_parbox};
pub use self::lazy::lazy_parbox;
pub(crate) use self::lazy::partial_solve;
pub use self::naive::{naive_centralized, naive_distributed};
pub use self::parbox_algo::parbox;

use parbox_bool::{triplet_dag_wire_size, Triplet};
use parbox_net::{Cluster, RunReport};
use parbox_query::{CompiledQuery, SubQuery};

/// Result of running a distributed evaluation algorithm.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The query answer at the document root.
    pub answer: bool,
    /// Full cost accounting of the run.
    pub report: RunReport,
    /// Which algorithm produced this outcome (for harness output);
    /// `HybridParBoX` reports the branch it chose.
    pub algorithm: &'static str,
}

/// Wire size in bytes of a compiled query — the payload of the stage-1
/// broadcast. One tagged op per sub-query, labels/texts inline.
pub fn query_wire_size(q: &CompiledQuery) -> usize {
    q.subs()
        .iter()
        .map(|s| match s {
            SubQuery::True => 1,
            SubQuery::LabelIs(a) => 3 + a.len(),
            SubQuery::TextIs(t) => 3 + t.len(),
            SubQuery::Child(_) | SubQuery::Desc(_) | SubQuery::Not(_) => 5,
            SubQuery::Or(_, _) | SubQuery::And(_, _) => 9,
        })
        .sum::<usize>()
        + 4 // root id
}

/// Wire size of a *resolved* (constant) triplet, in the same DAG format
/// every other triplet message is accounted in (mixing formats would
/// skew cross-algorithm traffic comparisons): a worst-case two-entry
/// constant node table plus three rows of `width` node references.
pub fn resolved_triplet_wire_size(width: usize) -> usize {
    let mut t = Triplet::all_false(width);
    if width > 0 {
        // Force both constants into the table (the worst case).
        t.v[0] = parbox_bool::Formula::TRUE;
    }
    triplet_dag_wire_size(&t)
}

/// Convenience: wire size of a (possibly open) triplet in the DAG
/// format the algorithms account traffic in.
pub fn open_triplet_wire_size(t: &Triplet) -> usize {
    triplet_dag_wire_size(t)
}

/// Extracts the final answer from the root fragment's resolved `V`
/// vector: the value of the last query in `qL` (the root sub-query).
pub(crate) fn answer_from_resolved(
    resolved: &std::collections::HashMap<parbox_xml::FragmentId, parbox_bool::ResolvedTriplet>,
    cluster: &Cluster<'_>,
    q: &CompiledQuery,
) -> bool {
    let root = cluster.forest.root_fragment();
    resolved[&root].v[q.root() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_query::{compile, parse_query};

    #[test]
    fn query_wire_size_tracks_qlist() {
        let small = compile(&parse_query("[//a]").unwrap());
        let big = compile(&parse_query("[//aaaa/bbbb[cc/text() = \"dddd\"] and //e]").unwrap());
        assert!(query_wire_size(&big) > query_wire_size(&small));
        assert!(query_wire_size(&small) >= small.len());
    }

    #[test]
    fn resolved_triplet_size_is_linear_in_width() {
        // DAG format: 3-byte constant table + three rows of (len + refs).
        assert_eq!(resolved_triplet_wire_size(8), 6 + 3 * 8);
        assert!(resolved_triplet_wire_size(23) > resolved_triplet_wire_size(2));
        // Matches the honest encoding of an actual resolved triplet.
        let mut t = Triplet::all_false(5);
        t.dv[3] = parbox_bool::Formula::TRUE;
        assert_eq!(resolved_triplet_wire_size(5), triplet_dag_wire_size(&t));
    }
}

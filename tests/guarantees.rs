//! The paper's performance guarantees (Sections 3.2 and 4, Fig. 4),
//! checked as executable assertions over measured run reports.

use parbox::core::{
    full_dist_parbox, lazy_parbox, naive_centralized, naive_distributed, parbox, query_wire_size,
    resolved_triplet_wire_size,
};
use parbox::frag::{Forest, Placement, SiteId};
use parbox::net::{Cluster, MessageKind, NetworkModel};
use parbox::query::{compile, parse_query, CompiledQuery};
use parbox::xmark::{generate, query_with_qlist, XmarkConfig};

mod common;
use common::network_models;

/// Builds an n-fragment star over an XMark corpus (one site each).
fn star_cluster(bytes: usize, n: usize) -> (Forest, Placement) {
    let mut tree = parbox::xml::Tree::new("collection");
    let root = tree.root();
    for i in 0..n {
        let site = generate(XmarkConfig {
            target_bytes: bytes / n,
            seed: 5 + i as u64,
        });
        tree.append_tree(root, &site);
    }
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let cuts: Vec<_> = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).skip(1).collect()
    };
    for c in cuts {
        forest.split(f0, c).unwrap();
    }
    let placement = Placement::one_per_fragment(&forest);
    (forest, placement)
}

fn q8() -> CompiledQuery {
    query_with_qlist(8, 77).1
}

#[test]
fn guarantee_a_each_site_visited_once() {
    // The guarantee is behavioural: it must hold under every cost model.
    let (forest, placement) = star_cluster(60_000, 6);
    for (model_name, model) in network_models() {
        let cluster = Cluster::new(&forest, &placement, model);
        let out = parbox(&cluster, &q8());
        for (site, rep) in out.report.sites() {
            assert_eq!(
                rep.visits, 1,
                "site {site} visited {} times on {model_name}",
                rep.visits
            );
        }
    }
}

#[test]
fn guarantee_b_traffic_bounded_by_query_and_card() {
    // Total traffic ≤ card(F) × (query size + per-triplet bound), where a
    // triplet entry may carry O(card(F_j)) variables.
    let (forest, placement) = star_cluster(80_000, 8);
    let q = q8();
    for (model_name, model) in network_models() {
        let cluster = Cluster::new(&forest, &placement, model);
        let out = parbox(&cluster, &q);
        let card = forest.card();
        // Generous constant: ~40 bytes per sub-query per fragment reference.
        let per_fragment = query_wire_size(&q) + 40 * q.len() * (card + 1);
        assert!(
            out.report.total_bytes() <= card * per_fragment,
            "{} > {} on {model_name}",
            out.report.total_bytes(),
            card * per_fragment
        );
        // And, crucially: zero raw data shipped.
        assert_eq!(out.report.bytes_of_kind(MessageKind::Data), 0);
    }
}

#[test]
fn guarantee_b_traffic_independent_of_document_size() {
    let q = q8();
    for (model_name, model) in network_models() {
        let traffic = |bytes: usize| {
            let (forest, placement) = star_cluster(bytes, 5);
            let cluster = Cluster::new(&forest, &placement, model);
            parbox(&cluster, &q).report.total_bytes()
        };
        let small = traffic(30_000);
        let large = traffic(300_000);
        assert_eq!(
            small, large,
            "ParBoX traffic must not depend on |T| ({model_name})"
        );
    }
}

#[test]
fn naive_centralized_traffic_scales_with_document() {
    let q = q8();
    let traffic = |bytes: usize| {
        let (forest, placement) = star_cluster(bytes, 5);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        naive_centralized(&cluster, &q).report.total_bytes()
    };
    let small = traffic(30_000);
    let large = traffic(300_000);
    assert!(
        large > 5 * small,
        "shipping must scale with |T|: {small} -> {large}"
    );
}

#[test]
fn guarantee_c_total_work_comparable_to_centralized() {
    let (forest, placement) = star_cluster(60_000, 6);
    let whole = forest.reassemble();
    let q = q8();
    let central = parbox::core::centralized_eval_counted(&whole, &q);
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    let out = parbox(&cluster, &q);
    // Overhead: one virtual node per sub-fragment + the solve pass.
    let overhead = (q.len() * (forest.card() * 2 + forest.card())) as u64;
    assert!(out.report.total_work() >= central.work_units);
    assert!(
        out.report.total_work() <= central.work_units + overhead,
        "work {} vs centralized {} + {}",
        out.report.total_work(),
        central.work_units,
        overhead
    );
}

#[test]
fn guarantee_d_arbitrary_fragmentation_allowed() {
    // Nested fragments at different levels and wildly different sizes,
    // several per site: the algorithm imposes no constraints.
    let tree = generate(XmarkConfig {
        target_bytes: 50_000,
        seed: 3,
    });
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    // Nest: split a subtree, then split inside the new fragment twice.
    let pick = |forest: &Forest, f, skip: usize| -> Option<parbox::xml::NodeId> {
        let t = &forest.fragment(f).tree;
        let candidates: Vec<_> = t
            .descendants(t.root())
            .skip(1)
            .filter(|&n| !t.node(n).kind.is_virtual() && t.subtree_size(n) > 3)
            .collect();
        candidates
            .last()
            .copied()
            .map(|last| *candidates.get(skip).unwrap_or(&last))
    };
    let f1 = forest.split(f0, pick(&forest, f0, 0).unwrap()).unwrap();
    let f2 = forest.split(f1, pick(&forest, f1, 1).unwrap()).unwrap();
    if let Some(cut) = pick(&forest, f2, 0) {
        forest.split(f2, cut).unwrap();
    }
    if let Some(cut) = pick(&forest, f0, 5) {
        forest.split(f0, cut).unwrap();
    }
    assert!(forest.card() >= 4, "fragmentation too shallow for the test");
    forest.validate().unwrap();

    let placement = Placement::round_robin(&forest, 2); // several per site
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    let whole = forest.reassemble();
    for src in ["[//item]", "[//person and //bidder]", "[not //nothing]"] {
        let q = compile(&parse_query(src).unwrap());
        let out = parbox(&cluster, &q);
        assert_eq!(
            out.answer,
            parbox::core::centralized_eval(&whole, &q),
            "{src}"
        );
        assert!(out.report.max_visits() <= 1);
    }
}

#[test]
fn fig4_visit_counts_per_algorithm() {
    let (forest, placement) = star_cluster(60_000, 4);
    // Pile two fragments on each of two sites to distinguish per-site
    // from per-fragment visit counts.
    let mut placement2 = Placement::new();
    for (i, f) in forest.fragment_ids().enumerate() {
        placement2.assign(f, SiteId(i as u32 % 2));
    }
    drop(placement);
    let cluster = Cluster::new(&forest, &placement2, NetworkModel::lan());
    let q = q8();

    // ParBoX and NaiveCentralized: once per site.
    assert_eq!(parbox(&cluster, &q).report.max_visits(), 1);
    assert_eq!(naive_centralized(&cluster, &q).report.max_visits(), 1);
    // NaiveDistributed and FullDist: once per *fragment*.
    assert_eq!(naive_distributed(&cluster, &q).report.max_visits(), 2);
    assert_eq!(full_dist_parbox(&cluster, &q).report.max_visits(), 2);
    // Lazy visits per fragment too, but only while the answer is open; a
    // query no fragment satisfies forces the full walk.
    let open = compile(&parse_query("[//label-that-exists-nowhere]").unwrap());
    assert_eq!(lazy_parbox(&cluster, &open).report.max_visits(), 2);
}

#[test]
fn fulldist_ships_only_constant_size_triplets() {
    let (forest, placement) = star_cluster(60_000, 5);
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    let q = q8();
    let out = full_dist_parbox(&cluster, &q);
    let fixed = resolved_triplet_wire_size(q.len());
    for m in &out.report.messages {
        if m.kind == MessageKind::Triplet {
            assert_eq!(m.bytes, fixed, "variables crossed the network");
        }
    }
}

#[test]
fn lazy_never_does_more_total_work_than_eager_plus_solve() {
    let (forest, placement) = star_cluster(60_000, 6);
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    let q = q8();
    let eager = parbox(&cluster, &q);
    let lazy = lazy_parbox(&cluster, &q);
    // Lazy may re-run the solve per step, but fragment evaluation work is
    // bounded by eager's.
    let solve_slack = (q.len() * forest.card() * forest.card()) as u64;
    assert!(
        lazy.report.total_work() <= eager.report.total_work() + solve_slack,
        "lazy {} vs eager {} + {}",
        lazy.report.total_work(),
        eager.report.total_work(),
        solve_slack
    );
}

#[test]
fn modeled_runtime_reflects_shipping_costs() {
    // With a slow WAN, NaiveCentralized's modeled runtime explodes while
    // ParBoX's stays query-sized.
    let (forest, placement) = star_cluster(800_000, 5);
    let q = q8();
    let wan = Cluster::new(&forest, &placement, NetworkModel::wan());
    let pb = parbox(&wan, &q);
    let nc = naive_centralized(&wan, &q);
    assert!(
        nc.report.elapsed_model_s > 5.0 * pb.report.elapsed_model_s,
        "wan: naive {} vs parbox {}",
        nc.report.elapsed_model_s,
        pb.report.elapsed_model_s
    );
}

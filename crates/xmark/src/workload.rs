//! Mixed query/update serving workloads.
//!
//! The paper proves its guarantees per query and per update; a serving
//! deployment sees a *stream* interleaving both. [`mixed_workload`]
//! generates such a stream with the two properties real traffic has that
//! uniform random streams lack:
//!
//! * **repeats** — a configurable fraction of queries are exact repeats
//!   of earlier ones (hot queries recur across users), which is what a
//!   fingerprint-keyed triplet cache exploits;
//! * **interleaved updates** — a configurable fraction of operations are
//!   Section-5 updates, which is what forces the cache to invalidate.
//!
//! Updates are emitted as seeds and resolved against the *live* forest
//! with [`resolve_update`] at execution time (an update generated ahead
//! of time could name nodes that no longer exist by the time it runs).

use crate::queries::{batch_workload, XMARK_VOCAB};
use parbox_core::{Engine, Update};
use parbox_frag::Forest;
use parbox_query::Query;
use parbox_xml::{FragmentId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// One operation of a mixed serving stream.
#[derive(Debug, Clone)]
pub enum MixedOp {
    /// Answer this query.
    Query(Query),
    /// Apply an update; resolve it against the live forest with
    /// [`resolve_update`] using the carried seed.
    Update {
        /// Deterministic seed for [`resolve_update`].
        seed: u64,
    },
}

/// Configuration for [`mixed_workload`].
#[derive(Debug, Clone, Copy)]
pub struct MixedConfig {
    /// Total operations (queries + updates).
    pub ops: usize,
    /// Fraction of queries that exactly repeat an earlier query.
    pub repeat_fraction: f64,
    /// Fraction of operations that are updates.
    pub update_fraction: f64,
    /// RNG seed; equal configs generate identical streams.
    pub seed: u64,
}

impl MixedConfig {
    /// The serving mix of the `expC` experiment: ~20% repeated queries
    /// with one update per fifty operations.
    pub fn serving(ops: usize, seed: u64) -> MixedConfig {
        MixedConfig {
            ops,
            repeat_fraction: 0.2,
            update_fraction: 0.02,
            seed,
        }
    }
}

/// Generates a deterministic mixed query/update stream. Fresh queries
/// come from the overlapping multi-user pool of [`batch_workload`];
/// repeats re-issue a uniformly chosen earlier query verbatim.
pub fn mixed_workload(config: MixedConfig) -> Vec<MixedOp> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Draw fresh queries from the shared pool lazily, in a deterministic
    // order decoupled from the repeat/update coin flips.
    let fresh = batch_workload(config.ops, config.seed ^ 0x51ab);
    let mut next_fresh = 0usize;
    let mut issued: Vec<Query> = Vec::new();
    let mut out = Vec::with_capacity(config.ops);
    for _ in 0..config.ops {
        if rng.random_bool(config.update_fraction.clamp(0.0, 1.0)) {
            out.push(MixedOp::Update {
                seed: rng.next_u64(),
            });
            continue;
        }
        let repeat = !issued.is_empty() && rng.random_bool(config.repeat_fraction.clamp(0.0, 1.0));
        let q = if repeat {
            issued[rng.random_range(0..issued.len())].clone()
        } else {
            let q = fresh[next_fresh % fresh.len()].clone();
            next_fresh += 1;
            q
        };
        issued.push(q.clone());
        out.push(MixedOp::Query(q));
    }
    out
}

/// Resolves an update seed against the live forest into a concrete
/// Section-5 [`Update`]: mostly inserts (with XMark vocabulary labels, so
/// they can flip query answers), some subtree deletions, and an
/// occasional `splitFragments`. Returns `None` when the drawn target is
/// not updatable (e.g. deleting a fragment root) — callers simply skip
/// the operation, keeping the stream deterministic.
pub fn resolve_update(forest: &Forest, seed: u64) -> Option<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let frags: Vec<FragmentId> = forest.fragment_ids().collect();
    let frag = frags[rng.random_range(0..frags.len())];
    let tree = &forest.fragment(frag).tree;
    let nodes: Vec<NodeId> = tree
        .descendants(tree.root())
        .filter(|&n| !tree.node(n).kind.is_virtual())
        .collect();
    if nodes.is_empty() {
        return None;
    }
    let node = nodes[rng.random_range(0..nodes.len())];
    match rng.random_range(0..10u32) {
        0..=6 => {
            let label = XMARK_VOCAB[rng.random_range(0..XMARK_VOCAB.len())];
            let text = rng
                .random_bool(0.5)
                .then(|| format!("v{}", rng.random_range(0..100u32)));
            Some(Update::InsNode {
                frag,
                parent: node,
                label: label.to_string(),
                text,
            })
        }
        7..=8 => {
            if node == tree.root() || !tree.virtual_nodes(node).is_empty() {
                return None;
            }
            Some(Update::DelNode { frag, node })
        }
        _ => {
            if node == tree.root() || tree.subtree_size(node) < 2 {
                return None;
            }
            Some(Update::SplitFragments {
                frag,
                node,
                to_site: None,
            })
        }
    }
}

/// Resolves an update seed into a *pure data* update: inserts (with
/// XMark vocabulary labels) and small-subtree deletions only — never
/// `splitFragments`. Every update this resolver produces keeps the
/// fragmentation intact, so a delta-maintaining engine can take the
/// O(depth) repair path on all of them (restructuring updates fall back
/// to invalidate-and-recompute by design). Returns `None` when the drawn
/// target is not deletable; callers skip the operation.
pub fn resolve_data_update(forest: &Forest, seed: u64) -> Option<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let frags: Vec<FragmentId> = forest.fragment_ids().collect();
    let frag = frags[rng.random_range(0..frags.len())];
    let tree = &forest.fragment(frag).tree;
    let nodes: Vec<NodeId> = tree
        .descendants(tree.root())
        .filter(|&n| !tree.node(n).kind.is_virtual())
        .collect();
    if nodes.is_empty() {
        return None;
    }
    let node = nodes[rng.random_range(0..nodes.len())];
    if rng.random_range(0..10u32) <= 6 {
        let label = XMARK_VOCAB[rng.random_range(0..XMARK_VOCAB.len())];
        let text = rng
            .random_bool(0.5)
            .then(|| format!("v{}", rng.random_range(0..100u32)));
        Some(Update::InsNode {
            frag,
            parent: node,
            label: label.to_string(),
            text,
        })
    } else {
        // Deletions stay small so a long update stream keeps the document
        // near its generated size instead of eroding it.
        if node == tree.root()
            || !tree.virtual_nodes(node).is_empty()
            || tree.subtree_size(node) > 4
        {
            return None;
        }
        Some(Update::DelNode { frag, node })
    }
}

/// Generates a deterministic *update-heavy* stream: ≥50% of operations
/// are updates (resolve them with [`resolve_data_update`]), and every
/// query is drawn uniformly from a small fixed pool of `pool` queries —
/// the standing queries of an incremental-view-maintenance workload.
pub fn update_heavy_workload(ops: usize, pool: usize, seed: u64) -> Vec<MixedOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = batch_workload(pool.max(1), seed ^ 0x1e77);
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        if rng.random_bool(0.55) {
            out.push(MixedOp::Update {
                seed: rng.next_u64(),
            });
        } else {
            out.push(MixedOp::Query(
                queries[rng.random_range(0..queries.len())].clone(),
            ));
        }
    }
    out
}

/// Aggregate result of driving one mixed stream through an engine.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Query answers, in stream (submission) order.
    pub answers: Vec<bool>,
    /// Updates that resolved and were applied (unresolvable seeds skip).
    pub updates_applied: usize,
    /// Total simulated traffic: every flushed round plus update routing.
    pub bytes: usize,
    /// Answers that went out degraded (`Completeness::Partial`) —
    /// always zero without fault injection.
    pub partial_answers: usize,
}

/// Drives a [`mixed_workload`] stream through a resident engine — the
/// canonical serving loop shared by the CLI `serve` command and the
/// `expC` experiment: queries are submitted and flushed by the engine's
/// admission policy ([`Engine::poll`]), updates resolve against the live
/// forest and flush whatever is pending first, and a final flush drains
/// the tail.
pub fn drive_stream(engine: &mut Engine, stream: &[MixedOp]) -> StreamReport {
    drive_stream_with(engine, stream, resolve_update)
}

/// [`drive_stream`] with an explicit update resolver — pass
/// [`resolve_update`] for the full Section-5 mix or
/// [`resolve_data_update`] for pure data-update streams.
pub fn drive_stream_with<F>(engine: &mut Engine, stream: &[MixedOp], mut resolve: F) -> StreamReport
where
    F: FnMut(&Forest, u64) -> Option<Update>,
{
    let mut report = StreamReport::default();
    let absorb = |report: &mut StreamReport, out: Option<parbox_core::RoundOutcome>| {
        if let Some(out) = out {
            report.answers.extend(out.answers.iter().map(|&(_, a)| a));
            report.bytes += out.report.total_bytes();
            report.partial_answers += out.partial.len();
        }
    };
    for op in stream {
        match op {
            MixedOp::Query(q) => {
                engine.submit(q);
                let out = engine.poll();
                absorb(&mut report, out);
            }
            MixedOp::Update { seed } => {
                if let Some(update) = resolve(engine.forest(), *seed) {
                    let up = engine.apply(update).expect("resolved update applies");
                    report.updates_applied += 1;
                    report.bytes += up.report.total_bytes();
                    absorb(&mut report, up.flushed);
                }
            }
        }
    }
    let tail = engine.flush();
    absorb(&mut report, tail);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_xml::Tree;

    fn ops_of(stream: &[MixedOp]) -> (usize, usize) {
        let updates = stream
            .iter()
            .filter(|o| matches!(o, MixedOp::Update { .. }))
            .count();
        (stream.len() - updates, updates)
    }

    #[test]
    fn deterministic_under_seed() {
        let a = mixed_workload(MixedConfig::serving(200, 9));
        let b = mixed_workload(MixedConfig::serving(200, 9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (MixedOp::Query(p), MixedOp::Query(q)) => assert_eq!(p, q),
                (MixedOp::Update { seed: s }, MixedOp::Update { seed: t }) => assert_eq!(s, t),
                _ => panic!("streams diverged"),
            }
        }
    }

    #[test]
    fn fractions_are_respected() {
        let stream = mixed_workload(MixedConfig {
            ops: 2000,
            repeat_fraction: 0.2,
            update_fraction: 0.05,
            seed: 4,
        });
        let (queries, updates) = ops_of(&stream);
        assert_eq!(queries + updates, 2000);
        assert!((60..=140).contains(&updates), "updates: {updates}");
        // ~20% of queries repeat an earlier one exactly.
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for op in &stream {
            if let MixedOp::Query(q) = op {
                if !seen.insert(format!("{q}")) {
                    repeats += 1;
                }
            }
        }
        // The shared pool occasionally collides on its own; the floor is
        // what matters for cache-hit coverage.
        assert!(
            repeats * 100 / queries >= 15,
            "repeat rate too low: {repeats}/{queries}"
        );
    }

    #[test]
    fn resolved_updates_apply_cleanly() {
        let tree = Tree::parse(
            "<site><item><name>a</name></item><person><name>b</name></person><extra/></site>",
        )
        .unwrap();
        let mut forest = Forest::from_tree(tree);
        let root = forest.root_fragment();
        let cut = {
            let t = &forest.fragment(root).tree;
            t.children(t.root()).next().unwrap()
        };
        forest.split(root, cut).unwrap();
        let mut placement = parbox_frag::Placement::one_per_fragment(&forest);

        let mut applied = 0usize;
        for seed in 0..200u64 {
            if let Some(update) = resolve_update(&forest, seed) {
                parbox_core::apply_update_to_forest(&mut forest, &mut placement, update)
                    .expect("resolved updates are valid");
                applied += 1;
                forest.validate().unwrap();
            }
        }
        assert!(applied > 100, "most seeds resolve: {applied}");
    }

    #[test]
    fn data_updates_never_restructure() {
        let tree = Tree::parse(
            "<site><item><name>a</name></item><person><name>b</name></person><extra/></site>",
        )
        .unwrap();
        let mut forest = Forest::from_tree(tree);
        let root = forest.root_fragment();
        let cut = {
            let t = &forest.fragment(root).tree;
            t.children(t.root()).next().unwrap()
        };
        forest.split(root, cut).unwrap();
        let fragments_before = forest.fragment_ids().count();
        let mut placement = parbox_frag::Placement::one_per_fragment(&forest);

        let mut applied = 0usize;
        for seed in 0..200u64 {
            if let Some(update) = resolve_data_update(&forest, seed) {
                assert!(
                    matches!(update, Update::InsNode { .. } | Update::DelNode { .. }),
                    "data resolver produced {update:?}"
                );
                parbox_core::apply_update_to_forest(&mut forest, &mut placement, update)
                    .expect("resolved updates are valid");
                applied += 1;
            }
        }
        assert!(applied > 100, "most seeds resolve: {applied}");
        assert_eq!(
            forest.fragment_ids().count(),
            fragments_before,
            "pure data updates must not change the fragmentation"
        );
    }

    #[test]
    fn update_heavy_stream_is_mostly_updates_from_a_small_pool() {
        let stream = update_heavy_workload(2000, 4, 7);
        let (queries, updates) = ops_of(&stream);
        assert_eq!(queries + updates, 2000);
        assert!(
            updates * 100 / 2000 >= 50,
            "update-heavy stream must be ≥50% updates: {updates}"
        );
        let distinct: std::collections::HashSet<String> = stream
            .iter()
            .filter_map(|op| match op {
                MixedOp::Query(q) => Some(format!("{q}")),
                _ => None,
            })
            .collect();
        assert!(
            distinct.len() <= 4,
            "queries come from the fixed pool: {}",
            distinct.len()
        );
        // Determinism: same arguments, same stream.
        let again = update_heavy_workload(2000, 4, 7);
        assert_eq!(stream.len(), again.len());
    }
}

//! Boolean formulas — the *partial answers* of ParBoX.
//!
//! A formula is either a constant, a [`Var`], or a Boolean combination.
//! Construction goes through smart constructors that implement the
//! paper's `compFm` procedure (Fig. 3b): composing a constant with a
//! formula folds immediately (`true ∧ f = f`, `false ∧ f = false`, …), so
//! a formula only retains structure that genuinely depends on unknown
//! sub-fragment values.
//!
//! Since the hash-consed arena rework, a [`Formula`] is a `Copy` handle
//! (a [`FormulaId`]) into the process-wide [`crate::arena`]: equality and
//! hashing are `O(1)` id comparisons, identical subformulas are stored
//! once and shared as a DAG, `size`/[`Formula::closed`] read metadata
//! cached at interning, and [`Formula::substitute`]/[`Formula::eval`] are
//! memoized single passes over the DAG. `And`/`Or` remain n-ary and
//! flattened (operands additionally sorted and deduplicated), keeping
//! formula size linear in the number of referenced virtual nodes — the
//! paper's `O(card(F_j))` bound on entry size.
//!
//! The arena itself is sharded (see [`crate::arena`]): constructors
//! intern through a thread-local cache and a hash-selected shard lock,
//! so concurrent site actors building unrelated formulas do not
//! serialize on a single mutex, while snapshots and metadata reads are
//! entirely lock-free.
//!
//! The previous tree representation is preserved verbatim in
//! [`crate::reference`] as a differential-testing oracle and the baseline
//! of the `expD` benchmark.

use crate::arena::{self, DagNode, Node};
use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt;

pub use crate::arena::{ArenaStats, FormulaId, ShardCounters, SHARD_COUNT};

/// A Boolean formula over sub-fragment variables — a cheap `Copy` handle
/// into the hash-consing arena. Two handles are equal iff the formulas
/// are structurally identical (canonical form makes this sound).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Formula(FormulaId);

/// The Boolean operator argument of [`comp_fm`], mirroring the paper's
/// `AND`, `OR`, `NEG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Negation (unary; the second operand is ignored).
    Neg,
}

/// The paper's `compFm(f1, f2, op)`: composes two partial answers,
/// folding constants so the result is a truth value whenever possible.
pub fn comp_fm(f1: Formula, f2: Formula, op: BoolOp) -> Formula {
    match op {
        BoolOp::Neg => f1.not(),
        BoolOp::And => Formula::and(f1, f2),
        BoolOp::Or => Formula::or(f1, f2),
    }
}

/// A structural view of a formula's top node, cloned out of the arena
/// for pattern matching ([`Formula::node`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaNode {
    /// A known truth value.
    Const(bool),
    /// An unknown triplet entry of a sub-fragment.
    Var(Var),
    /// Negation.
    Not(Formula),
    /// N-ary conjunction (canonical: ≥ 2 sorted, distinct operands).
    And(Vec<Formula>),
    /// N-ary disjunction (canonical: ≥ 2 sorted, distinct operands).
    Or(Vec<Formula>),
}

impl Formula {
    /// The constant `true`.
    pub const TRUE: Formula = Formula(arena::TRUE_ID);
    /// The constant `false`.
    pub const FALSE: Formula = Formula(arena::FALSE_ID);

    /// The id naming this formula in the arena — stable for the life of
    /// the process, suitable as an `O(1)` cache key.
    #[inline]
    pub fn id(self) -> FormulaId {
        self.0
    }

    /// A constant formula.
    #[inline]
    pub fn constant(b: bool) -> Formula {
        if b {
            Formula::TRUE
        } else {
            Formula::FALSE
        }
    }

    /// A variable formula.
    #[inline]
    pub fn var(v: Var) -> Formula {
        Formula(arena::mk_var(v))
    }

    /// Interns a batch of variable formulas — `bottomUp` mints
    /// `3·|QList|` fresh variables per virtual node. Repeats hit the
    /// thread-local intern cache, so the batch touches each variable's
    /// shard lock at most once per thread lifetime.
    pub fn var_many<I: IntoIterator<Item = Var>>(vars: I) -> Vec<Formula> {
        vars.into_iter().map(Formula::var).collect()
    }

    /// Smart conjunction with constant folding and flattening.
    pub fn and(a: Formula, b: Formula) -> Formula {
        // Constant cases fold without touching the arena at all.
        match (a, b) {
            (Formula::FALSE, _) | (_, Formula::FALSE) => Formula::FALSE,
            (Formula::TRUE, f) | (f, Formula::TRUE) => f,
            (a, b) => Formula(arena::mk_nary(true, [a.0, b.0])),
        }
    }

    /// Smart disjunction with constant folding and flattening.
    pub fn or(a: Formula, b: Formula) -> Formula {
        match (a, b) {
            (Formula::TRUE, _) | (_, Formula::TRUE) => Formula::TRUE,
            (Formula::FALSE, f) | (f, Formula::FALSE) => f,
            (a, b) => Formula(arena::mk_nary(false, [a.0, b.0])),
        }
    }

    /// Smart negation (double negation and constants fold).
    /// Named after the paper's `NEG`; an owned-`self` combinator rather
    /// than `std::ops::Not` so call sites chain like the other builders.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::TRUE => Formula::FALSE,
            Formula::FALSE => Formula::TRUE,
            f => Formula(arena::mk_not(f.0)),
        }
    }

    /// N-ary disjunction of an iterator (absorbs constants). One arena
    /// interning for the whole operand list — `O(k log k)` for fan-out
    /// `k`, unlike a fold of binary [`Formula::or`]s which re-flattens
    /// the accumulator per operand (`O(k²)`). No lock is held while the
    /// iterator runs, so items may themselves build formulas.
    pub fn any<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        Formula(arena::mk_nary(false, items.into_iter().map(|f| f.0)))
    }

    /// N-ary conjunction of an iterator (absorbs constants); single
    /// interning, like [`Formula::any`].
    pub fn all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        Formula(arena::mk_nary(true, items.into_iter().map(|f| f.0)))
    }

    /// True when the formula is a constant. The paper's `isFormula(f)`
    /// predicate is the negation of this. `O(1)`, lock-free.
    #[inline]
    pub fn is_const(&self) -> bool {
        *self == Formula::TRUE || *self == Formula::FALSE
    }

    /// The constant value, if fully evaluated. `O(1)`, lock-free.
    #[inline]
    pub fn as_const(&self) -> Option<bool> {
        match *self {
            Formula::TRUE => Some(true),
            Formula::FALSE => Some(false),
            _ => None,
        }
    }

    /// Number of nodes of the formula's *tree expansion* (shared
    /// subformulas counted once per occurrence, saturating); proxy for
    /// the size a tree representation would occupy. Cached at interning —
    /// `O(1)` per call.
    pub fn size(&self) -> usize {
        usize::try_from(arena::size_of(self.0)).unwrap_or(usize::MAX)
    }

    /// The set of variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<Var> {
        let dag = arena::snapshot(&[self.0]);
        let mut out = BTreeSet::new();
        for node in &dag.nodes {
            if let DagNode::Var(v) = node {
                out.insert(*v);
            }
        }
        out
    }

    /// True when the formula references at least one variable. Cached at
    /// interning — `O(1)` per call, no set materialized.
    #[inline]
    pub fn has_free_vars(&self) -> bool {
        if self.is_const() {
            return false;
        }
        arena::has_vars(self.0)
    }

    /// True when the formula references no variables. By canonical
    /// construction a variable-free formula is always a constant, so this
    /// is equivalent to [`Formula::is_const`] — but it is spelled against
    /// the cached `has_free_vars` bit so the equivalence is checked, not
    /// assumed, in debug builds.
    pub fn closed(&self) -> bool {
        let closed = !self.has_free_vars();
        debug_assert_eq!(closed, self.is_const());
        closed
    }

    /// A structural view of the top node, for pattern matching.
    pub fn node(&self) -> FormulaNode {
        match arena::node(self.0) {
            Node::Const(b) => FormulaNode::Const(*b),
            Node::Var(v) => FormulaNode::Var(*v),
            Node::Not(x) => FormulaNode::Not(Formula(*x)),
            Node::And(xs) => FormulaNode::And(xs.iter().map(|&x| Formula(x)).collect()),
            Node::Or(xs) => FormulaNode::Or(xs.iter().map(|&x| Formula(x)).collect()),
        }
    }

    /// Substitutes variables using `lookup`, re-simplifying along the
    /// way. Variables for which `lookup` returns `None` remain free.
    ///
    /// One memoized pass over the shared DAG: every distinct subformula
    /// is rebuilt once and `lookup` is consulted once per distinct
    /// variable, regardless of how often either occurs in the tree
    /// expansion.
    pub fn substitute<F>(&self, lookup: &F) -> Formula
    where
        F: Fn(Var) -> Option<Formula>,
    {
        Self::substitute_all(std::slice::from_ref(self), lookup)[0]
    }

    /// [`Formula::substitute`] over several formulas at once, sharing one
    /// snapshot and one memo table — the coordinator substitutes all
    /// `3·|QList|` entries of a triplet in a single DAG pass.
    pub fn substitute_all<F>(fs: &[Formula], lookup: &F) -> Vec<Formula>
    where
        F: Fn(Var) -> Option<Formula>,
    {
        // Fast path: nothing to substitute into.
        if fs.iter().all(|f| f.is_const()) {
            return fs.to_vec();
        }
        let roots: Vec<FormulaId> = fs.iter().map(|f| f.0).collect();
        let dag = arena::snapshot(&roots);
        // One lookup per *distinct* variable node, regardless of how
        // often it occurs in the tree expansion.
        let replacements: Vec<Option<Formula>> = dag
            .nodes
            .iter()
            .map(|node| match node {
                DagNode::Var(v) => lookup(*v),
                _ => None,
            })
            .collect();
        // Rebuild bottom-up; `memo[i]` is the substituted formula of
        // local node `i`. Re-interning unchanged subformulas mostly hits
        // the thread-local intern cache.
        let mut memo: Vec<FormulaId> = Vec::with_capacity(dag.nodes.len());
        for (i, node) in dag.nodes.iter().enumerate() {
            let id = match node {
                DagNode::Const(b) => arena::mk_const(*b),
                DagNode::Var(v) => match replacements[i] {
                    Some(repl) => repl.0,
                    None => arena::mk_var(*v),
                },
                DagNode::Not(x) => arena::mk_not(memo[*x as usize]),
                DagNode::And(r) => {
                    arena::mk_nary(true, dag.ops(r).iter().map(|&x| memo[x as usize]))
                }
                DagNode::Or(r) => {
                    arena::mk_nary(false, dag.ops(r).iter().map(|&x| memo[x as usize]))
                }
            };
            memo.push(id);
        }
        dag.roots
            .iter()
            .map(|&r| Formula(memo[r as usize]))
            .collect()
    }

    /// Evaluates the formula under a total assignment. One memoized pass
    /// over the shared DAG; the snapshot is lock-free and `assign` runs
    /// against local data only.
    pub fn eval<F>(&self, assign: &F) -> bool
    where
        F: Fn(Var) -> bool,
    {
        if let Some(b) = self.as_const() {
            return b;
        }
        let dag = arena::snapshot(&[self.0]);
        let mut memo: Vec<bool> = Vec::with_capacity(dag.nodes.len());
        for node in &dag.nodes {
            let v = match node {
                DagNode::Const(b) => *b,
                DagNode::Var(v) => assign(*v),
                DagNode::Not(x) => !memo[*x as usize],
                DagNode::And(r) => dag.ops(r).iter().all(|&x| memo[x as usize]),
                DagNode::Or(r) => dag.ops(r).iter().any(|&x| memo[x as usize]),
            };
            memo.push(v);
        }
        memo[dag.roots[0] as usize]
    }

    /// Arena occupancy and intern-path counters (per shard, plus
    /// thread-local cache hits) — used by regression tests to assert
    /// construction-cost bounds and by `expD`/`expF` reporting.
    pub fn arena_stats() -> ArenaStats {
        arena::stats()
    }

    /// Snapshot of the DAG reachable from `roots` (crate-internal; the
    /// wire encoder and renderer traverse snapshots, never the arena).
    pub(crate) fn snapshot_many(roots: &[Formula]) -> crate::arena::Dag {
        let ids: Vec<FormulaId> = roots.iter().map(|f| f.0).collect();
        arena::snapshot(&ids)
    }
}

impl From<bool> for Formula {
    fn from(b: bool) -> Self {
        Formula::constant(b)
    }
}

impl From<Var> for Formula {
    fn from(v: Var) -> Self {
        Formula::var(v)
    }
}

impl fmt::Display for Formula {
    /// Renders the tree expansion in the paper's notation. Iterative
    /// (explicit work stack), so deep chains cannot overflow the call
    /// stack; output length equals the tree-expansion size.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        render(*self, f)
    }
}

impl fmt::Debug for Formula {
    /// Debug output matches `Display` — a rendered formula reads better
    /// in assertion failures than an opaque arena id.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        render(*self, f)
    }
}

/// Iterative renderer over a DAG snapshot.
fn render(formula: Formula, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let dag = Formula::snapshot_many(&[formula]);
    enum Tok {
        Node(u32),
        Lit(&'static str),
    }
    let mut stack = vec![Tok::Node(dag.roots[0])];
    while let Some(tok) = stack.pop() {
        match tok {
            Tok::Lit(s) => f.write_str(s)?,
            Tok::Node(ix) => match &dag.nodes[ix as usize] {
                DagNode::Const(b) => f.write_str(if *b { "1" } else { "0" })?,
                DagNode::Var(v) => write!(f, "{v}")?,
                DagNode::Not(x) => {
                    f.write_str("¬(")?;
                    stack.push(Tok::Lit(")"));
                    stack.push(Tok::Node(*x));
                }
                DagNode::And(r) | DagNode::Or(r) => {
                    let sep = if matches!(&dag.nodes[ix as usize], DagNode::And(_)) {
                        " ∧ "
                    } else {
                        " ∨ "
                    };
                    f.write_str("(")?;
                    stack.push(Tok::Lit(")"));
                    for (k, &x) in dag.ops(r).iter().enumerate().rev() {
                        stack.push(Tok::Node(x));
                        if k > 0 {
                            stack.push(Tok::Lit(sep));
                        }
                    }
                }
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VecKind;
    use parbox_xml::FragmentId;

    fn v(i: u32) -> Formula {
        Formula::var(Var::new(FragmentId(i), VecKind::V, 0))
    }

    #[test]
    fn constant_folding_and() {
        assert_eq!(Formula::and(Formula::TRUE, v(1)), v(1));
        assert_eq!(Formula::and(v(1), Formula::TRUE), v(1));
        assert_eq!(Formula::and(Formula::FALSE, v(1)), Formula::FALSE);
        assert_eq!(Formula::and(v(1), Formula::FALSE), Formula::FALSE);
        assert_eq!(Formula::and(Formula::TRUE, Formula::FALSE), Formula::FALSE);
    }

    #[test]
    fn constant_folding_or() {
        assert_eq!(Formula::or(Formula::FALSE, v(1)), v(1));
        assert_eq!(Formula::or(v(1), Formula::FALSE), v(1));
        assert_eq!(Formula::or(Formula::TRUE, v(1)), Formula::TRUE);
        assert_eq!(Formula::or(v(1), Formula::TRUE), Formula::TRUE);
    }

    #[test]
    fn comp_fm_matches_paper_cases() {
        // (c0) two constants.
        assert_eq!(
            comp_fm(Formula::TRUE, Formula::TRUE, BoolOp::And),
            Formula::TRUE
        );
        assert_eq!(
            comp_fm(Formula::TRUE, Formula::FALSE, BoolOp::And),
            Formula::FALSE
        );
        // (c1) constant, formula.
        assert_eq!(comp_fm(Formula::TRUE, v(1), BoolOp::And), v(1));
        assert_eq!(comp_fm(Formula::FALSE, v(1), BoolOp::And), Formula::FALSE);
        assert_eq!(comp_fm(Formula::TRUE, v(1), BoolOp::Or), Formula::TRUE);
        assert_eq!(comp_fm(Formula::FALSE, v(1), BoolOp::Or), v(1));
        // (c2) formula, constant — symmetric.
        assert_eq!(comp_fm(v(1), Formula::TRUE, BoolOp::And), v(1));
        assert_eq!(comp_fm(v(1), Formula::FALSE, BoolOp::Or), v(1));
        // (c3) two formulas — structure retained.
        let f = comp_fm(v(1), v(2), BoolOp::And);
        assert!(matches!(f.node(), FormulaNode::And(_)));
        // NEG ignores the second operand.
        assert_eq!(comp_fm(Formula::TRUE, v(9), BoolOp::Neg), Formula::FALSE);
    }

    #[test]
    fn nary_flattening() {
        let f = Formula::and(Formula::and(v(1), v(2)), v(3));
        let FormulaNode::And(xs) = f.node() else {
            panic!("{f}")
        };
        assert_eq!(xs.len(), 3);
        let g = Formula::or(v(1), Formula::or(v(2), v(3)));
        let FormulaNode::Or(xs) = g.node() else {
            panic!("{g}")
        };
        assert_eq!(xs.len(), 3);
    }

    #[test]
    fn hash_consing_makes_equality_id_equality() {
        // The same formula built twice, in different operand order, is
        // the same arena node.
        let a = Formula::and(Formula::or(v(1), v(2)), v(3).not());
        let b = Formula::and(v(3).not(), Formula::or(v(2), v(1)));
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        // Duplicate operands collapse.
        assert_eq!(Formula::and(v(1), v(1)), v(1));
        assert_eq!(Formula::any([v(2), v(1), v(2)]), Formula::or(v(1), v(2)));
    }

    #[test]
    fn double_negation_folds() {
        assert_eq!(v(1).not().not(), v(1));
        assert_eq!(Formula::TRUE.not(), Formula::FALSE);
    }

    #[test]
    fn any_and_all_absorb() {
        assert_eq!(Formula::any(vec![]), Formula::FALSE);
        assert_eq!(Formula::all(vec![]), Formula::TRUE);
        assert_eq!(Formula::any(vec![Formula::FALSE, v(2)]), v(2));
        assert_eq!(Formula::all(vec![Formula::TRUE, v(2)]), v(2));
        assert_eq!(Formula::any(vec![v(1), Formula::TRUE]), Formula::TRUE);
        assert_eq!(Formula::all(vec![v(1), Formula::FALSE]), Formula::FALSE);
    }

    #[test]
    fn vars_collects_all() {
        let f = Formula::and(Formula::or(v(1), v(2)), v(3).not());
        let vs = f.vars();
        assert_eq!(vs.len(), 3);
    }

    #[test]
    fn closed_without_materializing_vars() {
        assert!(Formula::TRUE.closed());
        assert!(!v(1).closed());
        assert!(!Formula::or(v(1), v(2)).closed());
        assert!(v(1).has_free_vars());
        assert!(!Formula::FALSE.has_free_vars());
    }

    #[test]
    fn substitution_resolves_and_simplifies() {
        // (v1 ∨ v2) ∧ ¬v3 with v1=false, v2=true, v3=false → true.
        let f = Formula::and(Formula::or(v(1), v(2)), v(3).not());
        let g = f.substitute(&|var: Var| match var.frag.0 {
            1 => Some(Formula::FALSE),
            2 => Some(Formula::TRUE),
            3 => Some(Formula::FALSE),
            _ => None,
        });
        assert_eq!(g, Formula::TRUE);
    }

    #[test]
    fn partial_substitution_leaves_free_vars() {
        let f = Formula::or(v(1), v(2));
        let g = f.substitute(&|var: Var| (var.frag.0 == 1).then_some(Formula::FALSE));
        assert_eq!(g, v(2));
        let h = f.substitute(&|var: Var| (var.frag.0 == 1).then_some(Formula::TRUE));
        assert_eq!(h, Formula::TRUE);
    }

    #[test]
    fn substitute_all_shares_one_memo() {
        let fs = [Formula::or(v(1), v(2)), Formula::and(v(1), v(2)), v(1)];
        let out =
            Formula::substitute_all(&fs, &|var: Var| Some(Formula::constant(var.frag.0 == 1)));
        assert_eq!(out, vec![Formula::TRUE, Formula::FALSE, Formula::TRUE]);
    }

    #[test]
    fn eval_total_assignment() {
        let f = Formula::and(v(1), v(2).not());
        assert!(f.eval(&|var: Var| var.frag.0 == 1));
        assert!(!f.eval(&|_| true));
    }

    #[test]
    fn size_counts_tree_expansion_nodes() {
        assert_eq!(Formula::TRUE.size(), 1);
        assert_eq!(v(1).size(), 1);
        assert_eq!(Formula::and(v(1), v(2)).size(), 3);
        assert_eq!(Formula::and(v(1), v(2)).not().size(), 4);
        // Shared subformulas count once per occurrence:
        // And[¬(v1∨v2), (v1∨v2∨v3)] — the second Or flattens.
        let shared = Formula::or(v(1), v(2));
        let f = Formula::and(shared.not(), Formula::or(shared, v(3)));
        assert_eq!(f.size(), 1 + (1 + 3) + 4);
    }

    #[test]
    fn display_uses_paper_notation() {
        let f = Formula::or(v(1), v(2).not());
        let s = f.to_string();
        // Operand order is canonical (by arena id), so accept either.
        assert!(
            s == "(x1@F1 ∨ ¬(x1@F2))" || s == "(¬(x1@F2) ∨ x1@F1)",
            "{s}"
        );
        assert_eq!(Formula::TRUE.to_string(), "1");
        assert_eq!(v(1).not().to_string(), "¬(x1@F1)");
    }

    #[test]
    fn substitution_with_open_replacements() {
        // Replacement formulas may themselves be open.
        let f = Formula::and(v(1), v(2));
        let g = f.substitute(&|var: Var| (var.frag.0 == 1).then(|| Formula::or(v(3), v(4))));
        assert_eq!(g, Formula::all([Formula::or(v(3), v(4)), v(2)]));
    }

    #[test]
    fn arena_stats_monotone() {
        let before = Formula::arena_stats();
        let _ = Formula::any((0..16).map(v));
        let after = Formula::arena_stats();
        assert!(after.nodes >= before.nodes);
        assert!(after.operand_slots >= before.operand_slots);
    }
}

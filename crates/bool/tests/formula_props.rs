//! Property-based tests of the formula algebra: the smart constructors
//! must be *sound* simplifications (same truth table as the naive
//! connectives), substitution must commute with evaluation, both wire
//! encodings must be lossless — and, since the hash-consing arena
//! rework, arena-built formulas must `eval`, `substitute` and resolve
//! **identically to the seed tree semantics** preserved in
//! [`parbox_bool::reference`].

use bytes::BytesMut;
use parbox_bool::reference::{RefFormula, RefTriplet};
use parbox_bool::{
    comp_fm, decode_formula, decode_formula_dag, decode_triplet_dag, encode_formula,
    encode_formula_dag, encode_triplet_dag, BoolOp, Formula, Triplet, Var, VecKind,
};
use parbox_xml::FragmentId;
use proptest::prelude::*;

/// A small pool of variables so random assignments are meaningful.
fn var_pool() -> Vec<Var> {
    let mut out = Vec::new();
    for f in 0..3u32 {
        for (k, vec) in [VecKind::V, VecKind::CV, VecKind::DV]
            .into_iter()
            .enumerate()
        {
            out.push(Var::new(FragmentId(f), vec, k as u32));
        }
    }
    out
}

/// Random *seed* formulas; the matching arena formula is derived with
/// [`RefFormula::to_arena`], which mirrors the construction step by step
/// through the arena's smart constructors.
fn ref_strategy() -> impl Strategy<Value = RefFormula> {
    let pool = var_pool();
    let leaf = prop_oneof![
        Just(RefFormula::TRUE),
        Just(RefFormula::FALSE),
        (0..pool.len()).prop_map(move |i| RefFormula::Var(pool[i])),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RefFormula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RefFormula::or(a, b)),
            inner.clone().prop_map(RefFormula::not),
        ]
    })
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    ref_strategy().prop_map(|rf| rf.to_arena())
}

/// Deterministic assignment derived from a seed byte.
fn assignment(seed: u8) -> impl Fn(Var) -> bool {
    move |v: Var| {
        let h = v.frag.0 as u8
            ^ (v.sub as u8)
            ^ match v.vec {
                VecKind::V => 0,
                VecKind::CV => 1,
                VecKind::DV => 2,
            };
        (h ^ seed).count_ones().is_multiple_of(2)
    }
}

/// Deterministic *partial* substitution: maps a variable to `true`,
/// `false` or leaves it free, by seed.
fn partial(seed: u8) -> impl Fn(Var) -> Option<bool> {
    let assign = assignment(seed);
    move |v: Var| match (v.frag.0 + v.sub + seed as u32) % 3 {
        0 => None,
        _ => Some(assign(v)),
    }
}

proptest! {
    #[test]
    fn smart_constructors_preserve_truth(a in formula_strategy(), b in formula_strategy(), seed: u8) {
        let assign = assignment(seed);
        prop_assert_eq!(Formula::and(a, b).eval(&assign), a.eval(&assign) && b.eval(&assign));
        prop_assert_eq!(Formula::or(a, b).eval(&assign), a.eval(&assign) || b.eval(&assign));
        prop_assert_eq!(a.not().eval(&assign), !a.eval(&assign));
    }

    #[test]
    fn comp_fm_matches_connectives(a in formula_strategy(), b in formula_strategy(), seed: u8) {
        let assign = assignment(seed);
        prop_assert_eq!(
            comp_fm(a, b, BoolOp::And).eval(&assign),
            a.eval(&assign) && b.eval(&assign)
        );
        prop_assert_eq!(
            comp_fm(a, b, BoolOp::Or).eval(&assign),
            a.eval(&assign) || b.eval(&assign)
        );
        prop_assert_eq!(comp_fm(a, b, BoolOp::Neg).eval(&assign), !a.eval(&assign));
    }

    #[test]
    fn total_substitution_equals_evaluation(f in formula_strategy(), seed: u8) {
        let assign = assignment(seed);
        let substituted = f.substitute(&|v| Some(Formula::constant(assign(v))));
        prop_assert_eq!(substituted.as_const(), Some(f.eval(&assign)));
    }

    #[test]
    fn partial_then_rest_equals_total(f in formula_strategy(), seed: u8) {
        // Substituting fragment 0's variables first, then the rest, must
        // agree with direct evaluation (unification order irrelevance —
        // the paper's "order is of no consequence" remark).
        let assign = assignment(seed);
        let phase1 = f.substitute(&|v| {
            (v.frag == FragmentId(0)).then(|| Formula::constant(assign(v)))
        });
        let phase2 = phase1.substitute(&|v| Some(Formula::constant(assign(v))));
        prop_assert_eq!(phase2.as_const(), Some(f.eval(&assign)));
    }

    #[test]
    fn constants_are_fully_folded(a in formula_strategy()) {
        // A formula without variables must be a constant (compFm folds
        // eagerly, so open structure implies open variables).
        let closed = a.substitute(&|_| Some(Formula::FALSE));
        prop_assert!(closed.is_const());
        // The cached has_free_vars bit agrees.
        prop_assert!(closed.closed());
        prop_assert_eq!(a.closed(), a.vars().is_empty());
    }

    #[test]
    fn encoding_round_trips(f in formula_strategy()) {
        let mut buf = BytesMut::new();
        encode_formula(&f, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_formula(&mut bytes).unwrap();
        prop_assert_eq!(back, f);
        prop_assert_eq!(bytes.len(), 0);
    }

    #[test]
    fn dag_encoding_round_trips(f in formula_strategy()) {
        let mut buf = BytesMut::new();
        encode_formula_dag(&f, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_formula_dag(&mut bytes).unwrap();
        prop_assert_eq!(back, f);
        prop_assert_eq!(bytes.len(), 0);
    }

    #[test]
    fn size_bounds_wire_size(f in formula_strategy()) {
        let mut buf = BytesMut::new();
        encode_formula(&f, &mut buf);
        // Each tree node costs at most 13 bytes on the wire (var = 10,
        // n-ary header = 5) and at least 1.
        prop_assert!(buf.len() <= 13 * f.size());
        prop_assert!(buf.len() >= f.size());
    }

    #[test]
    fn vars_is_sound(f in formula_strategy(), seed: u8) {
        // Flipping a variable NOT in vars() never changes the value.
        let vars = f.vars();
        let assign = assignment(seed);
        for probe in var_pool() {
            if vars.contains(&probe) {
                continue;
            }
            let flipped = |v: Var| if v == probe { !assign(v) } else { assign(v) };
            prop_assert_eq!(f.eval(&assign), f.eval(&flipped));
        }
    }

    // ---- arena vs seed oracle -------------------------------------------

    #[test]
    fn arena_eval_matches_seed(rf in ref_strategy(), seed: u8) {
        let f = rf.to_arena();
        let assign = assignment(seed);
        prop_assert_eq!(f.eval(&assign), rf.eval(&assign));
    }

    #[test]
    fn arena_substitute_matches_seed(rf in ref_strategy(), seed: u8, probe: u8) {
        // The same partial substitution applied in both representations
        // must yield semantically identical results, resolve to the same
        // constant (or stay open together), and agree on free variables.
        let f = rf.to_arena();
        let lookup = partial(seed);
        let f_sub = f.substitute(&|v| lookup(v).map(Formula::constant));
        let rf_sub = rf.substitute(&|v| lookup(v).map(RefFormula::Const));
        prop_assert_eq!(f_sub.as_const(), rf_sub.as_const());
        prop_assert_eq!(f_sub.vars(), rf_sub.vars());
        let assign = assignment(probe);
        prop_assert_eq!(f_sub.eval(&assign), rf_sub.eval(&assign));
    }

    #[test]
    fn arena_vars_and_size_match_seed(rf in ref_strategy()) {
        let f = rf.to_arena();
        prop_assert_eq!(f.vars(), rf.vars());
        // Canonicalization (dedup, double-negation, constant folds) can
        // only shrink the tree expansion, never grow it.
        prop_assert!(f.size() <= rf.size(), "arena {} > seed {}", f.size(), rf.size());
    }

    #[test]
    fn arena_triplet_resolves_like_seed(
        a in ref_strategy(), b in ref_strategy(), c in ref_strategy(), seed: u8
    ) {
        // A triplet substituted to closedness resolves to the same truth
        // values in both representations.
        let rt = RefTriplet {
            v: vec![a.clone()],
            cv: vec![b.clone()],
            dv: vec![c.clone()],
        };
        let t = Triplet {
            v: vec![a.to_arena()],
            cv: vec![b.to_arena()],
            dv: vec![c.to_arena()],
        };
        let assign = assignment(seed);
        let rt_closed = rt.substitute(&|v| Some(RefFormula::Const(assign(v))));
        let t_closed = t.substitute(&|v| Some(Formula::constant(assign(v))));
        prop_assert_eq!(t_closed.resolved(), rt_closed.resolved());
        prop_assert!(t_closed.is_closed());
    }

    #[test]
    fn sharded_interning_is_deterministic_and_matches_seed(rf in ref_strategy(), seed: u8) {
        // Sharded interning must canonicalize identically no matter
        // which thread (and therefore which thread-local cache) builds
        // the formula: the id is a pure function of the structure.
        let here = rf.to_arena();
        let again = rf.to_arena();
        prop_assert_eq!(here.id(), again.id(), "rebuild on the same thread");
        let rf2 = rf.clone();
        let there = std::thread::spawn(move || rf2.to_arena().id())
            .join()
            .expect("builder thread");
        prop_assert_eq!(here.id(), there, "rebuild on a fresh thread");
        // And the interned formula stays structurally equivalent to the
        // seed oracle: same truth table over the variable pool.
        let assign = assignment(seed);
        prop_assert_eq!(here.eval(&assign), rf.eval(&assign));
        prop_assert_eq!(here.vars(), rf.vars());
    }

    #[test]
    fn dag_triplet_round_trips(
        a in ref_strategy(), b in ref_strategy(), c in ref_strategy()
    ) {
        let t = Triplet {
            v: vec![a.to_arena(), b.to_arena()],
            cv: vec![c.to_arena(), a.to_arena()],
            dv: vec![Formula::or(a.to_arena(), c.to_arena()), b.to_arena()],
        };
        let mut buf = BytesMut::new();
        encode_triplet_dag(&t, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_triplet_dag(&mut bytes).unwrap();
        prop_assert_eq!(back, t);
        prop_assert_eq!(bytes.len(), 0);
    }
}

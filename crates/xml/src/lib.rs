#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # parbox-xml
//!
//! Arena-based XML tree storage for the ParBoX distributed XPath engine.
//!
//! This crate provides the data-model substrate assumed by the paper
//! *Using Partial Evaluation in Distributed Query Evaluation* (VLDB 2006):
//! an ordered, labelled tree in which each node carries a tag (label), an
//! optional text value, and optional attributes. A node may also be
//! **virtual**: a leaf that stands for the root of a *sub-fragment* stored
//! elsewhere (Section 2.1 of the paper).
//!
//! The model intentionally follows the paper rather than the full XML
//! infoset: the direct character data of an element is attached to the
//! element node itself (`Node::text`), which is exactly what the XBL
//! predicate `p/text() = "str"` inspects.
//!
//! ## Quick example
//!
//! ```
//! use parbox_xml::Tree;
//!
//! let tree = Tree::parse("<a><b>hi</b><c/></a>").unwrap();
//! let root = tree.root();
//! assert_eq!(tree.label_str(root), "a");
//! assert_eq!(tree.children(root).count(), 2);
//! let b = tree.children(root).next().unwrap();
//! assert_eq!(tree.node(b).text.as_deref(), Some("hi"));
//! ```

mod error;
mod label;
mod node;
mod parser;
mod tree;
mod writer;

pub mod iter;

pub use error::XmlError;
pub use label::{LabelId, LabelTable};
pub use node::{Node, NodeId, NodeKind};
pub use parser::{parse_str, ParseOptions};
pub use tree::Tree;
pub use writer::{write_tree, WriteOptions};

/// Identifier of a fragment, used by virtual nodes to reference the
/// sub-fragment they stand for. Defined here (rather than in `parbox-frag`)
/// because virtual nodes live inside trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FragmentId(pub u32);

impl FragmentId {
    /// Index form, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FragmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.0)
    }
}

//! Property-based equivalence: for random documents, random
//! fragmentations and random XBL queries, every distributed algorithm
//! must return exactly the centralized evaluator's answer.

// This file is an expA-era caller the deprecated HybridParBoX shim
// explicitly keeps compiling.
#![allow(deprecated)]

use parbox::core::{
    centralized_eval, full_dist_parbox, hybrid_parbox, lazy_parbox, naive_centralized,
    naive_distributed, parbox,
};
use parbox::frag::Placement;
use parbox::net::{Cluster, NetworkModel};
use parbox::query::compile;
use parbox::xml::Tree;
use proptest::prelude::*;

mod common;
use common::{fragment_randomly, network_models, query_strategy, tree_strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_algorithms_match_centralized(
        tree in tree_strategy(),
        query in query_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..6),
        n_sites in 1u32..4,
        model_idx in 0usize..3,
    ) {
        let (model_name, model) = network_models()[model_idx];
        let compiled = compile(&query);
        let expected = centralized_eval(&tree, &compiled);

        let forest = fragment_randomly(tree, &cuts);
        forest.validate().expect("valid forest");
        let placement = Placement::round_robin(&forest, n_sites);
        let cluster = Cluster::new(&forest, &placement, model);

        prop_assert_eq!(
            parbox(&cluster, &compiled).answer, expected, "parbox on {}", model_name);
        prop_assert_eq!(
            naive_centralized(&cluster, &compiled).answer, expected,
            "naive central on {}", model_name);
        prop_assert_eq!(
            naive_distributed(&cluster, &compiled).answer, expected,
            "naive dist on {}", model_name);
        prop_assert_eq!(
            hybrid_parbox(&cluster, &compiled).answer, expected, "hybrid on {}", model_name);
        prop_assert_eq!(
            full_dist_parbox(&cluster, &compiled).answer, expected,
            "full dist on {}", model_name);
        prop_assert_eq!(
            lazy_parbox(&cluster, &compiled).answer, expected, "lazy on {}", model_name);
    }

    #[test]
    fn arena_pipeline_matches_seed_representation(
        tree in tree_strategy(),
        query in query_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..6),
    ) {
        // The full formula pipeline — `bottomUp` partial evaluation plus
        // the `evalST` solve — run over the hash-consed arena must
        // produce byte-identical resolved triplets (hence answers) to the
        // seed tree representation preserved in `parbox::boolean::reference`.
        use parbox::boolean::reference::{ref_solve, RefTriplet};
        use parbox::boolean::EquationSystem;
        use parbox::core::{bottom_up, bottom_up_reference};
        use std::collections::HashMap;
        use parbox::xml::FragmentId;

        let compiled = compile(&query);
        let forest = fragment_randomly(tree, &cuts);
        forest.validate().expect("valid forest");

        let mut sys = EquationSystem::new();
        let mut seed_triplets: HashMap<FragmentId, RefTriplet> = HashMap::new();
        for f in forest.fragment_ids() {
            let t = &forest.fragment(f).tree;
            let arena_run = bottom_up(t, &compiled);
            let seed_run = bottom_up_reference(t, &compiled);
            prop_assert_eq!(arena_run.work_units, seed_run.work_units);
            sys.insert(f, arena_run.triplet);
            seed_triplets.insert(f, seed_run.triplet);
        }
        let order = forest.postorder();
        let arena_solved = sys.solve(&order).expect("solvable");
        let seed_solved = ref_solve(&seed_triplets, &order).expect("solvable");
        for f in forest.fragment_ids() {
            prop_assert_eq!(
                &arena_solved[&f], &seed_solved[&f],
                "resolved triplet of {} diverged", f
            );
        }
    }

    #[test]
    fn fragmentation_preserves_document(
        tree in tree_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..6),
    ) {
        let original = tree.clone();
        let forest = fragment_randomly(tree, &cuts);
        prop_assert!(forest.reassemble().structural_eq(&original));
    }

    #[test]
    fn fragment_serialization_round_trips(
        tree in tree_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..4),
    ) {
        // Shipping a fragment = serializing it (virtual nodes included)
        // and parsing at the other end; this must be lossless.
        let forest = fragment_randomly(tree, &cuts);
        for f in forest.fragment_ids() {
            let t = &forest.fragment(f).tree;
            let xml = t.to_xml();
            let back = Tree::parse(&xml).unwrap();
            prop_assert!(t.structural_eq(&back), "fragment {} xml: {}", f, xml);
        }
    }

    #[test]
    fn selection_distributed_matches_centralized(
        tree in tree_strategy(),
        query in query_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..5),
        n_sites in 1u32..4,
    ) {
        use parbox::core::{select_centralized, select_distributed};
        use parbox::query::compile_selection;
        // Only path-shaped queries compile for selection; skip the rest.
        let Ok(program) = compile_selection(&query) else {
            return Ok(());
        };
        let whole = tree.clone();
        let central = select_centralized(&whole, &program);
        let forest = fragment_randomly(tree, &cuts);
        let placement = Placement::round_robin(&forest, n_sites);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let distributed = select_distributed(&cluster, &program);
        prop_assert_eq!(distributed.nodes.len(), central.len(), "count for {}", query);
        let mut a: Vec<(String, Option<String>)> = central
            .iter()
            .map(|&n| (
                whole.label_str(n).to_string(),
                whole.node(n).text.as_deref().map(str::to_string),
            ))
            .collect();
        let mut b: Vec<(String, Option<String>)> = distributed
            .nodes
            .iter()
            .map(|&(f, n)| {
                let t = &forest.fragment(f).tree;
                (t.label_str(n).to_string(), t.node(n).text.as_deref().map(str::to_string))
            })
            .collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b, "selected node mismatch for {}", query);
        // Visit guarantee: ≤ 1 (phase 1) + #depth-waves per site.
        for (_, rep) in distributed.report.sites() {
            prop_assert!(rep.visits <= 1 + cluster.source_tree.max_depth() + 1);
        }
    }

    #[test]
    fn aggregation_distributed_matches_centralized(
        tree in tree_strategy(),
        query in query_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..5),
        n_sites in 1u32..4,
    ) {
        use parbox::core::{
            count_centralized, count_distributed, sum_centralized, sum_distributed,
        };
        let compiled = compile(&query);
        let whole = tree.clone();
        let forest = fragment_randomly(tree, &cuts);
        let placement = Placement::round_robin(&forest, n_sites);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());

        // COUNT: the distributed count plus one node per virtual-node
        // predicate never drifts — virtual nodes are not counted, so the
        // totals must be exactly equal.
        let count = count_distributed(&cluster, &compiled);
        prop_assert_eq!(
            count.value,
            count_centralized(&whole, &compiled) as f64,
            "count mismatch for {}",
            query
        );
        prop_assert!(count.report.max_visits() <= 1);

        // SUM over numeric text values.
        let sum = sum_distributed(&cluster, &compiled);
        prop_assert_eq!(
            sum.value,
            sum_centralized(&whole, &compiled),
            "sum mismatch for {}",
            query
        );
    }

    #[test]
    fn parbox_visits_each_site_once(
        tree in tree_strategy(),
        query in query_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..6),
        n_sites in 1u32..4,
        model_idx in 0usize..3,
    ) {
        let (model_name, model) = network_models()[model_idx];
        let compiled = compile(&query);
        let forest = fragment_randomly(tree, &cuts);
        let placement = Placement::round_robin(&forest, n_sites);
        let cluster = Cluster::new(&forest, &placement, model);
        let out = parbox(&cluster, &compiled);
        prop_assert!(out.report.max_visits() <= 1, "visits under {}", model_name);
    }

    /// The single-visit and traffic guarantees are *behavioural*: the
    /// cost model scales modeled time, never what is sent. Messages and
    /// bytes must be bit-identical across LAN, WAN and free networks.
    #[test]
    fn traffic_is_identical_across_network_models(
        tree in tree_strategy(),
        query in query_strategy(),
        cuts in proptest::collection::vec(0usize..1000, 0..5),
        n_sites in 1u32..4,
    ) {
        let compiled = compile(&query);
        let forest = fragment_randomly(tree, &cuts);
        let placement = Placement::round_robin(&forest, n_sites);
        let mut seen: Option<(usize, usize, bool)> = None;
        for (name, model) in network_models() {
            let cluster = Cluster::new(&forest, &placement, model);
            let out = parbox(&cluster, &compiled);
            let sig = (out.report.total_messages(), out.report.total_bytes(), out.answer);
            match seen {
                None => seen = Some(sig),
                Some(prev) => prop_assert_eq!(prev, sig, "model {} diverged", name),
            }
        }
    }
}

//! The **HybridParBoX** shim (paper, Section 4), superseded by the
//! cost-based planner ([`crate::plan`]).
//!
//! The paper's hybrid compared `card(F)` against `|T| / |q|` by hand: in
//! the pathological every-node-its-own-fragment decomposition, ParBoX's
//! `O(|q| · card(F))` communication exceeds NaiveCentralized's
//! `O(|T|)`, so the hybrid switched to shipping the document. The
//! planner generalizes that tipping point to a full cost model (bytes,
//! rounds, latency, parallel compute) over *all* strategies; these
//! functions remain as thin deprecated wrappers over the two-way
//! planner ([`Planner::hybrid`]) so expA-era callers and tests keep
//! compiling. A regression test below pins that the planner agrees with
//! the retired heuristic on its two documented cases.

use crate::algorithms::EvalOutcome;
use crate::plan::{PlanContext, Planner};
use parbox_frag::ForestStats;
use parbox_net::Cluster;
use parbox_query::CompiledQuery;

/// True when the decomposition favours ParBoX (the common case).
#[deprecated(
    since = "0.1.0",
    note = "superseded by the cost-based planner: use plan::Planner::choose (or plan::plan_run)"
)]
pub fn hybrid_prefers_parbox(cluster: &Cluster<'_>, q: &CompiledQuery) -> bool {
    let stats = ForestStats::compute(cluster.forest, cluster.placement);
    let cx = PlanContext::new(cluster, q, &stats);
    Planner::hybrid().choose(&cx).summary.strategy == "ParBoX"
}

/// Evaluates `q` with whichever of ParBoX / NaiveCentralized the two-way
/// planner predicts cheaper — the planner-backed successor of the
/// paper's `card(F) ≷ |T| / |q|` tipping point.
#[deprecated(
    since = "0.1.0",
    note = "superseded by the cost-based planner: use plan::Planner::choose (or plan::plan_run)"
)]
pub fn hybrid_parbox(cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
    let stats = ForestStats::compute(cluster.forest, cluster.placement);
    let cx = PlanContext::new(cluster, q, &stats);
    let planner = Planner::hybrid();
    let choice = planner.choose(&cx);
    let mut out = choice.execute(cluster, q);
    out.algorithm = if choice.summary.strategy == "ParBoX" {
        "HybridParBoX→ParBoX"
    } else {
        "HybridParBoX→NaiveCentralized"
    };
    out
}

#[cfg(test)]
#[allow(deprecated)] // exercising the expA-era shim is the point
mod tests {
    use super::*;
    use crate::algorithms::{naive_centralized, parbox};
    use parbox_frag::{strategies, Forest, Placement};
    use parbox_net::NetworkModel;
    use parbox_query::{compile, parse_query};
    use parbox_xml::Tree;

    /// A flat document of `n` tiny sections — a few dozen bytes each,
    /// smaller than their own triplets: the regime where shipping the
    /// document wins.
    fn flat_tree(n: usize) -> Tree {
        let mut xml = String::from("<r>");
        for i in 0..n {
            xml.push_str(&format!("<s{i}><a>v</a><b/></s{i}>", i = i % 50));
        }
        xml.push_str("<goal/></r>");
        Tree::parse(&xml).unwrap()
    }

    /// Documented case 1: a coarse decomposition — four heavy grouped
    /// fragments carrying realistic text payloads (the paper's MB-scale
    /// regime: shipping costs real bytes, triplets stay `O(|q|)`).
    fn coarse_case() -> (Forest, Placement) {
        let pad = "a realistic row of document text payload standing in \
                   for the paper's megabyte-scale XMark content";
        let mut xml = String::from("<r>");
        for g in 0..4 {
            xml.push_str(&format!("<g{g}>"));
            for i in 0..25 {
                xml.push_str(&format!("<s{i}><a>v {pad}</a><b/></s{i}>"));
            }
            xml.push_str(&format!("</g{g}>"));
        }
        xml.push_str("<goal/></r>");
        let mut forest = Forest::from_tree(Tree::parse(&xml).unwrap());
        let root = forest.root_fragment();
        strategies::star(&mut forest, root).unwrap();
        let placement = Placement::one_per_fragment(&forest);
        (forest, placement)
    }

    /// Documented case 2: the pathological decomposition — every few
    /// nodes their own fragment, `card(F) · |q| ≥ |T|`.
    fn pathological_case() -> (Forest, Placement) {
        let mut forest = Forest::from_tree(flat_tree(12));
        strategies::fragment_evenly(&mut forest, 12).unwrap();
        let placement = Placement::one_per_fragment(&forest);
        (forest, placement)
    }

    const COARSE_QUERY: &str = "[//goal]";
    const PATHOLOGICAL_QUERY: &str = "[//goal and //b and //s0 and //s1 and //s2 and //s3]";

    #[test]
    fn coarse_decomposition_uses_parbox() {
        let (forest, placement) = coarse_case();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query(COARSE_QUERY).unwrap());
        assert!(hybrid_prefers_parbox(&cluster, &q));
        let out = hybrid_parbox(&cluster, &q);
        assert!(out.answer);
        assert_eq!(out.algorithm, "HybridParBoX\u{2192}ParBoX");
        assert_eq!(
            out.report.planned.as_ref().unwrap().strategy,
            "ParBoX",
            "the shim records the planner's decision"
        );
    }

    #[test]
    fn pathological_decomposition_switches_to_naive() {
        let (forest, placement) = pathological_case();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query(PATHOLOGICAL_QUERY).unwrap());
        assert!(!hybrid_prefers_parbox(&cluster, &q));
        let out = hybrid_parbox(&cluster, &q);
        assert!(out.answer);
        assert_eq!(out.algorithm, "HybridParBoX\u{2192}NaiveCentralized");
    }

    /// The satellite regression: the planner and the retired
    /// `card(F) \u{2277} |T| / |q|` heuristic agree on the heuristic's two
    /// documented cases.
    #[test]
    fn planner_agrees_with_retired_tipping_point_on_documented_cases() {
        for (label, (forest, placement), src) in [
            ("coarse", coarse_case(), COARSE_QUERY),
            ("pathological", pathological_case(), PATHOLOGICAL_QUERY),
        ] {
            let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
            let q = compile(&parse_query(src).unwrap());
            let retired_rule = cluster.forest.card() * q.len() < cluster.forest.total_nodes();
            assert_eq!(
                hybrid_prefers_parbox(&cluster, &q),
                retired_rule,
                "planner vs retired heuristic on the {label} case"
            );
        }
    }

    #[test]
    fn both_branches_agree_with_each_other() {
        let mut forest = Forest::from_tree(flat_tree(40));
        strategies::fragment_evenly(&mut forest, 6).unwrap();
        let placement = Placement::round_robin(&forest, 3);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for src in ["[//goal]", "[//b]", "[//zzz]"] {
            let q = compile(&parse_query(src).unwrap());
            assert_eq!(
                parbox(&cluster, &q).answer,
                naive_centralized(&cluster, &q).answer,
                "on {src}"
            );
            assert_eq!(
                hybrid_parbox(&cluster, &q).answer,
                parbox(&cluster, &q).answer
            );
        }
    }
}

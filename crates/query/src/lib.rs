#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # parbox-query
//!
//! The XBL Boolean XPath query language of the ParBoX system (paper,
//! Section 2.2): abstract syntax, a concrete-syntax parser, the
//! normalization pass to `β1/…/βn` form, and compilation into the
//! topologically ordered sub-query list `QList(q)` that both the
//! centralized evaluator and the distributed `bottomUp` procedure
//! interpret.
//!
//! ```
//! use parbox_query::{parse_query, compile};
//!
//! let q = parse_query("[//broker[name/text() = \"Bache\"] and //stock]").unwrap();
//! let compiled = compile(&q);
//! // The compiled program's case analysis mirrors the paper's c0–c8.
//! println!("{compiled}");
//! ```

mod ast;
mod compile;
mod lexer;
mod parser;
mod selection;

pub mod normalize;

pub use ast::{Path, Query, Step};
pub use compile::{
    compile, compile_batch, merge_programs, sub_fingerprints, CompiledQuery, Op, QueryBatch,
    QueryFingerprint, ResolvedQuery, SubId, SubQuery,
};
pub use lexer::{tokenize, LexError, Token, TokenKind};
pub use normalize::{normalize, NQuery, NStep};
pub use parser::{parse_query, ParseError};
pub use selection::{compile_selection, SelStep, SelectionError, SelectionProgram};

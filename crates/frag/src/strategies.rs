//! Fragmentation strategies.
//!
//! The paper imposes no constraints on how a tree is decomposed; these
//! helpers build the decomposition *shapes* used in its experimental
//! study (Fig. 6):
//!
//! * **FT1** (star): `F1 … Fn` all direct sub-fragments of `F0`
//!   — [`star`] / Experiment 1.
//! * **FT2** (chain): `F_{j}` a sub-fragment of `F_{j-1}` — [`chain`] /
//!   Experiment 2 (e.g. the version history of a temporal database).
//! * Balanced decomposition into `n` roughly equal fragments —
//!   [`fragment_evenly`] / Experiments 1 and 4.

use crate::{Forest, FragError};
use parbox_xml::{FragmentId, NodeId};

/// Finds the best cut node inside a fragment: the non-root node whose
/// subtree size is closest to `target` nodes. Virtual nodes and subtrees
/// of size 1 are not worth cutting and are skipped.
pub fn best_cut_node(forest: &Forest, frag: FragmentId, target: usize) -> Option<NodeId> {
    let tree = &forest.fragment(frag).tree;
    let root = tree.root();
    let mut best: Option<(NodeId, usize)> = None;
    for n in tree.descendants(root) {
        if n == root || tree.node(n).kind.is_virtual() {
            continue;
        }
        let size = tree.subtree_size(n);
        if size < 2 {
            continue;
        }
        let gap = size.abs_diff(target);
        if best.map(|(_, g)| gap < g).unwrap_or(true) {
            best = Some((n, gap));
        }
    }
    best.map(|(n, _)| n)
}

/// Splits every child of `frag`'s root into its own sub-fragment,
/// producing a star (FT1) when applied to a single-fragment forest.
/// Returns the new fragment ids in document order.
pub fn star(forest: &mut Forest, frag: FragmentId) -> Result<Vec<FragmentId>, FragError> {
    let kids: Vec<NodeId> = {
        let tree = &forest.fragment(frag).tree;
        tree.children(tree.root())
            .filter(|&n| !forest.fragment(frag).tree.node(n).kind.is_virtual())
            .collect()
    };
    let mut out = Vec::with_capacity(kids.len());
    for k in kids {
        out.push(forest.split(frag, k)?);
    }
    Ok(out)
}

/// Decomposes the forest into (up to) `n` fragments of roughly equal node
/// count by repeatedly halving the largest fragment. Deterministic.
pub fn fragment_evenly(forest: &mut Forest, n: usize) -> Result<Vec<FragmentId>, FragError> {
    let per_piece = (forest.total_nodes() / n.max(1)).max(2);
    while forest.card() < n {
        // Pick the largest fragment and carve an average-size piece out of
        // it, so finished pieces cluster around `total / n` nodes.
        let largest = forest
            .fragment_ids()
            .max_by_key(|&f| forest.fragment(f).len())
            .expect("forest is never empty");
        let len = forest.fragment(largest).len();
        // Near the end, split the remainder in half instead of leaving an
        // oversized root piece.
        let target = per_piece.min(len / 2).max(2);
        let Some(cut) = best_cut_node(forest, largest, target) else {
            return Err(FragError::NoCutPoint(largest));
        };
        forest.split(largest, cut)?;
    }
    Ok(forest.fragment_ids().collect())
}

/// Builds a chain (FT2): starting from the root fragment, repeatedly cuts
/// roughly half of the *most recently created* fragment, so that
/// `F_{j+1}` is a sub-fragment of `F_j`. Produces `n` fragments total.
pub fn chain(forest: &mut Forest, n: usize) -> Result<Vec<FragmentId>, FragError> {
    let mut last = forest.root_fragment();
    let mut out = vec![last];
    while forest.card() < n {
        // Cut so every link of the finished chain holds roughly the same
        // number of nodes: with k links still to split off, keep 1/(k+1)
        // of the current fragment and pass the rest down the chain.
        let remaining = n - forest.card();
        let len = forest.fragment(last).len();
        let target = (len * remaining / (remaining + 1)).max(2);
        let Some(cut) = best_cut_node(forest, last, target) else {
            return Err(FragError::NoCutPoint(last));
        };
        last = forest.split(last, cut)?;
        out.push(last);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_xml::Tree;

    /// A bushy tree with 4 top-level sections of 6 nodes each.
    fn bushy() -> Forest {
        let mut xml = String::from("<r>");
        for i in 0..4 {
            xml.push_str(&format!("<s{i}><a><l1/><l2/></a><b><l3/></b></s{i}>"));
        }
        xml.push_str("</r>");
        Forest::from_tree(Tree::parse(&xml).unwrap())
    }

    #[test]
    fn star_splits_each_child() {
        let mut f = bushy();
        let root = f.root_fragment();
        let made = star(&mut f, root).unwrap();
        assert_eq!(made.len(), 4);
        assert_eq!(f.card(), 5);
        for m in &made {
            assert_eq!(f.parent(*m), Some(f.root_fragment()));
        }
        f.validate().unwrap();
    }

    #[test]
    fn fragment_evenly_reaches_target_count() {
        let mut f = bushy();
        let total = f.total_nodes();
        fragment_evenly(&mut f, 5).unwrap();
        assert_eq!(f.card(), 5);
        f.validate().unwrap();
        // Balance: no fragment has more than ~2/3 of all nodes.
        for id in f.fragment_ids() {
            assert!(f.fragment(id).len() * 3 <= total * 2 + 6);
        }
        // Document preserved.
        let original = bushy().reassemble();
        assert!(f.reassemble().structural_eq(&original));
    }

    /// A deep nested tree: 12 levels, each with two leaf payloads.
    fn deep() -> Forest {
        let mut xml = String::new();
        for i in 0..12 {
            xml.push_str(&format!("<lvl{i}><p/><q/>"));
        }
        xml.push_str("<bottom/>");
        for i in (0..12).rev() {
            xml.push_str(&format!("</lvl{i}>"));
        }
        Forest::from_tree(Tree::parse(&xml).unwrap())
    }

    #[test]
    fn chain_builds_linear_fragment_tree() {
        let mut f = deep();
        let ids = chain(&mut f, 4).unwrap();
        assert_eq!(ids.len(), 4);
        for w in ids.windows(2) {
            assert_eq!(f.parent(w[1]), Some(w[0]));
        }
        assert_eq!(f.depth(ids[3]), 3);
        f.validate().unwrap();
    }

    #[test]
    fn best_cut_prefers_target_size() {
        let f = bushy(); // root fragment has 25 nodes; each s_i subtree 6.
        let cut = best_cut_node(&f, f.root_fragment(), 6).unwrap();
        let tree = &f.fragment(f.root_fragment()).tree;
        assert_eq!(tree.subtree_size(cut), 6);
        // Target 3 matches the <a><l1/><l2/></a> subtrees.
        let cut = best_cut_node(&f, f.root_fragment(), 3).unwrap();
        assert_eq!(tree.subtree_size(cut), 3);
    }

    #[test]
    fn no_cut_point_on_tiny_fragment() {
        let mut f = Forest::from_tree(Tree::parse("<only/>").unwrap());
        let err = fragment_evenly(&mut f, 2).unwrap_err();
        assert!(matches!(err, FragError::NoCutPoint(_)));
    }

    #[test]
    fn best_cut_on_single_node_fragment_is_none() {
        // A fragment holding only its root has no non-root node to cut.
        let f = Forest::from_tree(Tree::parse("<only/>").unwrap());
        assert_eq!(best_cut_node(&f, f.root_fragment(), 1), None);
        assert_eq!(best_cut_node(&f, f.root_fragment(), 1000), None);
    }

    #[test]
    fn best_cut_skips_all_tombstone_subtrees() {
        // Deleting every payload leaves only tombstones below the live
        // candidates: each survivor has subtree size 1 and is skipped.
        let mut f = Forest::from_tree(Tree::parse("<r><a><x/><y/></a><d/></r>").unwrap());
        let root = f.root_fragment();
        for label in ["x", "y"] {
            let n = {
                let t = &f.fragment(root).tree;
                t.descendants(t.root())
                    .find(|&n| t.label_str(n) == label)
                    .unwrap()
            };
            f.tree_mut(root).remove_subtree(n).unwrap();
        }
        // <a> still exists but its subtree is all tombstones below it;
        // <d> is a lone leaf. Nothing is worth cutting.
        assert_eq!(best_cut_node(&f, root, 2), None);
    }

    #[test]
    fn best_cut_with_oversized_target_returns_largest_subtree() {
        // A target larger than the whole fragment clamps to the biggest
        // available (non-root) subtree — the closest match by gap.
        let f = bushy(); // root has 25 nodes; the largest subtrees are 6.
        let cut = best_cut_node(&f, f.root_fragment(), 10_000).unwrap();
        let tree = &f.fragment(f.root_fragment()).tree;
        assert_eq!(tree.subtree_size(cut), 6);
        // And never the fragment root itself.
        assert_ne!(cut, tree.root());
    }

    #[test]
    fn best_cut_never_picks_virtual_nodes() {
        // After a split, the virtual stub must not be proposed again even
        // when its referenced sub-fragment would match the target.
        let mut f = bushy();
        let root = f.root_fragment();
        let cut = best_cut_node(&f, root, 6).unwrap();
        f.split(root, cut).unwrap();
        for _ in 0..10 {
            let Some(next) = best_cut_node(&f, root, 6) else {
                break;
            };
            assert!(!f.fragment(root).tree.node(next).kind.is_virtual());
            f.split(root, next).unwrap();
        }
        f.validate().unwrap();
    }

    #[test]
    fn fragment_evenly_is_idempotent_at_target() {
        let mut f = bushy();
        fragment_evenly(&mut f, 3).unwrap();
        let card = f.card();
        fragment_evenly(&mut f, 3).unwrap();
        assert_eq!(f.card(), card);
    }
}

//! Error type for fragmentation operations.

use parbox_xml::{FragmentId, XmlError};
use std::fmt;

/// Errors produced by [`crate::Forest`] operations and strategies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragError {
    /// The referenced fragment does not exist (or was merged away).
    UnknownFragment(FragmentId),
    /// The underlying tree operation failed.
    Tree(XmlError),
    /// A strategy could not find a node worth cutting in the fragment.
    NoCutPoint(FragmentId),
    /// A fragment is not assigned to any site — the placement does not
    /// cover the forest.
    UnplacedFragment(FragmentId),
}

impl fmt::Display for FragError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragError::UnknownFragment(id) => write!(f, "unknown fragment {id}"),
            FragError::Tree(e) => write!(f, "tree operation failed: {e}"),
            FragError::NoCutPoint(id) => {
                write!(f, "no suitable cut point inside fragment {id}")
            }
            FragError::UnplacedFragment(id) => {
                write!(f, "fragment {id} is not placed on any site")
            }
        }
    }
}

impl std::error::Error for FragError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FragError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FragError::UnknownFragment(FragmentId(3))
            .to_string()
            .contains("F3"));
        assert!(FragError::NoCutPoint(FragmentId(0))
            .to_string()
            .contains("cut point"));
        let e = FragError::Tree(XmlError::RootNotAllowed);
        assert!(e.to_string().contains("root"));
    }
}

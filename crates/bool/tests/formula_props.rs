//! Property-based tests of the formula algebra: the smart constructors
//! must be *sound* simplifications (same truth table as the naive
//! connectives), substitution must commute with evaluation, and the wire
//! encoding must be lossless.

use bytes::BytesMut;
use parbox_bool::{comp_fm, decode_formula, encode_formula, BoolOp, Formula, Var, VecKind};
use parbox_xml::FragmentId;
use proptest::prelude::*;

/// A small pool of variables so random assignments are meaningful.
fn var_pool() -> Vec<Var> {
    let mut out = Vec::new();
    for f in 0..3u32 {
        for (k, vec) in [VecKind::V, VecKind::CV, VecKind::DV]
            .into_iter()
            .enumerate()
        {
            out.push(Var::new(FragmentId(f), vec, k as u32));
        }
    }
    out
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    let pool = var_pool();
    let leaf = prop_oneof![
        Just(Formula::TRUE),
        Just(Formula::FALSE),
        (0..pool.len()).prop_map(move |i| Formula::Var(pool[i])),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            inner.clone().prop_map(Formula::not),
        ]
    })
}

/// Deterministic assignment derived from a seed byte.
fn assignment(seed: u8) -> impl Fn(Var) -> bool {
    move |v: Var| {
        let h = v.frag.0 as u8
            ^ (v.sub as u8)
            ^ match v.vec {
                VecKind::V => 0,
                VecKind::CV => 1,
                VecKind::DV => 2,
            };
        (h ^ seed).count_ones().is_multiple_of(2)
    }
}

proptest! {
    #[test]
    fn smart_constructors_preserve_truth(a in formula_strategy(), b in formula_strategy(), seed: u8) {
        let assign = assignment(seed);
        prop_assert_eq!(Formula::and(a.clone(), b.clone()).eval(&assign), a.eval(&assign) && b.eval(&assign));
        prop_assert_eq!(Formula::or(a.clone(), b.clone()).eval(&assign), a.eval(&assign) || b.eval(&assign));
        prop_assert_eq!(a.clone().not().eval(&assign), !a.eval(&assign));
    }

    #[test]
    fn comp_fm_matches_connectives(a in formula_strategy(), b in formula_strategy(), seed: u8) {
        let assign = assignment(seed);
        prop_assert_eq!(
            comp_fm(a.clone(), b.clone(), BoolOp::And).eval(&assign),
            a.eval(&assign) && b.eval(&assign)
        );
        prop_assert_eq!(
            comp_fm(a.clone(), b.clone(), BoolOp::Or).eval(&assign),
            a.eval(&assign) || b.eval(&assign)
        );
        prop_assert_eq!(comp_fm(a.clone(), b, BoolOp::Neg).eval(&assign), !a.eval(&assign));
    }

    #[test]
    fn total_substitution_equals_evaluation(f in formula_strategy(), seed: u8) {
        let assign = assignment(seed);
        let substituted = f.substitute(&|v| Some(Formula::Const(assign(v))));
        prop_assert_eq!(substituted.as_const(), Some(f.eval(&assign)));
    }

    #[test]
    fn partial_then_rest_equals_total(f in formula_strategy(), seed: u8) {
        // Substituting fragment 0's variables first, then the rest, must
        // agree with direct evaluation (unification order irrelevance —
        // the paper's "order is of no consequence" remark).
        let assign = assignment(seed);
        let phase1 = f.substitute(&|v| {
            (v.frag == FragmentId(0)).then(|| Formula::Const(assign(v)))
        });
        let phase2 = phase1.substitute(&|v| Some(Formula::Const(assign(v))));
        prop_assert_eq!(phase2.as_const(), Some(f.eval(&assign)));
    }

    #[test]
    fn constants_are_fully_folded(a in formula_strategy()) {
        // A formula without variables must be a constant (compFm folds
        // eagerly, so open structure implies open variables).
        let closed = a.substitute(&|_| Some(Formula::FALSE));
        prop_assert!(closed.is_const());
    }

    #[test]
    fn encoding_round_trips(f in formula_strategy()) {
        let mut buf = BytesMut::new();
        encode_formula(&f, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_formula(&mut bytes).unwrap();
        prop_assert_eq!(back, f);
        prop_assert_eq!(bytes.len(), 0);
    }

    #[test]
    fn size_bounds_wire_size(f in formula_strategy()) {
        let mut buf = BytesMut::new();
        encode_formula(&f, &mut buf);
        // Each node costs at most 13 bytes on the wire (var = 10, n-ary
        // header = 5) and at least 1.
        prop_assert!(buf.len() <= 13 * f.size());
        prop_assert!(buf.len() >= f.size());
    }

    #[test]
    fn vars_is_sound(f in formula_strategy(), seed: u8) {
        // Flipping a variable NOT in vars() never changes the value.
        let vars = f.vars();
        let assign = assignment(seed);
        for probe in var_pool() {
            if vars.contains(&probe) {
                continue;
            }
            let flipped = |v: Var| if v == probe { !assign(v) } else { assign(v) };
            prop_assert_eq!(f.eval(&assign), f.eval(&flipped));
        }
    }
}

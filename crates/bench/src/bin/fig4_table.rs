//! Regenerates **Fig. 4** (the complexity summary table) with *measured*
//! values: visits per site, total computation (work units), parallel
//! runtime (modeled seconds) and communication (bytes) for all six
//! algorithms on one FT1 deployment.

use parbox_bench::experiments::fig4_table;
use parbox_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = fig4_table(scale, 6);
    println!(
        "## Fig. 4 — measured complexity summary (6 machines, corpus {} bytes)",
        scale.corpus_bytes
    );
    println!(
        "{:<22} {:>10} {:>14} {:>14} {:>14} {:>8}",
        "algorithm", "max visits", "total work", "parallel (s)", "bytes", "answer"
    );
    for r in rows {
        println!(
            "{:<22} {:>10} {:>14} {:>14.4} {:>14} {:>8}",
            r.algorithm, r.max_visits, r.total_work, r.parallel_s, r.bytes, r.answer
        );
    }
}

//! Aggregation by partial evaluation — the paper's closing observation
//! that "numerical and aggregating computations over large data sets can
//! benefit from the technique".
//!
//! For an XBL predicate `q`, [`count_distributed`] computes how many
//! nodes of the distributed document satisfy `q`, and
//! [`sum_distributed`] adds up the numeric text values of those nodes.
//! Both keep ParBoX's guarantees: **each site is visited once** and the
//! traffic is query-sized.
//!
//! The partial answer of a fragment is a *residual affine expression*:
//!
//! ```text
//! count(F_j) = c  +  Σ [φ_i]  +  Σ count(F_k)
//! ```
//!
//! where `c` counts the fragment's nodes whose predicate value resolved
//! locally, each `φ_i` is a Boolean formula for a node whose value still
//! depends on sub-fragment variables (spine nodes), and the `count(F_k)`
//! terms refer to the sub-fragments. The coordinator first solves the
//! ordinary Boolean equation system (resolving every `φ_i`), then folds
//! the affine expressions bottom-up — both passes are linear.

use crate::algorithms::query_wire_size;
use crate::eval::bottom_up;
use parbox_bool::{triplet_dag_wire_size, EquationSystem, Formula, Var};
use parbox_net::{run_sites_parallel, Cluster, MessageKind, RunReport};
use parbox_query::{CompiledQuery, Op};
use parbox_xml::{FragmentId, NodeId, Tree};
use std::collections::HashMap;
use std::time::Instant;

/// The residual aggregate computed for one fragment.
#[derive(Debug, Clone)]
pub struct ResidualAggregate {
    /// Contribution of nodes whose predicate value resolved locally.
    pub resolved: f64,
    /// Contributions still conditional on sub-fragment values: the value
    /// is added iff the formula turns out true.
    pub pending: Vec<(Formula, f64)>,
    /// Sub-fragments whose own aggregates must be added.
    pub children: Vec<FragmentId>,
}

impl ResidualAggregate {
    /// Wire size: constant + each pending formula + child list.
    pub fn wire_size(&self) -> usize {
        8 + self
            .pending
            .iter()
            .map(|(f, _)| 8 + f.size() * 10)
            .sum::<usize>()
            + 4 * self.children.len()
    }
}

/// Result of a distributed aggregation.
#[derive(Debug, Clone)]
pub struct AggregateOutcome {
    /// The aggregate value over the whole document.
    pub value: f64,
    /// Full cost accounting.
    pub report: RunReport,
}

/// How a matching node contributes to the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Each matching node contributes 1.
    Count,
    /// Each matching node contributes its numeric text value (nodes whose
    /// text does not parse as a number contribute 0).
    SumText,
}

/// Counts the nodes of the whole (unfragmented) tree satisfying `q` —
/// the centralized oracle.
pub fn count_centralized(tree: &Tree, q: &CompiledQuery) -> u64 {
    aggregate_fragment(tree, q, AggKind::Count).resolved as u64
}

/// Sums the numeric text of nodes satisfying `q` on a whole tree.
pub fn sum_centralized(tree: &Tree, q: &CompiledQuery) -> f64 {
    aggregate_fragment(tree, q, AggKind::SumText).resolved
}

/// Distributed COUNT of nodes satisfying `q`: one visit per site.
pub fn count_distributed(cluster: &Cluster<'_>, q: &CompiledQuery) -> AggregateOutcome {
    aggregate_distributed(cluster, q, AggKind::Count)
}

/// Distributed SUM over the numeric text of nodes satisfying `q`.
pub fn sum_distributed(cluster: &Cluster<'_>, q: &CompiledQuery) -> AggregateOutcome {
    aggregate_distributed(cluster, q, AggKind::SumText)
}

fn aggregate_distributed(
    cluster: &Cluster<'_>,
    q: &CompiledQuery,
    kind: AggKind,
) -> AggregateOutcome {
    let wall = Instant::now();
    let mut report = RunReport::new();
    let coord = cluster.coordinator();
    let st = &cluster.source_tree;
    let sites = cluster.sites();
    let qsize = query_wire_size(q);

    // Stage 1+2 (one visit per site): every fragment produces both its
    // Boolean triplet (to resolve spine formulas) and its residual
    // aggregate, in one local pass each.
    for &s in &sites {
        report.record_visit(s);
        if s != coord {
            report.record_message(coord, s, qsize, MessageKind::Query);
        }
    }
    let runs = run_sites_parallel(&sites, |s| {
        cluster
            .fragments_at(s)
            .into_iter()
            .map(|f| {
                let tree = &cluster.forest.fragment(f).tree;
                let triplet = bottom_up(tree, q);
                let residual = aggregate_fragment(tree, q, kind);
                (f, triplet, residual)
            })
            .collect::<Vec<_>>()
    });

    let mut sys = EquationSystem::new();
    let mut residuals: HashMap<FragmentId, ResidualAggregate> = HashMap::new();
    for run in runs {
        report.record_compute(run.site, run.elapsed);
        for (frag, frun, residual) in run.output {
            report.record_work(run.site, 2 * frun.work_units);
            if run.site != coord {
                let bytes = triplet_dag_wire_size(&frun.triplet) + residual.wire_size();
                report.record_message(run.site, coord, bytes, MessageKind::Triplet);
            }
            sys.insert(frag, frun.triplet);
            residuals.insert(frag, residual);
        }
    }

    // Stage 3 at the coordinator: solve the Boolean system, then fold the
    // affine aggregates bottom-up over the fragment tree.
    let solve_start = Instant::now();
    let resolved = sys.solve(st.postorder()).expect("complete bottom-up order");
    let mut totals: HashMap<FragmentId, f64> = HashMap::new();
    for &frag in st.postorder() {
        let residual = &residuals[&frag];
        let mut total = residual.resolved;
        for (formula, weight) in &residual.pending {
            let truth = formula.eval(&|var: Var| resolved[&var.frag].value_of(var));
            if truth {
                total += weight;
            }
        }
        for child in &residual.children {
            total += totals[child];
        }
        totals.insert(frag, total);
    }
    let solve_time = solve_start.elapsed();
    report.record_compute(coord, solve_time);
    report.record_work(coord, (q.len() * cluster.forest.card()) as u64);

    report.elapsed_wall_s = wall.elapsed().as_secs_f64();
    report.elapsed_model_s = report.max_site_compute_s()
        + cluster
            .model
            .shared_link_time(report.messages.iter().map(|m| m.bytes))
        + solve_time.as_secs_f64();
    AggregateOutcome {
        value: totals[&st.root()],
        report,
    }
}

/// One fragment-local pass: evaluates `q`'s formula vectors at every node
/// and classifies each node's contribution as resolved or pending.
fn aggregate_fragment(tree: &Tree, q: &CompiledQuery, kind: AggKind) -> ResidualAggregate {
    let resolved_q = q.resolve(tree.labels());
    let m = resolved_q.len();
    let root_sub = resolved_q.root as usize;
    let mut out = ResidualAggregate {
        resolved: 0.0,
        pending: Vec::new(),
        children: Vec::new(),
    };

    // Postorder traversal with formula vectors, mirroring `bottomUp` but
    // inspecting V(q_root) at every node. Child accumulation is buffered
    // like `bottomUp`'s: one n-ary intern per entry at node completion,
    // O(fan-out) operand slots instead of O(fan-out²).
    struct Frame {
        node: NodeId,
        child_idx: usize,
        cv_ops: Vec<Vec<Formula>>,
        dv_ops: Vec<Vec<Formula>>,
    }
    let mk = |m: usize| vec![Vec::new(); m];
    let mut stack = vec![Frame {
        node: tree.root(),
        child_idx: 0,
        cv_ops: mk(m),
        dv_ops: mk(m),
    }];
    let mut done: Option<(Vec<Formula>, Vec<Formula>)> = None;
    loop {
        let frame = stack.last_mut().expect("non-empty until break");
        if let Some((v_w, dv_w)) = done.take() {
            for i in 0..m {
                if v_w[i] != Formula::FALSE {
                    frame.cv_ops[i].push(v_w[i]);
                }
                if dv_w[i] != Formula::FALSE {
                    frame.dv_ops[i].push(dv_w[i]);
                }
            }
        }
        let kids = tree.node(frame.node).child_ids();
        if frame.child_idx < kids.len() {
            let child = kids[frame.child_idx];
            frame.child_idx += 1;
            stack.push(Frame {
                node: child,
                child_idx: 0,
                cv_ops: mk(m),
                dv_ops: mk(m),
            });
            continue;
        }
        let Frame {
            node,
            cv_ops,
            dv_ops,
            ..
        } = stack.pop().expect("peeked");
        let n = tree.node(node);
        let (v, dv): (Vec<Formula>, Vec<Formula>) = if let Some(frag) = n.kind.fragment() {
            // Sub-fragment: its nodes are counted by its own residual.
            out.children.push(frag);
            let t = parbox_bool::Triplet::fresh_vars(frag, m);
            (t.v, t.dv)
        } else {
            let cv: Vec<Formula> = cv_ops.into_iter().map(Formula::any).collect();
            let mut dv: Vec<Formula> = Vec::with_capacity(m);
            let mut v: Vec<Formula> = Vec::with_capacity(m);
            for (i, op) in resolved_q.ops.iter().enumerate() {
                let value = match op {
                    Op::True => Formula::TRUE,
                    Op::LabelIs(l) => Formula::constant(Some(n.label) == *l),
                    Op::TextIs(s) => Formula::constant(n.text.as_deref() == Some(s.as_ref())),
                    Op::Child(j) => cv[*j as usize],
                    Op::Desc(j) => dv[*j as usize],
                    Op::Or(a, b) => Formula::or(v[*a as usize], v[*b as usize]),
                    Op::And(a, b) => Formula::and(v[*a as usize], v[*b as usize]),
                    Op::Not(a) => v[*a as usize].not(),
                };
                dv.push(Formula::any(
                    dv_ops[i].iter().copied().chain(std::iter::once(value)),
                ));
                v.push(value);
            }
            // This node's contribution.
            let weight = match kind {
                AggKind::Count => 1.0,
                AggKind::SumText => n
                    .text
                    .as_deref()
                    .and_then(|t| t.trim().parse::<f64>().ok())
                    .unwrap_or(0.0),
            };
            if weight != 0.0 {
                match v[root_sub].as_const() {
                    Some(true) => out.resolved += weight,
                    Some(false) => {}
                    None => out.pending.push((v[root_sub], weight)),
                }
            }
            (v, dv)
        };
        if stack.is_empty() {
            break;
        }
        done = Some((v, dv));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_frag::{strategies, Forest, Placement};
    use parbox_net::NetworkModel;
    use parbox_query::{compile, parse_query};

    fn q(src: &str) -> CompiledQuery {
        compile(&parse_query(src).unwrap())
    }

    #[test]
    fn centralized_count_simple() {
        let tree = Tree::parse("<r><a/><a><a/></a><b/></r>").unwrap();
        assert_eq!(count_centralized(&tree, &q("[label() = a]")), 3);
        assert_eq!(count_centralized(&tree, &q("[label() = r]")), 1);
        assert_eq!(count_centralized(&tree, &q("[label() = z]")), 0);
        // Predicate with structure: nodes that have an `a` child.
        assert_eq!(count_centralized(&tree, &q("[a]")), 2); // r and the middle a
    }

    #[test]
    fn centralized_sum_simple() {
        let tree = Tree::parse("<r><p>10</p><p>2.5</p><p>not-a-number</p><x>99</x></r>").unwrap();
        assert_eq!(sum_centralized(&tree, &q("[label() = p]")), 12.5);
        assert_eq!(sum_centralized(&tree, &q("[label() = x]")), 99.0);
    }

    fn stock_forest() -> (Forest, Placement) {
        let tree = Tree::parse(
            r#"<portfolio>
                 <m><stock><code>GOOG</code><sell>370</sell></stock>
                    <stock><code>YHOO</code><sell>35</sell></stock></m>
                 <m><stock><code>GOOG</code><sell>373</sell></stock></m>
                 <m><stock><code>IBM</code><sell>78</sell></stock>
                    <stock><code>GOOG</code><sell>371</sell></stock></m>
               </portfolio>"#,
        )
        .unwrap();
        let mut forest = Forest::from_tree(tree);
        let root = forest.root_fragment();
        strategies::star(&mut forest, root).unwrap();
        let placement = Placement::one_per_fragment(&forest);
        (forest, placement)
    }

    #[test]
    fn distributed_count_matches_centralized() {
        let (forest, placement) = stock_forest();
        let whole = forest.reassemble();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for src in [
            "[label() = stock]",
            "[label() = stock and code/text() = \"GOOG\"]",
            "[label() = m]",
            "[stock]", // nodes having a stock child
            "[label() = nothing]",
        ] {
            let query = q(src);
            let expected = count_centralized(&whole, &query) as f64;
            let got = count_distributed(&cluster, &query);
            assert_eq!(got.value, expected, "count mismatch for {src}");
        }
    }

    #[test]
    fn distributed_sum_matches_centralized() {
        let (forest, placement) = stock_forest();
        let whole = forest.reassemble();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        // Total GOOG sell value: 370 + 373 + 371.
        let query = q("[label() = sell]");
        assert_eq!(
            sum_centralized(&whole, &query),
            370.0 + 35.0 + 373.0 + 78.0 + 371.0
        );
        let got = sum_distributed(&cluster, &query);
        assert_eq!(got.value, sum_centralized(&whole, &query));
    }

    #[test]
    fn one_visit_per_site() {
        let (forest, placement) = stock_forest();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let out = count_distributed(&cluster, &q("[label() = stock]"));
        assert_eq!(out.report.max_visits(), 1);
        assert_eq!(out.report.bytes_of_kind(MessageKind::Data), 0);
    }

    #[test]
    fn pending_formulas_resolve_across_fragments() {
        // A predicate whose truth at F0's nodes depends on sub-fragments:
        // "portfolio nodes that contain a GOOG stock somewhere below".
        let (forest, placement) = stock_forest();
        let whole = forest.reassemble();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let query = q("[//code = \"GOOG\"]"); // holds at ancestors of GOOG codes
        let expected = count_centralized(&whole, &query) as f64;
        let got = count_distributed(&cluster, &query);
        assert_eq!(got.value, expected);
        assert!(expected >= 4.0, "root + markets + stocks chains");
    }

    #[test]
    fn traffic_stays_query_sized() {
        let (forest, placement) = stock_forest();
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let out = count_distributed(&cluster, &q("[label() = stock]"));
        // Triplet + residual bytes only; far below the document size.
        assert!(out.report.total_bytes() < forest.total_bytes());
    }
}

//! The cost-based planner: every evaluation strategy behind one
//! [`Executor`] interface, chosen per query from statistics.
//!
//! The paper's Fig. 4 tabulates by hand how the six strategies trade
//! visits, traffic, computation and parallelism — and which one wins
//! depends on the fragmentation shape, the placement, the query size
//! and the link characteristics. This module turns that table into
//! code:
//!
//! * an [`Executor`] names a strategy, predicts its cost
//!   ([`Executor::estimate`] → [`CostEstimate`]) from
//!   [`parbox_frag::ForestStats`] aggregates *without touching any
//!   site*, and runs it ([`Executor::execute`]);
//! * the [`Planner`] compares the candidates' estimates and
//!   [`Planner::choose`]s the cheapest by predicted modeled time,
//!   recording the decision as a [`PlanSummary`] in the outcome's
//!   [`parbox_net::RunReport::planned`] field;
//! * [`PlanExplain`] renders every candidate's estimate — the
//!   `parbox-cli explain` output.
//!
//! # The cost model
//!
//! Estimates are written in the *same units the [`RunReport`] accounting
//! later measures*, so tests can assert prediction against measurement:
//!
//! * **visits / messages / work units** — predicted exactly for the
//!   deterministic strategies (`ParBoX`, `FullDistParBoX`, both naive
//!   baselines): the counts follow from the source-tree structure and
//!   the per-site placement totals alone.
//! * **traffic bytes** — exact for payloads whose size is structural
//!   (shipped fragments, resolved triplets, queries); *open* triplet
//!   payloads depend on the formulas `bottomUp` produces, and are
//!   predicted by [`estimated_triplet_bytes`] from `|QList|` and the
//!   fragment's virtual-node fan-out. Documented bound: on the
//!   `expE_planner` workloads the predicted total traffic stays within
//!   a factor of [`TRAFFIC_ESTIMATE_FACTOR`] of the measured bytes
//!   (asserted there and in `tests/planner.rs`).
//! * **modeled seconds** — network terms use the exact same
//!   [`NetworkModel`] arithmetic the algorithms charge
//!   ([`NetworkModel::estimate_round`] ≡ shared-link rounds,
//!   `transfer_time` ≡ point-to-point hops); computation is predicted
//!   as `work units ×` [`SECONDS_PER_WORK_UNIT`].
//!
//! `LazyParBoX`'s cost depends on the depth at which partial answers
//! determine the result — unknowable before evaluation. Its estimate is
//! pessimistic (full depth) unless the caller supplies an observed
//! [`PlanContext::resolve_depth_hint`], which is how the serving engine
//! feeds its live resolution-depth statistics back into planning.

use crate::algorithms::{
    full_dist_parbox, lazy_parbox, naive_centralized, naive_distributed, parbox, query_wire_size,
    resolved_triplet_wire_size, run_batch, EvalOutcome,
};
use parbox_frag::ForestStats;
use parbox_net::{Cluster, NetworkModel, RunReport};
pub use parbox_net::{CostEstimate, PlanSummary};
use parbox_query::{merge_programs, CompiledQuery};
use std::fmt;

/// Calibrated cost of one work unit (one node × sub-query evaluation),
/// in seconds. Chosen to match release-mode `bottomUp` throughput on
/// XMark documents (~50 M node-subquery evaluations per second); the
/// planner only needs it to be *consistent across strategies*, since
/// every strategy's compute term uses the same constant.
pub const SECONDS_PER_WORK_UNIT: f64 = 2e-8;

/// Documented accuracy bound of the traffic prediction: on the
/// `expE_planner` workloads, `CostEstimate::traffic_bytes` stays within
/// this factor of the measured `RunReport::total_bytes()` (both ways).
pub const TRAFFIC_ESTIMATE_FACTOR: usize = 4;

/// Predicted DAG wire size of one fragment's *open* `(V, CV, DV)`
/// triplet under a `|QList| = m` program: the resolved-constant floor
/// (every leaf fragment's triplet is exactly this) plus one variable
/// node and its operand references per (sub-query × virtual child)
/// pair. Leaf fragments (`fanout == 0`) are predicted exactly.
pub fn estimated_triplet_bytes(m: usize, fanout: usize) -> usize {
    resolved_triplet_wire_size(m) + fanout * (4 + 3 * m)
}

/// Predicted wire size of one site's batch envelope:
/// `triplet_bytes_sum` of predicted per-fragment triplet bytes sharing
/// one node table, behind the envelope's fragment-count/site header.
/// The single source of truth for the framing constant — used by
/// [`BatchExec`] and by the serving engine's per-round planner.
pub fn estimated_envelope_bytes(triplet_bytes_sum: usize) -> usize {
    4 + triplet_bytes_sum
}

/// Everything an [`Executor::estimate`] may read: the deployment, the
/// compiled query, and the cached forest statistics.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext<'a> {
    /// The deployment (forest + placement + source tree + network).
    pub cluster: &'a Cluster<'a>,
    /// The compiled query to be planned.
    pub query: &'a CompiledQuery,
    /// Cached aggregates of the fragmented document.
    pub stats: &'a ForestStats,
    /// Observed fragment-tree depth at which answers tend to resolve
    /// (fed back by the serving engine); `None` makes `LazyParBoX`'s
    /// estimate pessimistically assume the full depth.
    pub resolve_depth_hint: Option<usize>,
}

impl<'a> PlanContext<'a> {
    /// Context with no lazy-depth hint (pessimistic lazy estimate).
    pub fn new(
        cluster: &'a Cluster<'a>,
        query: &'a CompiledQuery,
        stats: &'a ForestStats,
    ) -> PlanContext<'a> {
        PlanContext {
            cluster,
            query,
            stats,
            resolve_depth_hint: None,
        }
    }
}

/// One evaluation strategy behind the planner: a name, a statistics-only
/// cost prediction, and the execution entry point.
pub trait Executor {
    /// Strategy name, matching the `EvalOutcome::algorithm` label of its
    /// execution.
    fn name(&self) -> &'static str;
    /// Predicts the run's cost from the context's statistics, without
    /// contacting any site.
    fn estimate(&self, cx: &PlanContext<'_>) -> CostEstimate;
    /// Runs the strategy.
    fn execute(&self, cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome;
}

/// Aggregates every estimator needs, derived once per estimate call from
/// the context (`O(card(F))`).
struct Derived {
    m: usize,
    qsize: usize,
    card: usize,
    sites: usize,
    remote_sites: usize,
    total_nodes: usize,
    max_site_nodes: usize,
    remote_frags: usize,
    /// Σ shipped bytes of fragments stored away from the coordinator.
    remote_data_bytes: usize,
    /// Σ predicted open-triplet bytes of those fragments.
    remote_triplet_bytes: usize,
    cross_edges: usize,
    max_depth: usize,
}

impl Derived {
    fn of(cx: &PlanContext<'_>) -> Derived {
        let coord = cx.cluster.coordinator();
        let m = cx.query.len();
        let mut remote_frags = 0usize;
        let mut remote_data_bytes = 0usize;
        let mut remote_triplet_bytes = 0usize;
        for (_, s) in cx.stats.fragments() {
            if s.site != coord {
                remote_frags += 1;
                remote_data_bytes += s.bytes;
                remote_triplet_bytes += estimated_triplet_bytes(m, s.fanout);
            }
        }
        let sites = cx.stats.site_count();
        Derived {
            m,
            qsize: query_wire_size(cx.query),
            card: cx.stats.card(),
            sites,
            remote_sites: sites.saturating_sub(1),
            total_nodes: cx.stats.total_nodes(),
            max_site_nodes: cx.stats.max_site_nodes(),
            remote_frags,
            remote_data_bytes,
            remote_triplet_bytes,
            cross_edges: cx.stats.cross_site_edges(),
            max_depth: cx.stats.max_depth(),
        }
    }

    fn compute_s(nodes: usize, m: usize) -> f64 {
        (nodes * m) as f64 * SECONDS_PER_WORK_UNIT
    }
}

/// `ParBoX`: one visit per site, two communication rounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParBoxExec;

impl Executor for ParBoxExec {
    fn name(&self) -> &'static str {
        "ParBoX"
    }

    fn estimate(&self, cx: &PlanContext<'_>) -> CostEstimate {
        let d = Derived::of(cx);
        let model = &cx.cluster.model;
        let broadcast = if d.sites > 1 {
            model.transfer_time(d.qsize)
        } else {
            0.0
        };
        let collect = model.estimate_round(d.remote_frags, d.remote_triplet_bytes);
        let work = (d.total_nodes * d.m + d.m * d.card) as u64;
        CostEstimate {
            visits: d.sites,
            messages: d.remote_sites + d.remote_frags,
            traffic_bytes: d.qsize * d.remote_sites + d.remote_triplet_bytes,
            rounds: if d.remote_sites > 0 { 2 } else { 0 },
            work_units: work,
            modeled_s: broadcast
                + Derived::compute_s(d.max_site_nodes, d.m)
                + collect
                + Derived::compute_s(d.card, d.m),
        }
    }

    fn execute(&self, cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
        parbox(cluster, q)
    }
}

/// `NaiveCentralized`: ship every remote fragment, evaluate centrally.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveCentralizedExec;

impl Executor for NaiveCentralizedExec {
    fn name(&self) -> &'static str {
        "NaiveCentralized"
    }

    fn estimate(&self, cx: &PlanContext<'_>) -> CostEstimate {
        let d = Derived::of(cx);
        // The reassembled document drops one virtual node per non-root
        // fragment.
        let whole = d.total_nodes - (d.card - 1);
        CostEstimate {
            visits: d.sites,
            messages: d.remote_frags,
            traffic_bytes: d.remote_data_bytes,
            rounds: if d.remote_frags > 0 { 1 } else { 0 },
            work_units: (whole * d.m) as u64,
            modeled_s: cx
                .cluster
                .model
                .estimate_round(d.remote_frags, d.remote_data_bytes)
                + Derived::compute_s(whole, d.m),
        }
    }

    fn execute(&self, cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
        naive_centralized(cluster, q)
    }
}

/// `NaiveDistributed`: fully sequential distributed traversal.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveDistributedExec;

impl Executor for NaiveDistributedExec {
    fn name(&self) -> &'static str {
        "NaiveDistributed"
    }

    fn estimate(&self, cx: &PlanContext<'_>) -> CostEstimate {
        let d = Derived::of(cx);
        let model = &cx.cluster.model;
        let tri = resolved_triplet_wire_size(d.m);
        CostEstimate {
            visits: d.card,
            messages: 2 * d.cross_edges,
            traffic_bytes: (d.qsize + tri) * d.cross_edges,
            rounds: 2 * d.cross_edges,
            work_units: (d.total_nodes * d.m) as u64,
            modeled_s: d.cross_edges as f64
                * (model.transfer_time(d.qsize) + model.transfer_time(tri))
                + Derived::compute_s(d.total_nodes, d.m),
        }
    }

    fn execute(&self, cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
        naive_distributed(cluster, q)
    }
}

/// `FullDistParBoX`: parallel evaluation, in-network resolution.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullDistExec;

impl Executor for FullDistExec {
    fn name(&self) -> &'static str {
        "FullDistParBoX"
    }

    fn estimate(&self, cx: &PlanContext<'_>) -> CostEstimate {
        let d = Derived::of(cx);
        let model = &cx.cluster.model;
        let tri = resolved_triplet_wire_size(d.m);
        let st_bytes = cx.cluster.source_tree.byte_size();
        let broadcast = if d.sites > 1 {
            model.transfer_time(d.qsize + st_bytes)
        } else {
            0.0
        };
        // Resolution climbs the fragment tree; the critical path crosses
        // at most `max_depth` site boundaries and performs one `O(|q|)`
        // substitution step per fragment on the way.
        let climb = d.max_depth.min(d.cross_edges) as f64 * model.transfer_time(tri);
        let solve_work: u64 = cx
            .stats
            .fragments()
            .map(|(_, s)| (d.m * (1 + s.fanout)) as u64)
            .sum();
        CostEstimate {
            visits: d.card,
            messages: d.remote_sites + d.cross_edges,
            traffic_bytes: (d.qsize + st_bytes) * d.remote_sites + tri * d.cross_edges,
            rounds: if d.remote_sites > 0 {
                1 + d.max_depth.min(d.cross_edges)
            } else {
                0
            },
            work_units: (d.total_nodes * d.m) as u64 + solve_work,
            modeled_s: broadcast
                + Derived::compute_s(d.max_site_nodes, d.m)
                + climb
                + solve_work as f64 * SECONDS_PER_WORK_UNIT,
        }
    }

    fn execute(&self, cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
        full_dist_parbox(cluster, q)
    }
}

/// `LazyParBoX`: depth-wavefront evaluation with early termination.
#[derive(Debug, Clone, Copy, Default)]
pub struct LazyExec;

impl Executor for LazyExec {
    fn name(&self) -> &'static str {
        "LazyParBoX"
    }

    fn estimate(&self, cx: &PlanContext<'_>) -> CostEstimate {
        let d = Derived::of(cx);
        let model = &cx.cluster.model;
        let coord = cx.cluster.coordinator();
        let stop = cx
            .resolve_depth_hint
            .unwrap_or(d.max_depth)
            .min(d.max_depth);

        // One pass over the fragments buckets the wavefronts up to the
        // expected stopping depth.
        #[derive(Default, Clone)]
        struct Wave {
            frags: usize,
            remote_frags: usize,
            remote_triplet_bytes: usize,
            max_site_nodes: usize,
            nodes: usize,
        }
        let mut waves = vec![Wave::default(); stop + 1];
        let mut site_nodes: std::collections::HashMap<(usize, u32), usize> =
            std::collections::HashMap::new();
        for (_, s) in cx.stats.fragments() {
            if s.depth > stop {
                continue;
            }
            let w = &mut waves[s.depth];
            w.frags += 1;
            w.nodes += s.nodes;
            if s.site != coord {
                w.remote_frags += 1;
                w.remote_triplet_bytes += estimated_triplet_bytes(d.m, s.fanout);
            }
            let acc = site_nodes.entry((s.depth, s.site.0)).or_default();
            *acc += s.nodes;
        }
        // Distinct remote sites per wavefront: one query message each.
        let mut wave_remote_sites = vec![0usize; stop + 1];
        for &(depth, site) in site_nodes.keys() {
            waves[depth].max_site_nodes =
                waves[depth].max_site_nodes.max(site_nodes[&(depth, site)]);
            if site != coord.0 {
                wave_remote_sites[depth] += 1;
            }
        }

        let mut est = CostEstimate::default();
        let mut gathered = 0usize;
        for (depth, w) in waves.iter().enumerate() {
            if w.frags == 0 {
                continue;
            }
            gathered += w.frags;
            est.visits += w.frags;
            // Per step: the query to every distinct remote site of the
            // wavefront and one triplet back per remote fragment.
            let step_sites = wave_remote_sites[depth];
            est.messages += step_sites + w.remote_frags;
            est.traffic_bytes += d.qsize * step_sites + w.remote_triplet_bytes;
            est.rounds += if step_sites > 0 { 2 } else { 0 };
            est.work_units += (w.nodes * d.m + d.m * gathered) as u64;
            est.modeled_s += if step_sites > 0 {
                model.transfer_time(d.qsize)
            } else {
                0.0
            } + Derived::compute_s(w.max_site_nodes, d.m)
                + model.estimate_round(w.remote_frags, w.remote_triplet_bytes)
                + Derived::compute_s(gathered, d.m);
        }
        est
    }

    fn execute(&self, cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
        lazy_parbox(cluster, q)
    }
}

/// `BatchParBoX` over a single-member batch: ParBoX's round with the
/// batch protocol's one-envelope-per-site framing (the natural executor
/// when the caller serves admission rounds).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchExec;

impl Executor for BatchExec {
    fn name(&self) -> &'static str {
        "BatchParBoX"
    }

    fn estimate(&self, cx: &PlanContext<'_>) -> CostEstimate {
        let d = Derived::of(cx);
        let model = &cx.cluster.model;
        let coord = cx.cluster.coordinator();
        // One envelope per remote site: a small header plus its
        // fragments' triplets sharing one node table. One grouped pass
        // over the fragment table, not one scan per site.
        let mut per_site: std::collections::BTreeMap<u32, usize> =
            std::collections::BTreeMap::new();
        for (_, s) in cx.stats.fragments() {
            if s.site != coord {
                *per_site.entry(s.site.0).or_default() += estimated_triplet_bytes(d.m, s.fanout);
            }
        }
        let envelope_bytes: usize = per_site
            .values()
            .map(|&b| estimated_envelope_bytes(b))
            .sum();
        let request = d.qsize; // single member: merged program == program
        let broadcast = if d.sites > 1 {
            model.transfer_time(request)
        } else {
            0.0
        };
        CostEstimate {
            visits: d.sites,
            messages: 2 * d.remote_sites,
            traffic_bytes: request * d.remote_sites + envelope_bytes,
            rounds: if d.remote_sites > 0 { 2 } else { 0 },
            work_units: (d.total_nodes * d.m + d.m * d.card) as u64,
            modeled_s: broadcast
                + Derived::compute_s(d.max_site_nodes, d.m)
                + model.estimate_round(d.remote_sites, envelope_bytes)
                + Derived::compute_s(d.card, d.m),
        }
    }

    fn execute(&self, cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
        let batch = merge_programs(std::slice::from_ref(q));
        let out = run_batch(cluster, &batch);
        EvalOutcome {
            answer: out.answers[0],
            report: out.report,
            algorithm: "BatchParBoX",
        }
    }
}

/// One candidate's row in a [`PlanExplain`].
#[derive(Debug, Clone)]
pub struct ExplainEntry {
    /// Strategy name.
    pub strategy: &'static str,
    /// Its predicted cost.
    pub estimate: CostEstimate,
    /// True for the strategy the planner picked.
    pub chosen: bool,
}

/// Every candidate's estimate, cheapest first — what
/// `parbox-cli explain` renders.
#[derive(Debug, Clone)]
pub struct PlanExplain {
    /// Candidate rows, ascending by predicted modeled seconds.
    pub entries: Vec<ExplainEntry>,
}

impl PlanExplain {
    /// The winning entry.
    pub fn chosen(&self) -> &ExplainEntry {
        self.entries
            .iter()
            .find(|e| e.chosen)
            .expect("explain always marks a winner")
    }
}

impl fmt::Display for PlanExplain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {:<18} {:>7} {:>9} {:>12} {:>7} {:>12} {:>12}",
            "strategy", "visits", "messages", "traffic (B)", "rounds", "est. work", "modeled (s)"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{} {:<18} {:>7} {:>9} {:>12} {:>7} {:>12} {:>12.6}",
                if e.chosen { "→" } else { " " },
                e.strategy,
                e.estimate.visits,
                e.estimate.messages,
                e.estimate.traffic_bytes,
                e.estimate.rounds,
                e.estimate.work_units,
                e.estimate.modeled_s,
            )?;
        }
        Ok(())
    }
}

/// The planner's decision: which executor to run, with the summary that
/// will be stamped into the outcome's report.
pub struct Choice<'p> {
    /// The winning executor.
    pub executor: &'p dyn Executor,
    /// The decision record ([`RunReport::planned`]).
    pub summary: PlanSummary,
    /// All candidates' estimates.
    pub explain: PlanExplain,
}

impl Choice<'_> {
    /// Runs the chosen strategy and records the [`PlanSummary`] in the
    /// outcome's report.
    pub fn execute(&self, cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
        let mut out = self.executor.execute(cluster, q);
        out.report.planned = Some(self.summary.clone());
        out
    }
}

/// A set of candidate executors and the choice rule over their
/// estimates.
pub struct Planner {
    executors: Vec<Box<dyn Executor>>,
}

impl Planner {
    /// All six strategies of the paper (plus the batch engine's framing).
    pub fn standard() -> Planner {
        Planner {
            executors: vec![
                Box::new(ParBoxExec),
                Box::new(BatchExec),
                Box::new(FullDistExec),
                Box::new(LazyExec),
                Box::new(NaiveCentralizedExec),
                Box::new(NaiveDistributedExec),
            ],
        }
    }

    /// The two-way planner replacing the deprecated `HybridParBoX`
    /// tipping-point heuristic: ParBoX versus NaiveCentralized.
    pub fn hybrid() -> Planner {
        Planner {
            executors: vec![Box::new(ParBoxExec), Box::new(NaiveCentralizedExec)],
        }
    }

    /// A custom candidate set.
    pub fn of(executors: Vec<Box<dyn Executor>>) -> Planner {
        assert!(!executors.is_empty(), "a planner needs candidates");
        Planner { executors }
    }

    /// The candidate executors, in registration order.
    pub fn executors(&self) -> &[Box<dyn Executor>] {
        &self.executors
    }

    /// Estimates every candidate and picks the cheapest by predicted
    /// modeled seconds (ties break toward the earlier-registered —
    /// i.e. more specialized — strategy).
    pub fn choose(&self, cx: &PlanContext<'_>) -> Choice<'_> {
        let mut entries: Vec<(usize, ExplainEntry)> = self
            .executors
            .iter()
            .enumerate()
            .map(|(i, e)| {
                (
                    i,
                    ExplainEntry {
                        strategy: e.name(),
                        estimate: e.estimate(cx),
                        chosen: false,
                    },
                )
            })
            .collect();
        let winner = entries
            .iter()
            .min_by(|a, b| {
                a.1.estimate
                    .modeled_s
                    .total_cmp(&b.1.estimate.modeled_s)
                    .then(a.0.cmp(&b.0))
            })
            .expect("planner has candidates")
            .0;
        for (i, e) in entries.iter_mut() {
            e.chosen = *i == winner;
        }
        let summary = PlanSummary {
            strategy: self.executors[winner].name().to_string(),
            estimate: entries
                .iter()
                .find(|(i, _)| *i == winner)
                .expect("winner is among entries")
                .1
                .estimate,
            candidates: entries.len(),
        };
        let mut rows: Vec<ExplainEntry> = entries.into_iter().map(|(_, e)| e).collect();
        rows.sort_by(|a, b| a.estimate.modeled_s.total_cmp(&b.estimate.modeled_s));
        Choice {
            executor: &*self.executors[winner],
            summary,
            explain: PlanExplain { entries: rows },
        }
    }

    /// Renders every candidate's estimate without executing anything.
    pub fn explain(&self, cx: &PlanContext<'_>) -> PlanExplain {
        self.choose(cx).explain
    }
}

impl fmt::Debug for Planner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Planner")
            .field(
                "executors",
                &self.executors.iter().map(|e| e.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// One-shot adaptive evaluation: measures the forest, asks the standard
/// planner, runs the winner, and stamps the [`PlanSummary`] into the
/// report. This is what `parbox-cli run --strategy auto` executes.
pub fn plan_run(cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
    let stats = ForestStats::compute(cluster.forest, cluster.placement);
    let cx = PlanContext::new(cluster, q, &stats);
    Planner::standard().choose(&cx).execute(cluster, q)
}

/// Deterministic replay of a measured run under the planner's own time
/// model: the report's recorded network usage at `model` rates plus its
/// work units at [`SECONDS_PER_WORK_UNIT`]. Used by `expE_planner` to
/// compare strategies without wall-clock measurement noise.
pub fn replay_modeled_s(report: &RunReport, model: &NetworkModel, rounds: usize) -> f64 {
    // Payload time is load-dependent; latency is charged once per
    // sequential round, as every strategy's own model does.
    let bytes: usize = report.messages.iter().map(|m| m.bytes).sum();
    rounds as f64 * model.latency_s
        + bytes as f64 / model.bandwidth_bytes_per_s
        + report.total_work() as f64 * SECONDS_PER_WORK_UNIT
}

/// Measures the fragment-tree depth at which `q`'s answer resolves: the
/// smallest `d` such that the triplets of fragments at depth `≤ d`
/// already determine the root answer. This is the statistic a serving
/// deployment accumulates over its history (the engine's EWMA) and
/// feeds back as [`PlanContext::resolve_depth_hint`]; as a standalone
/// call it evaluates every fragment once — a warm-up/experiment oracle,
/// not a planning-time estimate.
pub fn measure_resolution_depth(cluster: &Cluster<'_>, q: &CompiledQuery) -> usize {
    use crate::algorithms::partial_solve;
    use crate::eval::bottom_up;
    use std::collections::HashMap;

    let st = &cluster.source_tree;
    let triplets: HashMap<parbox_xml::FragmentId, parbox_bool::Triplet> = cluster
        .forest
        .fragment_ids()
        .map(|f| (f, bottom_up(&cluster.forest.fragment(f).tree, q).triplet))
        .collect();
    let max_depth = st.max_depth();
    for d in 0..max_depth {
        let gathered: HashMap<parbox_xml::FragmentId, parbox_bool::Triplet> = triplets
            .iter()
            .filter(|(f, _)| st.entry(**f).depth <= d)
            .map(|(&f, t)| (f, t.clone()))
            .collect();
        if partial_solve(st, &gathered, q.root() as usize).is_some() {
            return d;
        }
    }
    max_depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_frag::{strategies, Forest, Placement};
    use parbox_net::NetworkModel;
    use parbox_query::{compile, parse_query};
    use parbox_xml::Tree;

    fn xmlish(sections: usize) -> Tree {
        let mut xml = String::from("<r>");
        for i in 0..sections {
            xml.push_str(&format!(
                "<s{i}><a>value {i} padding padding</a><b/><c>more text {i}</c></s{i}>",
                i = i % 40
            ));
        }
        xml.push_str("<goal/></r>");
        Tree::parse(&xml).unwrap()
    }

    fn star_cluster(sections: usize, frags: usize) -> (Forest, Placement) {
        let mut forest = Forest::from_tree(xmlish(sections));
        strategies::fragment_evenly(&mut forest, frags).unwrap();
        let placement = Placement::one_per_fragment(&forest);
        (forest, placement)
    }

    #[test]
    fn estimates_match_measured_counts_exactly() {
        let (forest, placement) = star_cluster(60, 5);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let stats = ForestStats::compute(&forest, &placement);
        let q = compile(&parse_query("[//goal and //a]").unwrap());
        let cx = PlanContext::new(&cluster, &q, &stats);

        for exec in [
            Box::new(ParBoxExec) as Box<dyn Executor>,
            Box::new(NaiveCentralizedExec),
            Box::new(NaiveDistributedExec),
            Box::new(FullDistExec),
        ] {
            let est = exec.estimate(&cx);
            let out = exec.execute(&cluster, &q);
            assert_eq!(
                est.visits,
                out.report.total_visits(),
                "{} visits",
                exec.name()
            );
            assert_eq!(
                est.messages,
                out.report.total_messages(),
                "{} messages",
                exec.name()
            );
            assert_eq!(
                est.work_units,
                out.report.total_work(),
                "{} work units",
                exec.name()
            );
            let measured = out.report.total_bytes();
            assert!(
                est.traffic_bytes <= measured * TRAFFIC_ESTIMATE_FACTOR
                    && measured <= est.traffic_bytes * TRAFFIC_ESTIMATE_FACTOR,
                "{}: traffic estimate {} vs measured {measured}",
                exec.name(),
                est.traffic_bytes
            );
        }
    }

    #[test]
    fn naive_traffic_estimates_are_exact() {
        // Shipped-fragment and resolved-triplet payloads are structural:
        // the two naive baselines' traffic is predicted to the byte.
        let (forest, placement) = star_cluster(40, 4);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let stats = ForestStats::compute(&forest, &placement);
        let q = compile(&parse_query("[//goal]").unwrap());
        let cx = PlanContext::new(&cluster, &q, &stats);
        for exec in [
            Box::new(NaiveCentralizedExec) as Box<dyn Executor>,
            Box::new(NaiveDistributedExec),
        ] {
            let est = exec.estimate(&cx);
            let out = exec.execute(&cluster, &q);
            assert_eq!(
                est.traffic_bytes,
                out.report.total_bytes(),
                "{} traffic",
                exec.name()
            );
        }
    }

    #[test]
    fn choice_executes_and_stamps_plan_summary() {
        let (forest, placement) = star_cluster(50, 4);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let stats = ForestStats::compute(&forest, &placement);
        let q = compile(&parse_query("[//goal]").unwrap());
        let cx = PlanContext::new(&cluster, &q, &stats);
        let planner = Planner::standard();
        let choice = planner.choose(&cx);
        let out = choice.execute(&cluster, &q);
        let planned = out.report.planned.expect("planned run records a summary");
        assert_eq!(planned.strategy, choice.summary.strategy);
        assert_eq!(planned.candidates, 6);
        // The label of the executed algorithm matches the plan.
        assert_eq!(out.algorithm, planned.strategy);
        // plan_run is the same path.
        let auto = plan_run(&cluster, &q);
        assert_eq!(auto.answer, out.answer);
        assert!(auto.report.planned.is_some());
    }

    #[test]
    fn explain_lists_all_candidates_cheapest_first() {
        let (forest, placement) = star_cluster(50, 4);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::wan());
        let stats = ForestStats::compute(&forest, &placement);
        let q = compile(&parse_query("[//goal]").unwrap());
        let cx = PlanContext::new(&cluster, &q, &stats);
        let explain = Planner::standard().explain(&cx);
        assert_eq!(explain.entries.len(), 6);
        assert!(explain
            .entries
            .windows(2)
            .all(|w| w[0].estimate.modeled_s <= w[1].estimate.modeled_s));
        assert_eq!(explain.entries.iter().filter(|e| e.chosen).count(), 1);
        assert_eq!(
            explain.chosen().strategy,
            explain.entries[0].strategy,
            "winner is the cheapest"
        );
        let rendered = format!("{explain}");
        assert!(rendered.contains("ParBoX") && rendered.contains("modeled (s)"));
    }

    #[test]
    fn lazy_estimate_honours_the_depth_hint() {
        // A chain: the pessimistic (full-depth) estimate must cost more
        // than a shallow-stop hint on every axis.
        let mut xml = String::new();
        for i in 0..12 {
            xml.push_str(&format!("<lvl{i}><p>text</p><q/>"));
        }
        xml.push_str("<bottom/>");
        for i in (0..12).rev() {
            xml.push_str(&format!("</lvl{i}>"));
        }
        let mut forest = Forest::from_tree(Tree::parse(&xml).unwrap());
        strategies::chain(&mut forest, 6).unwrap();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let stats = ForestStats::compute(&forest, &placement);
        let q = compile(&parse_query("[//bottom]").unwrap());
        let mut cx = PlanContext::new(&cluster, &q, &stats);
        let pessimistic = LazyExec.estimate(&cx);
        cx.resolve_depth_hint = Some(0);
        let shallow = LazyExec.estimate(&cx);
        assert!(shallow.visits < pessimistic.visits);
        assert!(shallow.modeled_s < pessimistic.modeled_s);
        assert!(shallow.traffic_bytes < pessimistic.traffic_bytes);
        assert_eq!(shallow.visits, 1, "only the root wavefront");
        // Pessimistic lazy visits every fragment, like its execution
        // on a bottom-satisfied query.
        assert_eq!(pessimistic.visits, forest.card());
    }

    #[test]
    fn planner_answers_agree_across_all_executors() {
        let (forest, placement) = star_cluster(30, 4);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let stats = ForestStats::compute(&forest, &placement);
        for src in ["[//goal]", "[//a and //b]", "[//nope]", "[not //goal]"] {
            let q = compile(&parse_query(src).unwrap());
            let cx = PlanContext::new(&cluster, &q, &stats);
            let planner = Planner::standard();
            let chosen = planner.choose(&cx).execute(&cluster, &q);
            for exec in planner.executors() {
                assert_eq!(
                    exec.execute(&cluster, &q).answer,
                    chosen.answer,
                    "{} disagrees on {src}",
                    exec.name()
                );
            }
        }
    }
}

//! Batch-engine equivalence and traffic bounds: a batched round must
//! answer exactly like per-query ParBoX (and the centralized oracle), and
//! its traffic must stay within the per-query bound summed over the
//! batch, at every site.

use parbox::core::{centralized_eval, parbox, run_batch};
use parbox::frag::Placement;
use parbox::net::{Cluster, NetworkModel};
use parbox::query::{compile, compile_batch};
use proptest::prelude::*;

mod common;
use common::{fragment_randomly, query_strategy, tree_strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_matches_per_query_parbox_and_centralized(
        tree in tree_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..6),
        cuts in proptest::collection::vec(0usize..1000, 0..6),
        n_sites in 1u32..4,
    ) {
        let whole = tree.clone();
        let forest = fragment_randomly(tree, &cuts);
        let placement = Placement::round_robin(&forest, n_sites);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());

        let out = run_batch(&cluster, &compile_batch(&queries));
        prop_assert_eq!(out.answers.len(), queries.len());
        prop_assert!(out.report.max_visits() <= 1, "more than one visit");
        for (i, q) in queries.iter().enumerate() {
            let compiled = compile(q);
            prop_assert_eq!(
                out.answers[i],
                centralized_eval(&whole, &compiled),
                "centralized mismatch on member {} = {}", i, q
            );
            prop_assert_eq!(
                out.answers[i],
                parbox(&cluster, &compiled).answer,
                "parbox mismatch on member {} = {}", i, q
            );
        }
    }

    #[test]
    fn batch_traffic_within_summed_per_query_bound(
        tree in tree_strategy(),
        queries in proptest::collection::vec(query_strategy(), 2..6),
        cuts in proptest::collection::vec(0usize..1000, 0..6),
        n_sites in 1u32..4,
    ) {
        // The paper bounds per-query traffic by O(|q| · card(F)); the
        // batched round must stay within that bound *summed over the
        // batch* — at every single site, not just in aggregate.
        let forest = fragment_randomly(tree, &cuts);
        let placement = Placement::round_robin(&forest, n_sites);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());

        let batched = run_batch(&cluster, &compile_batch(&queries));
        let solo: Vec<_> = queries
            .iter()
            .map(|q| parbox(&cluster, &compile(q)))
            .collect();

        for &site in &cluster.sites() {
            let b = batched.report.site(site);
            let sent: usize = solo.iter().map(|o| o.report.site(site).bytes_sent).sum();
            let recv: usize = solo.iter().map(|o| o.report.site(site).bytes_recv).sum();
            prop_assert!(
                b.bytes_sent <= sent,
                "site {} sent {} batched but {} sequentially", site.0, b.bytes_sent, sent
            );
            prop_assert!(
                b.bytes_recv <= recv,
                "site {} received {} batched but {} sequentially", site.0, b.bytes_recv, recv
            );
        }
        let sequential_total: usize = solo.iter().map(|o| o.report.total_bytes()).sum();
        prop_assert!(batched.report.total_bytes() <= sequential_total);
        // Message count: at most one request + one envelope per site vs
        // that much *per query* sequentially.
        prop_assert!(batched.report.total_messages() <= 2 * (cluster.sites().len() - 1));
    }
}

#[test]
fn xmark_serving_batch_one_visit_and_bounded_traffic() {
    // Deterministic end-to-end check on the default XMark serving
    // workload over an FT1 deployment (the expB setting at test scale).
    let scale = parbox_bench::Scale {
        corpus_bytes: 30_000,
        seed: 2006,
    };
    let (forest, placement) = parbox_bench::ft1(scale, 4);
    let model = NetworkModel::lan();
    let cluster = Cluster::new(&forest, &placement, model);
    let queries = parbox::xmark::batch_workload(32, scale.seed);
    let batch = compile_batch(&queries);
    let out = run_batch(&cluster, &batch);

    assert_eq!(out.report.max_visits(), 1, "one visit per site");
    let mut sequential_bytes = 0usize;
    let mut sequential_net = 0.0f64;
    for (i, q) in queries.iter().enumerate() {
        let solo = parbox(&cluster, &compile(q));
        assert_eq!(solo.answer, out.answers[i], "member {i}");
        sequential_bytes += solo.report.total_bytes();
        sequential_net += solo.report.network_cost_s(&model);
    }
    assert!(out.report.total_bytes() < sequential_bytes);
    assert!(
        sequential_net >= 4.0 * out.report.network_cost_s(&model),
        "expB acceptance: >= 4x network win at batch 32"
    );
}

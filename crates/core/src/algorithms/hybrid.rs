//! Algorithm **HybridParBoX** (paper, Section 4): pick ParBoX or the
//! naive centralized algorithm depending on the decomposition.
//!
//! In the pathological case where every node is its own fragment,
//! `card(F) = |T|` and ParBoX's communication `O(|q| · card(F))` exceeds
//! NaiveCentralized's `O(|T|)`. The tipping point compares `card(F)`
//! with `|T| / |q|`: ParBoX wins while `card(F) < |T| / |q|`.

use crate::algorithms::{naive_centralized, parbox, EvalOutcome};
use parbox_net::Cluster;
use parbox_query::CompiledQuery;

/// True when the decomposition favours ParBoX (the common case).
pub fn hybrid_prefers_parbox(cluster: &Cluster<'_>, q: &CompiledQuery) -> bool {
    let total_nodes = cluster.forest.total_nodes();
    let card = cluster.forest.card();
    card * q.len() < total_nodes
}

/// Evaluates `q`, switching between ParBoX and NaiveCentralized at the
/// tipping point `card(F) ≷ |T| / |q|`.
pub fn hybrid_parbox(cluster: &Cluster<'_>, q: &CompiledQuery) -> EvalOutcome {
    let mut out = if hybrid_prefers_parbox(cluster, q) {
        let mut out = parbox(cluster, q);
        out.algorithm = "HybridParBoX→ParBoX";
        out
    } else {
        let mut out = naive_centralized(cluster, q);
        out.algorithm = "HybridParBoX→NaiveCentralized";
        out
    };
    // The decision itself is O(1); nothing to account.
    out.report.elapsed_wall_s = out.report.elapsed_wall_s.max(0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_frag::{strategies, Forest, Placement};
    use parbox_net::NetworkModel;
    use parbox_query::{compile, parse_query};
    use parbox_xml::Tree;

    fn big_tree(n: usize) -> Tree {
        let mut xml = String::from("<r>");
        for i in 0..n {
            xml.push_str(&format!("<s{i}><a>v</a><b/></s{i}>", i = i % 50));
        }
        xml.push_str("<goal/></r>");
        Tree::parse(&xml).unwrap()
    }

    #[test]
    fn coarse_decomposition_uses_parbox() {
        let mut forest = Forest::from_tree(big_tree(100));
        strategies::fragment_evenly(&mut forest, 4).unwrap();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q = compile(&parse_query("[//goal]").unwrap());
        assert!(hybrid_prefers_parbox(&cluster, &q));
        let out = hybrid_parbox(&cluster, &q);
        assert!(out.answer);
        assert_eq!(out.algorithm, "HybridParBoX→ParBoX");
    }

    #[test]
    fn pathological_decomposition_switches_to_naive() {
        // Tiny fragments everywhere: card(F) · |q| ≥ |T|.
        let mut forest = Forest::from_tree(big_tree(12));
        strategies::fragment_evenly(&mut forest, 12).unwrap();
        let placement = Placement::one_per_fragment(&forest);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        let q =
            compile(&parse_query("[//goal and //a = \"v\" and //b and //s0 and //s1]").unwrap());
        assert!(!hybrid_prefers_parbox(&cluster, &q));
        let out = hybrid_parbox(&cluster, &q);
        assert!(out.answer);
        assert_eq!(out.algorithm, "HybridParBoX→NaiveCentralized");
    }

    #[test]
    fn both_branches_agree_with_each_other() {
        let mut forest = Forest::from_tree(big_tree(40));
        strategies::fragment_evenly(&mut forest, 6).unwrap();
        let placement = Placement::round_robin(&forest, 3);
        let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
        for src in ["[//goal]", "[//a = \"v\"]", "[//zzz]"] {
            let q = compile(&parse_query(src).unwrap());
            assert_eq!(
                parbox(&cluster, &q).answer,
                naive_centralized(&cluster, &q).answer,
                "on {src}"
            );
        }
    }
}

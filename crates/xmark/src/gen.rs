//! Deterministic XMark-style document generator.
//!
//! The paper's experiments generate XMark auction-site documents. The
//! original `xmlgen` is a closed C tool, so this module produces
//! documents with the same element vocabulary and rough shape
//! (regions/items, categories, people, open and closed auctions), sized
//! in approximate serialized bytes, fully deterministic under a seed
//! (DESIGN.md §5).

use parbox_xml::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// Target serialized size in bytes (approximate, ±one item).
    pub target_bytes: usize,
    /// RNG seed; equal configs generate identical documents.
    pub seed: u64,
}

impl XmarkConfig {
    /// Convenience constructor.
    pub fn sized(target_bytes: usize) -> XmarkConfig {
        XmarkConfig {
            target_bytes,
            seed: 0xC0FFEE,
        }
    }
}

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

const WORDS: [&str; 24] = [
    "auction",
    "great",
    "condition",
    "vintage",
    "rare",
    "collector",
    "mint",
    "original",
    "shipping",
    "included",
    "antique",
    "classic",
    "bargain",
    "quality",
    "limited",
    "edition",
    "signed",
    "certified",
    "restored",
    "working",
    "complete",
    "boxed",
    "sealed",
    "tested",
];

const FIRST: [&str; 10] = [
    "Ada", "Brke", "Chen", "Dara", "Edur", "Fumi", "Gert", "Hana", "Ivor", "Jin",
];
const LAST: [&str; 10] = [
    "Adams", "Brown", "Cortez", "Dietz", "Endo", "Fagin", "Gupta", "Hopper", "Ito", "Jones",
];

/// Generates an XMark-style document of roughly `config.target_bytes`
/// serialized bytes.
pub fn generate(config: XmarkConfig) -> Tree {
    Generator::new(config).run()
}

struct Generator {
    rng: StdRng,
    tree: Tree,
    /// Running estimate of serialized size, maintained incrementally so
    /// sizing is O(n) total.
    bytes: usize,
    target: usize,
    item_seq: usize,
    person_seq: usize,
    auction_seq: usize,
}

impl Generator {
    fn new(config: XmarkConfig) -> Generator {
        Generator {
            rng: StdRng::seed_from_u64(config.seed),
            tree: Tree::new("site"),
            bytes: 0,
            target: config.target_bytes,
            item_seq: 0,
            person_seq: 0,
            auction_seq: 0,
        }
    }

    fn run(mut self) -> Tree {
        let root = self.tree.root();
        let regions = self.el(root, "regions");
        let region_nodes: Vec<NodeId> = REGIONS.iter().map(|r| self.el(regions, r)).collect();
        let categories = self.el(root, "categories");
        let people = self.el(root, "people");
        let open = self.el(root, "open_auctions");
        let closed = self.el(root, "closed_auctions");

        for i in 0..6 {
            let cat = self.el(categories, "category");
            let name = format!("category{i}");
            self.text(cat, "name", &name);
        }

        // Round-robin sections until the size target is met, so every
        // section grows proportionally (like xmlgen's fixed ratios).
        while self.bytes < self.target {
            let region = region_nodes[self.item_seq % region_nodes.len()];
            self.item(region);
            self.person(people);
            self.open_auction(open);
            if self.auction_seq.is_multiple_of(2) {
                self.closed_auction(closed);
            }
        }
        self.tree
    }

    /// Adds an element, maintaining the size estimate.
    fn el(&mut self, parent: NodeId, label: &str) -> NodeId {
        self.bytes += 2 * label.len() + 5;
        self.tree.add_child(parent, label)
    }

    /// Adds a text element, maintaining the size estimate.
    fn text(&mut self, parent: NodeId, label: &str, value: &str) -> NodeId {
        self.bytes += 2 * label.len() + 5 + value.len();
        self.tree.add_text_child(parent, label, value)
    }

    fn words(&mut self, n: usize) -> String {
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(WORDS[self.rng.random_range(0..WORDS.len())]);
        }
        out
    }

    fn person_name(&mut self) -> String {
        format!(
            "{} {}",
            FIRST[self.rng.random_range(0..FIRST.len())],
            LAST[self.rng.random_range(0..LAST.len())]
        )
    }

    fn item(&mut self, region: NodeId) {
        let id = self.item_seq;
        self.item_seq += 1;
        let item = self.el(region, "item");
        let name = format!("item{id}");
        self.text(item, "name", &name);
        let loc = if self.rng.random_bool(0.7) {
            "United States"
        } else {
            "Elsewhere"
        };
        self.text(item, "location", loc);
        let qty = self.rng.random_range(1..5u32).to_string();
        self.text(item, "quantity", &qty);
        let desc = self.el(item, "description");
        let body = self.words(8);
        self.text(desc, "text", &body);
        let payment = if self.rng.random_bool(0.5) {
            "Creditcard"
        } else {
            "Cash"
        };
        self.text(item, "payment", payment);
        if self.rng.random_bool(0.3) {
            let mailbox = self.el(item, "mailbox");
            let mail = self.el(mailbox, "mail");
            let from = self.person_name();
            self.text(mail, "from", &from);
            let date = format!("0{}/2006", 1 + id % 9);
            self.text(mail, "date", &date);
            let body = self.words(5);
            self.text(mail, "text", &body);
        }
    }

    fn person(&mut self, people: NodeId) {
        let id = self.person_seq;
        self.person_seq += 1;
        let p = self.el(people, "person");
        let name = self.person_name();
        self.text(p, "name", &name);
        let email = format!("mailto:person{id}@example.com");
        self.text(p, "emailaddress", &email);
        if self.rng.random_bool(0.4) {
            let phone = format!("+1 ({}) 555-01{:02}", 200 + id % 700, id % 100);
            self.text(p, "phone", &phone);
        }
    }

    fn open_auction(&mut self, open: NodeId) {
        let id = self.auction_seq;
        self.auction_seq += 1;
        let a = self.el(open, "open_auction");
        let initial = format!("{}.{:02}", self.rng.random_range(1..200u32), id % 100);
        self.text(a, "initial", &initial);
        for _ in 0..self.rng.random_range(1..4u32) {
            let bidder = self.el(a, "bidder");
            let inc = format!("{}.00", self.rng.random_range(1..20u32));
            self.text(bidder, "increase", &inc);
        }
        let itemref = format!("item{}", self.rng.random_range(0..self.item_seq.max(1)));
        self.text(a, "itemref", &itemref);
    }

    fn closed_auction(&mut self, closed: NodeId) {
        let a = self.el(closed, "closed_auction");
        let price = format!("{}.00", self.rng.random_range(5..500u32));
        self.text(a, "price", &price);
        let seller = self.person_name();
        self.text(a, "seller", &seller);
        let buyer = self.person_name();
        self.text(a, "buyer", &buyer);
    }
}

/// Plants a uniquely identifiable marker element under the given node —
/// used by the experiments to construct queries satisfied in a chosen
/// fragment (`qF0`, `qFn`, `qF⌈n/2⌉`).
pub fn plant_marker(tree: &mut Tree, under: NodeId, key: &str) -> NodeId {
    let m = tree.add_child(under, "qmarker");
    tree.add_text_child(m, "key", key);
    m
}

/// The XBL query satisfied exactly where [`plant_marker`] planted `key`.
pub fn marker_query(key: &str) -> String {
    format!("[//qmarker[key/text() = \"{key}\"]]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = generate(XmarkConfig {
            target_bytes: 20_000,
            seed: 7,
        });
        let b = generate(XmarkConfig {
            target_bytes: 20_000,
            seed: 7,
        });
        assert!(a.structural_eq(&b));
        let c = generate(XmarkConfig {
            target_bytes: 20_000,
            seed: 8,
        });
        assert!(!a.structural_eq(&c));
    }

    #[test]
    fn size_tracks_target() {
        for target in [5_000usize, 50_000, 200_000] {
            let t = generate(XmarkConfig::sized(target));
            let actual = t.byte_size(t.root());
            assert!(
                actual >= target && actual < target + target / 2 + 2_000,
                "target {target}, got {actual}"
            );
        }
    }

    #[test]
    fn has_xmark_vocabulary() {
        let t = generate(XmarkConfig::sized(30_000));
        let mut labels = std::collections::BTreeSet::new();
        for n in t.descendants(t.root()) {
            labels.insert(t.label_str(n).to_string());
        }
        for expect in [
            "site",
            "regions",
            "asia",
            "item",
            "name",
            "people",
            "person",
            "open_auctions",
            "open_auction",
            "bidder",
            "closed_auctions",
            "price",
        ] {
            assert!(labels.contains(expect), "missing {expect}");
        }
    }

    #[test]
    fn markers_work() {
        let mut t = generate(XmarkConfig::sized(5_000));
        let root = t.root();
        plant_marker(&mut t, root, "F3");
        let q = parbox_query::compile(&parbox_query::parse_query(&marker_query("F3")).unwrap());
        // Marker query has the canonical |QList| = 8 shape of Example 2.1.
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn document_is_valid_tree() {
        let t = generate(XmarkConfig::sized(10_000));
        t.validate().unwrap();
        // Round-trips through serialization.
        let xml = t.to_xml();
        let back = Tree::parse(&xml).unwrap();
        assert!(t.structural_eq(&back));
    }
}

#![warn(missing_docs)]

//! # parbox-net
//!
//! The simulated distributed substrate of this ParBoX reproduction.
//!
//! The paper evaluated on ten Linux machines over a LAN. Here, each
//! *site* is a worker thread that really evaluates its fragments in
//! parallel ([`run_sites_parallel`]), while network costs are *modeled*
//! ([`NetworkModel`]): every message is recorded with its exact payload
//! size, and modeled elapsed time combines measured per-site compute with
//! latency + bandwidth terms. See DESIGN.md §5 for why this substitution
//! preserves the paper's experimental shapes.

mod cluster;
mod exec;
mod metrics;
mod model;

pub use cluster::Cluster;
pub use exec::{run_sites_parallel, run_sites_sequential, SiteRun};
pub use metrics::{Message, MessageKind, RunReport, SiteReport};
pub use model::NetworkModel;

// Re-exported so downstream users need not depend on parbox-frag for the
// common case of addressing sites.
pub use parbox_frag::SiteId;

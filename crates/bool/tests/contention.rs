//! Contention regression: the sharded arena must beat the single-mutex
//! seed baseline by ≥2x modeled intern saturation at 16 threads.
//!
//! Both sides run the identical deterministic workload (hot working-set
//! variables plus n-ary structure over recent ids — see
//! [`parbox_bool::contention`]); the baseline is a faithful replica of
//! the pre-sharding arena, so the ratio isolates the locking
//! discipline rather than canonicalization differences.
//!
//! The gate is on the *modeled* saturation ratio — the Amdahl bound
//! computed from measured per-op and critical-section costs — for the
//! same reason the experiment reports carry `elapsed_model_s` next to
//! `elapsed_wall_s`: wall-clock lock queueing only materializes when
//! the host really has ≥16 cores, which CI runners do not, while the
//! serial-section measurement is valid anywhere. Best-of-three to
//! shake scheduler noise on loaded machines.

use parbox_bool::contention::intern_contention_probe;

#[test]
fn sharded_arena_scales_2x_over_single_lock_at_16_threads() {
    const THREADS: usize = 16;
    // Debug builds run this too; keep the op count modest but large
    // enough that per-op costs measure stably.
    const OPS: u64 = 30_000;
    let mut best = 0.0f64;
    let mut probes = Vec::new();
    for _ in 0..3 {
        let p = intern_contention_probe(THREADS, OPS);
        best = best.max(p.modeled_scaling());
        probes.push(p);
        if best >= 2.0 {
            break;
        }
    }
    assert!(
        best >= 2.0,
        "sharded/single-lock modeled intern saturation ratio {best:.2} < 2.0 \
         at {THREADS} threads: {probes:#?}"
    );
}

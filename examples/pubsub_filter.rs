//! Publish–subscribe filtering: the paper's motivating use case for
//! Boolean XPath (Section 1). Subscriptions are standing queries on the
//! resident serving engine: each published update repairs the cached
//! triplets in place (O(depth), not O(|fragment|)) and pushes a
//! notification to every subscriber whose predicate flipped.
//!
//! Run with: `cargo run --example pubsub_filter`

use parbox::core::{Engine, EngineConfig, Update};
use parbox::frag::{Forest, Placement};
use parbox::query::{parse_query, Query};
use parbox::xmark::{generate, XmarkConfig};

fn main() {
    // The "publisher": an auction site whose top-level sections live on
    // different machines (regions, categories, people, auctions…).
    let tree = generate(XmarkConfig {
        target_bytes: 40_000,
        seed: 99,
    });
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let sections: Vec<_> = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).collect()
    };
    for s in sections {
        forest
            .split(f0, s)
            .expect("top-level sections split cleanly");
    }
    let placement = Placement::one_per_fragment(&forest);
    println!(
        "publisher: {} fragments over {} sites",
        forest.card(),
        placement.sites().len()
    );

    // Subscriptions, from plain structural to negated compound.
    let subs: Vec<(&str, Query)> = [
        ("cash-items", "[//item[payment/text() = \"Cash\"]]"),
        (
            "recall-watch",
            "[//item[name/text() = \"recalled-widget\"]]",
        ),
        ("empty-site", "[not(//item) and not(//person)]"),
        ("combo", "[//person and //item[payment/text() = \"Cash\"]]"),
    ]
    .into_iter()
    .map(|(name, src)| (name, parse_query(src).expect("valid subscription")))
    .collect();

    // One resident engine serves every subscription: standing queries
    // share the two-level triplet cache and are refreshed by the same
    // delta repair that maintains it.
    let mut engine =
        Engine::new(forest, placement, EngineConfig::default()).expect("valid deployment");
    let ids: Vec<_> = subs
        .iter()
        .map(|(name, q)| {
            let id = engine.subscribe(q);
            println!(
                "subscribe {:<14} initially {}",
                name,
                engine.subscription_answer(id).expect("just subscribed")
            );
            (id, *name)
        })
        .collect();

    // A published update: a recalled item appears in a region.
    let regions_frag = engine
        .forest()
        .fragment_ids()
        .find(|&f| {
            let t = &engine.forest().fragment(f).tree;
            t.label_str(t.root()) == "regions"
        })
        .expect("regions fragment");
    let region_node = {
        let t = &engine.forest().fragment(regions_frag).tree;
        t.children(t.root()).next().expect("a region")
    };
    println!("\npublish: recalled-widget listed under {regions_frag}");

    let out = engine
        .apply(Update::InsNode {
            frag: regions_frag,
            parent: region_node,
            label: "item".into(),
            text: None,
        })
        .expect("insert applies");
    assert!(out.notifications.is_empty(), "bare <item/> flips nothing");
    let item_node = {
        let t = &engine.forest().fragment(regions_frag).tree;
        t.children(region_node).last().expect("just inserted")
    };
    let out = engine
        .apply(Update::InsNode {
            frag: regions_frag,
            parent: item_node,
            label: "name".into(),
            text: Some("recalled-widget".into()),
        })
        .expect("insert applies");

    // The engine pushed the flips — no polling, no per-view refresh.
    for n in &out.notifications {
        let (_, name) = ids
            .iter()
            .find(|(id, _)| *id == n.subscription)
            .expect("notified subscription is registered");
        println!("notify {:<14} predicate is now {}", name, n.answer);
    }
    assert!(
        out.notifications.iter().any(|n| {
            let (_, name) = ids.iter().find(|(id, _)| *id == n.subscription).unwrap();
            *name == "recall-watch" && n.answer
        }),
        "the recall subscription must fire"
    );

    let stats = engine.stats();
    println!(
        "\nmaintenance: {} entries repaired in place, {} invalidated, \
         {} nodes re-interned, {} delta bytes shipped",
        stats.entries_repaired,
        stats.entries_invalidated,
        stats.repair_nodes_recomputed,
        stats.repair_delta_bytes
    );

    println!("\nfinal state:");
    for (id, name) in &ids {
        println!(
            "  {:<14} {}",
            name,
            engine.subscription_answer(*id).expect("still subscribed")
        );
    }
    engine.shutdown();
}

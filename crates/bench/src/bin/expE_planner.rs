//! **Experiment E**: the cost-based planner across query shapes ×
//! fragmentations (star / chain / even) × network models
//! (lan / wan / infinite) — by default 8 machines at the standard
//! corpus scale.
//!
//! Usage:
//! `cargo run --release -p parbox-bench --bin expE_planner \
//!    [--scale BYTES] [--machines N] [--json PATH]`
//!
//! Per cell every fixed strategy runs once and is scored with the
//! deterministic replay metric; the adaptive planner's time is its
//! chosen strategy's run. The binary asserts the ISSUE acceptance
//! criteria: adaptive within 1.1× of the best fixed strategy on every
//! cell, ≥2× better than the worst fixed strategy on at least one
//! cell, visit/message estimates exact for the deterministic
//! strategies, and traffic estimates within the documented factor
//! (the last two checked inside the sweep). `--json PATH` writes the
//! rows — prediction next to measurement — for the CI artifact.

// The experiment is named expE in the issue tracker; keep the binary name.
#![allow(non_snake_case)]

use parbox_bench::experiments::{expe_check, expe_planner, ExpERow};
use parbox_bench::Scale;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn to_json(rows: &[ExpERow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"expE_planner\",\n  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fragmentation\": \"{}\", \"network\": \"{}\", \"query\": \"{}\", \
             \"qlist\": {}, \"chosen\": \"{}\", \
             \"predicted\": {{\"visits\": {}, \"messages\": {}, \"traffic_bytes\": {}, \
             \"rounds\": {}, \"modeled_s\": {:.9}}}, \
             \"measured\": {{\"visits\": {}, \"messages\": {}, \"traffic_bytes\": {}}}, \
             \"adaptive_model_s\": {:.9}, \"best\": \"{}\", \"best_model_s\": {:.9}, \
             \"worst\": \"{}\", \"worst_model_s\": {:.9}}}{}\n",
            r.fragmentation,
            r.network,
            r.query,
            r.qlist,
            r.chosen,
            r.estimate.visits,
            r.estimate.messages,
            r.estimate.traffic_bytes,
            r.estimate.rounds,
            r.estimate.modeled_s,
            r.measured_visits,
            r.measured_messages,
            r.measured_bytes,
            r.adaptive_model_s,
            r.best,
            r.best_model_s,
            r.worst,
            r.worst_model_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let scale = Scale::from_args();
    let machines: usize = flag("--machines").and_then(|v| v.parse().ok()).unwrap_or(8);

    let rows = expe_planner(scale, machines);
    println!(
        "Experiment E — cost-based planner, {machines} machines, {} cells",
        rows.len()
    );
    println!(
        "{:<6} {:<9} {:<15} {:<18} {:>12} {:>12} {:>12} {:>8}",
        "shape", "network", "query", "chosen", "adaptive(s)", "best(s)", "worst(s)", "vs worst"
    );
    for r in &rows {
        println!(
            "{:<6} {:<9} {:<15} {:<18} {:>12.6} {:>12.6} {:>12.6} {:>7.1}x",
            r.fragmentation,
            r.network,
            r.query,
            r.chosen,
            r.adaptive_model_s,
            r.best_model_s,
            r.worst_model_s,
            r.worst_model_s / r.adaptive_model_s.max(1e-12)
        );
    }

    // Acceptance: adaptive ≤ 1.1x best per cell (1 ms model-granularity
    // allowance), ≥2x better than the worst somewhere.
    expe_check(&rows, 1e-3);
    let wins = rows
        .iter()
        .filter(|r| r.worst_model_s >= 2.0 * r.adaptive_model_s.max(1e-12))
        .count();
    println!(
        "acceptance: adaptive within 1.1x of best on all {} cells, ≥2x vs worst on {wins}",
        rows.len()
    );

    if let Some(path) = flag("--json") {
        std::fs::write(&path, to_json(&rows)).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("json rows written to {path}");
    }
}

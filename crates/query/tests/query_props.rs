//! Property-based tests of the query pipeline: printing and re-parsing
//! is the identity, normalization is stable, and compilation maintains
//! its structural invariants on arbitrary queries.

use parbox_query::{compile, compile_selection, normalize, parse_query, Path, Query, Step};
use proptest::prelude::*;

const LABELS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "eps"];
const TEXTS: [&str; 3] = ["one", "two words", "GOOG"];

fn step_strategy(inner: BoxedStrategy<Query>) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..LABELS.len()).prop_map(|i| Step::Label(LABELS[i].to_string())),
        1 => Just(Step::Wildcard),
        1 => Just(Step::SelfStep),
        1 => Just(Step::DescOrSelf),
        1 => inner.prop_map(|q| Step::Qualifier(Box::new(q))),
    ]
}

fn query_strategy() -> impl Strategy<Value = Query> {
    let leaf = prop_oneof![
        (0..LABELS.len()).prop_map(|i| Query::LabelEq(LABELS[i].to_string())),
        (0..LABELS.len(), 0..TEXTS.len()).prop_map(|(i, t)| Query::TextEq(
            Path::empty().desc().child(LABELS[i]),
            TEXTS[t].to_string(),
        )),
        (0..LABELS.len()).prop_map(|i| Query::Path(Path::empty().desc().child(LABELS[i]))),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        let steps = proptest::collection::vec(step_strategy(inner.clone().boxed()), 1..5);
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Query::not),
            steps.prop_map(|s| {
                // Paths must not begin with a bare qualifier (printing
                // `[q]` with no preceding step is not re-parseable) —
                // anchor with a self step.
                let mut steps = s;
                if matches!(steps.first(), Some(Step::Qualifier(_))) {
                    steps.insert(0, Step::SelfStep);
                }
                Query::Path(Path { steps })
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_then_parse_preserves_meaning(q in query_strategy()) {
        // Printing may add explicit `.` anchors (e.g. a qualifier right
        // after `//`), so the round-trip guarantee is semantic: the
        // re-parsed query normalizes identically, and printing is a
        // fixpoint after one round.
        let printed = format!("[{q}]");
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("cannot re-parse {printed}: {e}"));
        prop_assert_eq!(normalize(&reparsed), normalize(&q), "printed: {}", printed);
        prop_assert_eq!(format!("[{reparsed}]"), printed);
        prop_assert_eq!(compile(&reparsed), compile(&q));
    }

    #[test]
    fn normalization_is_stable_under_print_parse(q in query_strategy()) {
        let printed = format!("[{q}]");
        let reparsed = parse_query(&printed).unwrap();
        prop_assert_eq!(normalize(&q), normalize(&reparsed));
    }

    #[test]
    fn compiled_program_is_topological_and_linear(q in query_strategy()) {
        let c = compile(&q);
        prop_assert!(!c.is_empty());
        prop_assert!((c.root() as usize) < c.len());
        for (i, s) in c.subs().iter().enumerate() {
            for op in s.operands() {
                prop_assert!((op as usize) < i, "operand order violated at q{}", i + 1);
            }
        }
        // O(|q|): every AST node contributes at most 3 distinct sub-queries.
        prop_assert!(c.len() <= 3 * q.size() + 1, "|QList| {} vs |q| {}", c.len(), q.size());
    }

    #[test]
    fn hash_consing_never_duplicates(q in query_strategy()) {
        let c = compile(&q);
        let mut seen = std::collections::HashSet::new();
        for s in c.subs() {
            prop_assert!(seen.insert(s.clone()), "duplicate sub-query {s:?}");
        }
    }

    #[test]
    fn self_conjunction_adds_exactly_one_op(q in query_strategy()) {
        // compile(q ∧ q) = compile(q) + the single ∧ op (hash-consing).
        let single = compile(&q);
        let double = compile(&q.clone().and(q));
        prop_assert_eq!(double.len(), single.len() + 1);
    }

    #[test]
    fn selection_compiles_for_all_path_queries(q in query_strategy()) {
        // compile_selection accepts exactly non-Boolean shapes.
        let is_boolean = matches!(q, Query::And(_, _) | Query::Or(_, _) | Query::Not(_));
        match compile_selection(&q) {
            Ok(program) => {
                prop_assert!(!is_boolean);
                // Every qualifier id indexes into the shared program.
                for id in program.qual_ids() {
                    prop_assert!((id as usize) < program.quals.len());
                }
            }
            Err(parbox_query::SelectionError::NotAPath) => {
                // Either a Boolean AST shape, or a path that normalizes to
                // a Boolean (e.g. `.[a and b]` is just `a ∧ b`).
                let n = normalize(&q);
                prop_assert!(
                    is_boolean
                        || matches!(
                            n,
                            parbox_query::NQuery::And(_, _)
                                | parbox_query::NQuery::Or(_, _)
                                | parbox_query::NQuery::Not(_)
                        ),
                    "rejected non-Boolean {q}"
                );
            }
            Err(parbox_query::SelectionError::TooLong(_)) => {}
        }
    }
}

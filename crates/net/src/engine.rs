//! Persistent site workers — the resident substrate of the serving
//! engine.
//!
//! The one-shot algorithms ([`crate::run_sites_parallel`]) spawn a fresh
//! scoped thread per site *per query* and throw all per-site state away
//! when the query returns. A serving deployment instead keeps every site
//! **resident**: [`SitePool`] spawns one long-lived worker thread per
//! site, each owning shared handles to its fragments' trees and a
//! [`(FragmentId, QueryFingerprint)`](parbox_query::QueryFingerprint)
//! keyed **triplet cache**, and serves evaluation requests over a
//! request channel (an actor loop). Site startup is paid once per
//! deployment instead of once per query, and a fragment evaluated twice
//! under the same program fingerprint skips `bottomUp` entirely.
//!
//! Residency brings failure with it: a long-lived actor can panic,
//! wedge, or stall. [`SitePool::eval_round_supervised`] is the
//! fault-tolerant visit path — per-request deadlines, bounded retries
//! with deterministic backoff (see [`SupervisorConfig`]), and actor
//! restart + authoritative fragment re-seeding when a site is declared
//! dead or wedged. Fault *injection* for chaos testing is threaded
//! through the worker loop behind an inert-by-default [`FaultPlan`].
//!
//! Layering: this module provides the *mechanics* (threads, channels,
//! fragment ownership, caching, supervision); the evaluation kernel is
//! injected by the algorithm layer as an [`EvalFn`] (`parbox-core`
//! passes its `bottomUp`) and the protocol accounting (visits, messages,
//! cost models) stays with the coordinator in `parbox-core::serve`.

use crate::fault::{
    install_quiet_panic_hook, FaultContext, FaultKind, FaultPlan, InjectedFault, SupervisorConfig,
};
use crate::metrics::FaultSummary;
use crate::SiteId;
use parbox_bool::{triplet_delta_dag_wire_size, Triplet, TripletDelta};
use parbox_query::{CompiledQuery, QueryFingerprint};
use parbox_xml::{FragmentId, NodeId, Tree};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Result of evaluating one program over one fragment.
#[derive(Debug, Clone)]
pub struct FragmentEval {
    /// The fragment's `(V, CV, DV)` triplet under the program.
    pub triplet: Triplet,
    /// Work units spent (`nodes visited × |QList|`; 0 on a cache hit).
    pub work_units: u64,
}

/// The per-fragment evaluation kernel a site worker runs. Injected by the
/// algorithm layer (`parbox-core` passes procedure `bottomUp`), keeping
/// this crate below the algorithms in the dependency DAG.
pub type EvalFn = fn(&Tree, &CompiledQuery) -> FragmentEval;

/// Opaque per-`(fragment, program)` evaluation state owned by a site
/// worker on behalf of the algorithm layer (the memoized per-node
/// vectors of `parbox-core`'s incremental `bottomUp`). This crate only
/// stores and routes it; the delta kernel's functions downcast it.
pub type DeltaState = Box<dyn std::any::Any + Send>;

/// Result of repairing one cached evaluation in place.
#[derive(Debug, Clone)]
pub struct RepairedEval {
    /// The fragment's triplet after the repair.
    pub triplet: Triplet,
    /// Nodes recomputed (the root-to-change path, not the fragment).
    pub nodes_recomputed: u64,
    /// Work units spent (`nodes recomputed × |QList|`).
    pub work_units: u64,
}

/// Memo-building evaluation: like [`EvalFn`], but additionally returns
/// the repairable state the worker keeps alongside the cached triplet.
pub type BuildFn = fn(&Tree, &CompiledQuery) -> (FragmentEval, DeltaState);

/// In-place repair of a previously built [`DeltaState`] after a data
/// update whose deepest surviving changed node is the given anchor.
pub type RepairFn = fn(&mut DeltaState, &Tree, NodeId) -> RepairedEval;

/// A one-shot patch shipped with [`SitePool::repair`]: applies one pure
/// data update to the site's *locally owned* copy of the fragment tree.
/// Shipping the patch instead of a fresh tree handle keeps coordinator
/// and site trees uniquely owned, so neither side pays an `O(|F|)`
/// copy-on-write clone per update — the wire cost of an update is the
/// patch itself, `O(|delta|)`.
pub type PatchFn = Box<dyn FnOnce(&mut Tree) + Send>;

/// The delta-maintenance kernel pair injected by the algorithm layer.
/// When present, cache misses build repairable state and updates repair
/// cached entries in place instead of dropping them.
#[derive(Debug, Clone, Copy)]
pub struct DeltaKernel {
    /// Memo-building evaluation used on cache misses.
    pub build: BuildFn,
    /// O(depth) repair used on [`SitePool::repair`].
    pub repair: RepairFn,
}

/// The initial deployment passed to [`SitePool::spawn`]: each site with
/// the fragments (ids + shared tree handles) it will own.
pub type SiteDeployment = Vec<(SiteId, Vec<(FragmentId, Arc<Tree>)>)>;

/// One site's reply to an evaluation request.
#[derive(Debug)]
pub struct EvalReply {
    /// The replying site.
    pub site: SiteId,
    /// Per requested fragment: its triplet and whether it was served from
    /// the site's cache (no `bottomUp` run).
    pub triplets: Vec<(FragmentId, Arc<Triplet>, bool)>,
    /// Requested fragments that were **not resident** at the worker —
    /// the typed replacement for the old "fragment not resident" panic.
    /// The supervisor re-seeds these from the coordinator's
    /// authoritative handles and retries.
    pub missing: Vec<FragmentId>,
    /// Work units actually spent (cache hits contribute none).
    pub work_units: u64,
    /// Measured wall-clock time of the site's local work.
    pub elapsed: Duration,
}

/// Cache counters of one resident site worker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteCacheStats {
    /// Live cache entries.
    pub entries: usize,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that ran the evaluation kernel.
    pub misses: u64,
    /// Entries dropped by the FIFO capacity bound.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation (updates).
    pub invalidated: u64,
    /// Entries **repaired in place** by delta maintenance — the update
    /// path that replaces invalidation when a [`DeltaKernel`] is
    /// installed. A repaired entry keeps serving hits without a
    /// re-evaluation.
    pub repaired: u64,
    /// Freshly computed triplets that matched an already-stored one and
    /// were deduplicated into a shared allocation. Triplet contents are
    /// arena `FormulaId`s, so the content comparison is `O(|QList|)` id
    /// equality — cheap enough to run on every miss.
    pub shared: u64,
}

impl SiteCacheStats {
    /// Fraction of lookups answered from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

enum Request {
    /// Evaluate `program` over the listed resident fragments, consulting
    /// the cache under `fingerprint`.
    Eval {
        program: Arc<CompiledQuery>,
        fingerprint: QueryFingerprint,
        frags: Vec<FragmentId>,
        reply: mpsc::Sender<EvalReply>,
    },
    /// Install (or replace) a fragment's tree handle, dropping every
    /// cache entry of that fragment — the update-invalidation path.
    Load { frag: FragmentId, tree: Arc<Tree> },
    /// Apply a data-update patch to the site's own copy of the fragment
    /// and **repair** its cache entries in place through the delta
    /// kernel — the delta-maintenance replacement for
    /// [`Request::Load`]'s invalidation.
    Repair {
        frag: FragmentId,
        patch: PatchFn,
        anchor: NodeId,
        reply: mpsc::Sender<RepairReply>,
    },
    /// Remove a fragment (merged away or migrated) and its cache entries.
    Unload { frag: FragmentId },
    /// Report cache counters.
    Stats { reply: mpsc::Sender<SiteCacheStats> },
}

/// One repaired cache entry, as reported back to the coordinator.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Program fingerprint of the repaired `(fragment, program)` entry.
    pub fingerprint: QueryFingerprint,
    /// The entry's triplet after the repair.
    pub triplet: Arc<Triplet>,
    /// Whether the triplet differs from the cached one. Unchanged
    /// entries let the coordinator keep memoized answers untouched.
    pub changed: bool,
    /// Bytes the repair costs on the wire: the varint-DAG
    /// [`TripletDelta`] for changed entries, a 1-byte ack otherwise —
    /// never a full triplet re-ship.
    pub delta_bytes: usize,
}

/// A site's reply to a repair request ([`SitePool::repair`]).
#[derive(Debug)]
pub struct RepairReply {
    /// The replying site.
    pub site: SiteId,
    /// Whether the site owned the fragment and applied the patch. When
    /// false the site never had the tree (e.g. a restart raced the
    /// update) — the caller must fall back to reseed + invalidate.
    pub patched: bool,
    /// Per cached `(fragment, program)` entry: the repair outcome.
    pub outcomes: Vec<RepairOutcome>,
    /// Cache entries for the fragment that had no repairable state and
    /// were dropped (legacy invalidation for just those entries).
    pub dropped: u64,
    /// Total nodes recomputed across all repaired entries.
    pub nodes_recomputed: u64,
    /// Total work units spent.
    pub work_units: u64,
    /// Measured wall-clock time of the site's local work.
    pub elapsed: Duration,
}

struct SiteWorker {
    site: SiteId,
    eval: EvalFn,
    /// When present, cache misses run `delta.build` (memoizing state for
    /// later repair) instead of `eval`, and [`Request::Repair`] repairs
    /// entries in place.
    delta: Option<DeltaKernel>,
    plan: FaultPlan,
    /// Set by an injected [`FaultKind::Wedge`]: the worker stays alive
    /// but answers nothing, holding every subsequent request (and its
    /// reply sender) so the coordinator must detect it by deadline.
    wedged: bool,
    held: Vec<Request>,
    /// Reply senders kept alive by [`FaultKind::DropEnvelope`]: the
    /// envelope is "lost in flight", so the coordinator waits out the
    /// deadline instead of seeing an instant disconnect.
    dropped_replies: Vec<mpsc::Sender<EvalReply>>,
    fragments: HashMap<FragmentId, Arc<Tree>>,
    cache: HashMap<(FragmentId, QueryFingerprint), Arc<Triplet>>,
    /// Repairable evaluation state, one per cache entry built through the
    /// delta kernel. Kept strictly in step with `cache`: eviction,
    /// invalidation and unload drop the memo with the entry.
    memos: HashMap<(FragmentId, QueryFingerprint), DeltaState>,
    /// FIFO eviction order of cache keys.
    order: VecDeque<(FragmentId, QueryFingerprint)>,
    /// Content-addressed dedup: triplets keyed by their own
    /// `FormulaId`-stable value, so equal results computed under
    /// different fingerprints (or for different fragments) share one
    /// allocation. Keys equal values, so a hit can never return a stale
    /// *wrong* triplet; the map is only ever a memory optimization and
    /// is simply cleared when it outgrows the cache capacity.
    content: HashMap<Triplet, Arc<Triplet>>,
    capacity: usize,
    stats: SiteCacheStats,
}

impl SiteWorker {
    fn run(mut self, inbox: mpsc::Receiver<Request>) {
        // The loop exits when every sender is dropped — both at orderly
        // shutdown and when the supervisor restarts this actor. A wedged
        // worker keeps receiving (into `held`) so it, too, exits cleanly
        // once replaced.
        while let Ok(req) = inbox.recv() {
            if self.wedged {
                self.held.push(req);
                continue;
            }
            let fault = match &req {
                Request::Eval { .. } => self.plan.decide(self.site.0, FaultContext::Eval),
                Request::Load { .. } | Request::Repair { .. } => {
                    self.plan.decide(self.site.0, FaultContext::Apply)
                }
                _ => None,
            };
            match fault {
                Some(k @ (FaultKind::Panic | FaultKind::CrashApply)) => {
                    std::panic::panic_any(InjectedFault {
                        site: self.site.0,
                        kind: k,
                    });
                }
                Some(FaultKind::Wedge) => {
                    self.wedged = true;
                    self.held.push(req);
                    continue;
                }
                _ => {}
            }
            match req {
                Request::Eval {
                    program,
                    fingerprint,
                    frags,
                    reply,
                } => {
                    let start = Instant::now();
                    let mut work_units = 0u64;
                    let mut missing = Vec::new();
                    let mut triplets: Vec<(FragmentId, Arc<Triplet>, bool)> = Vec::new();
                    for f in frags {
                        if let Some(t) = self.cache.get(&(f, fingerprint)) {
                            self.stats.hits += 1;
                            triplets.push((f, Arc::clone(t), true));
                            continue;
                        }
                        let Some(tree) = self.fragments.get(&f) else {
                            // Typed error instead of crashing the actor:
                            // the supervisor re-seeds and retries.
                            missing.push(f);
                            continue;
                        };
                        self.stats.misses += 1;
                        // With a delta kernel, a miss builds repairable
                        // state so later updates cost O(depth) here.
                        let run = match self.delta {
                            Some(k) if self.capacity > 0 => {
                                let (run, state) = (k.build)(tree, &program);
                                self.memos.insert((f, fingerprint), state);
                                run
                            }
                            _ => (self.eval)(tree, &program),
                        };
                        work_units += run.work_units;
                        let t = self.share(run.triplet);
                        self.insert(f, fingerprint, Arc::clone(&t));
                        triplets.push((f, t, false));
                    }
                    let envelope = EvalReply {
                        site: self.site,
                        triplets,
                        missing,
                        work_units,
                        elapsed: start.elapsed(),
                    };
                    match fault {
                        Some(FaultKind::DelayReply) => {
                            std::thread::sleep(self.plan.reply_delay());
                            // The round may have given up; a dead reply
                            // channel is not the worker's problem.
                            let _ = reply.send(envelope);
                        }
                        Some(FaultKind::DropEnvelope) => {
                            self.dropped_replies.push(reply);
                        }
                        _ => {
                            let _ = reply.send(envelope);
                        }
                    }
                }
                Request::Load { frag, tree } => {
                    self.fragments.insert(frag, tree);
                    self.drop_entries_of(frag);
                }
                Request::Repair {
                    frag,
                    patch,
                    anchor,
                    reply,
                } => {
                    let envelope = self.repair_fragment(frag, patch, anchor);
                    match fault {
                        Some(FaultKind::DelayReply) => {
                            std::thread::sleep(self.plan.reply_delay());
                            let _ = reply.send(envelope);
                        }
                        // A dropped repair ack looks like a crash to the
                        // coordinator, which falls back to reseed +
                        // recompute — always sound, never stale.
                        Some(FaultKind::DropEnvelope) => {}
                        _ => {
                            let _ = reply.send(envelope);
                        }
                    }
                }
                Request::Unload { frag } => {
                    self.fragments.remove(&frag);
                    self.drop_entries_of(frag);
                }
                Request::Stats { reply } => {
                    let mut s = self.stats.clone();
                    s.entries = self.cache.len();
                    let _ = reply.send(s);
                }
            }
        }
    }

    /// Applies the update patch to the site's own copy of the fragment
    /// tree and repairs every cached entry of `frag` in place through
    /// the delta kernel. Entries without repairable state (kernel
    /// absent, or built before the kernel was installed) are dropped —
    /// invalidation for just those entries.
    fn repair_fragment(&mut self, frag: FragmentId, patch: PatchFn, anchor: NodeId) -> RepairReply {
        let start = Instant::now();
        let Some(handle) = self.fragments.get_mut(&frag) else {
            return RepairReply {
                site: self.site,
                patched: false,
                outcomes: Vec::new(),
                dropped: 0,
                nodes_recomputed: 0,
                work_units: 0,
                elapsed: start.elapsed(),
            };
        };
        // The handle is uniquely owned in steady state (the coordinator
        // keeps its own copy), so this mutates in place; a shared handle
        // (fresh seed) pays one clone and is unique thereafter.
        patch(Arc::make_mut(handle));
        let tree = Arc::clone(handle);
        let keys: Vec<(FragmentId, QueryFingerprint)> = self
            .cache
            .keys()
            .filter(|(f, _)| *f == frag)
            .copied()
            .collect();
        let mut outcomes = Vec::new();
        let mut dropped = 0u64;
        let mut nodes_recomputed = 0u64;
        let mut work_units = 0u64;
        for key in keys {
            let state = self.delta.and_then(|_| self.memos.get_mut(&key));
            let Some(state) = state else {
                self.cache.remove(&key);
                self.memos.remove(&key);
                self.stats.invalidated += 1;
                dropped += 1;
                continue;
            };
            let kernel = self.delta.expect("state implies kernel");
            let run = (kernel.repair)(state, &tree, anchor);
            nodes_recomputed += run.nodes_recomputed;
            work_units += run.work_units;
            let old = Arc::clone(self.cache.get(&key).expect("key from cache"));
            let changed = *old != run.triplet;
            let delta_bytes = if changed {
                triplet_delta_dag_wire_size(&TripletDelta::diff(&old, &run.triplet))
            } else {
                1 // bare "unchanged" ack
            };
            let t = self.share(run.triplet);
            // Replace in place: the key keeps its slot in the FIFO order.
            self.cache.insert(key, Arc::clone(&t));
            self.stats.repaired += 1;
            outcomes.push(RepairOutcome {
                fingerprint: key.1,
                triplet: t,
                changed,
                delta_bytes,
            });
        }
        RepairReply {
            site: self.site,
            patched: true,
            outcomes,
            dropped,
            nodes_recomputed,
            work_units,
            elapsed: start.elapsed(),
        }
    }

    /// Returns a shared handle for `t`, reusing an existing allocation
    /// when an identical triplet is already stored.
    fn share(&mut self, t: Triplet) -> Arc<Triplet> {
        if self.capacity == 0 {
            return Arc::new(t);
        }
        if self.content.len() > self.capacity {
            self.content.clear();
        }
        if let Some(existing) = self.content.get(&t) {
            self.stats.shared += 1;
            return Arc::clone(existing);
        }
        let arc = Arc::new(t);
        self.content.insert((*arc).clone(), Arc::clone(&arc));
        arc
    }

    fn insert(&mut self, frag: FragmentId, fp: QueryFingerprint, t: Arc<Triplet>) {
        if self.capacity == 0 {
            return;
        }
        if self.cache.insert((frag, fp), t).is_none() {
            self.order.push_back((frag, fp));
        }
        while self.cache.len() > self.capacity {
            // Entries already removed by invalidation may linger in the
            // order queue; skip them until a live key is found.
            match self.order.pop_front() {
                Some(key) => {
                    if self.cache.remove(&key).is_some() {
                        self.memos.remove(&key);
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }

    fn drop_entries_of(&mut self, frag: FragmentId) {
        let before = self.cache.len();
        self.cache.retain(|(f, _), _| *f != frag);
        self.memos.retain(|(f, _), _| *f != frag);
        self.stats.invalidated += (before - self.cache.len()) as u64;
    }
}

/// The outcome of one supervised evaluation round.
#[derive(Debug)]
pub struct SupervisedRound {
    /// Collected replies, ascending by site. A site that needed a
    /// missing-fragment re-seed may contribute two partial replies.
    pub replies: Vec<EvalReply>,
    /// Sites (with their unanswered fragments) that stayed down past
    /// every attempt. Empty on a healthy round.
    pub failed: Vec<(SiteId, Vec<FragmentId>)>,
    /// Timeout / retry / restart / recovery counters for the round.
    pub stats: FaultSummary,
    /// One entry per re-sent request (for the coordinator's message
    /// accounting: each retry is another visit on the wire).
    pub retry_visits: Vec<SiteId>,
}

/// A pool of resident site workers — one long-lived thread per site,
/// spawned once per deployment and reused across every query, batch and
/// update until the pool is shut down or dropped.
#[derive(Debug)]
pub struct SitePool {
    eval: EvalFn,
    delta: Option<DeltaKernel>,
    capacity: usize,
    plan: FaultPlan,
    senders: BTreeMap<u32, mpsc::Sender<Request>>,
    handles: BTreeMap<u32, JoinHandle<()>>,
    /// Join handles of replaced (restarted) workers. Joined at
    /// shutdown — not at restart time, where a worker sleeping in an
    /// injected delay would stall the coordinator.
    graveyard: Vec<JoinHandle<()>>,
    /// Sites whose last supervised round ended in failure. The stats
    /// path skips them so a wedged actor cannot stall diagnostics; any
    /// successful reply or restart lifts the quarantine.
    quarantined: HashSet<u32>,
    restarts: u64,
}

impl SitePool {
    /// Spawns one worker per site, each owning handles to its fragments'
    /// trees and an empty triplet cache bounded to `cache_capacity`
    /// entries (FIFO eviction; 0 disables caching).
    pub fn spawn(sites: SiteDeployment, cache_capacity: usize, eval: EvalFn) -> SitePool {
        SitePool::spawn_with_faults(sites, cache_capacity, eval, FaultPlan::none())
    }

    /// [`SitePool::spawn`] with a fault-injection plan threaded into
    /// every worker loop. The default [`FaultPlan::none`] is inert.
    pub fn spawn_with_faults(
        sites: SiteDeployment,
        cache_capacity: usize,
        eval: EvalFn,
        plan: FaultPlan,
    ) -> SitePool {
        SitePool::spawn_full(sites, cache_capacity, eval, plan, None)
    }

    /// [`SitePool::spawn_with_faults`] plus an optional [`DeltaKernel`]:
    /// with one installed, cache misses build repairable per-entry state
    /// and [`SitePool::repair`] maintains cached triplets in place.
    pub fn spawn_full(
        sites: SiteDeployment,
        cache_capacity: usize,
        eval: EvalFn,
        plan: FaultPlan,
        delta: Option<DeltaKernel>,
    ) -> SitePool {
        if !plan.is_inert() {
            install_quiet_panic_hook();
        }
        let mut pool = SitePool {
            eval,
            delta,
            capacity: cache_capacity,
            plan,
            senders: BTreeMap::new(),
            handles: BTreeMap::new(),
            graveyard: Vec::new(),
            quarantined: HashSet::new(),
            restarts: 0,
        };
        for (site, frags) in sites {
            pool.spawn_worker(site, frags);
        }
        pool
    }

    fn spawn_worker(&mut self, site: SiteId, frags: Vec<(FragmentId, Arc<Tree>)>) {
        let (tx, rx) = mpsc::channel();
        let worker = SiteWorker {
            site,
            eval: self.eval,
            delta: self.delta,
            plan: self.plan.clone(),
            wedged: false,
            held: Vec::new(),
            dropped_replies: Vec::new(),
            fragments: frags.into_iter().collect(),
            cache: HashMap::new(),
            memos: HashMap::new(),
            order: VecDeque::new(),
            content: HashMap::new(),
            capacity: self.capacity,
            stats: SiteCacheStats::default(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("parbox-site-{}", site.0))
            .spawn(move || worker.run(rx))
            .expect("spawn site worker");
        self.senders.insert(site.0, tx);
        if let Some(old) = self.handles.insert(site.0, handle) {
            self.graveyard.push(old);
        }
    }

    /// Ensures a worker exists for `site` (updates can migrate fragments
    /// to sites that were not part of the initial deployment).
    pub fn ensure_site(&mut self, site: SiteId) {
        if !self.senders.contains_key(&site.0) {
            self.spawn_worker(site, Vec::new());
        }
    }

    /// Tears down the actor for `site` (dead or presumed wedged) and
    /// spawns a replacement seeded with the coordinator's authoritative
    /// fragment handles. The fresh worker starts with empty caches, so
    /// every invalidation the old actor may have missed is trivially
    /// replayed. The old thread exits once its inbox disconnects; its
    /// handle is joined at shutdown.
    pub fn restart_site(&mut self, site: SiteId, frags: Vec<(FragmentId, Arc<Tree>)>) {
        self.senders.remove(&site.0);
        self.quarantined.remove(&site.0);
        self.restarts += 1;
        self.spawn_worker(site, frags);
    }

    /// Lifetime count of worker restarts.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Sites with a resident worker, ascending.
    pub fn sites(&self) -> Vec<SiteId> {
        self.senders.keys().map(|&s| SiteId(s)).collect()
    }

    fn sender(&self, site: SiteId) -> &mpsc::Sender<Request> {
        self.senders
            .get(&site.0)
            .unwrap_or_else(|| panic!("no resident worker for site {site}"))
    }

    /// Sends one evaluation request to `site` on a fresh per-attempt
    /// reply channel. A send error means the actor is dead (its inbox
    /// hung up), which only a panic can cause.
    fn send_eval(
        &self,
        site: SiteId,
        program: &Arc<CompiledQuery>,
        fingerprint: QueryFingerprint,
        frags: &[FragmentId],
    ) -> Option<mpsc::Receiver<EvalReply>> {
        let (tx, rx) = mpsc::channel();
        self.sender(site)
            .send(Request::Eval {
                program: Arc::clone(program),
                fingerprint,
                frags: frags.to_vec(),
                reply: tx,
            })
            .ok()
            .map(|()| rx)
    }

    /// Fans one evaluation round out to the listed sites **in parallel**
    /// (each worker runs concurrently on its own thread) and collects all
    /// replies, in ascending site order. This is the pre-supervision
    /// contract — any site failure is a hard error; serving traffic goes
    /// through [`SitePool::eval_round_supervised`] instead.
    pub fn eval_round(
        &mut self,
        program: &Arc<CompiledQuery>,
        fingerprint: QueryFingerprint,
        per_site: Vec<(SiteId, Vec<FragmentId>)>,
    ) -> Vec<EvalReply> {
        let out = self.eval_round_supervised(
            program,
            fingerprint,
            per_site,
            &SupervisorConfig::strict(),
            &mut |_| Vec::new(),
        );
        assert!(
            out.failed.is_empty(),
            "site worker failed without supervision: {:?}",
            out.failed
        );
        out.replies
    }

    /// The fault-tolerant visit path: fans the round out in parallel,
    /// enforces `cfg.deadline` per request, retries with exponential
    /// backoff + deterministic jitter up to `cfg.max_attempts`, restarts
    /// actors that are dead (send/recv disconnect) or presumed wedged
    /// (`cfg.restart_after_timeouts` consecutive deadlines), and
    /// re-seeds restarted or missing fragments from `reseed` — the
    /// coordinator's authoritative `Arc<Tree>` handles for a site.
    /// Sites still silent after the last attempt are returned in
    /// [`SupervisedRound::failed`] for the caller to degrade around.
    pub fn eval_round_supervised(
        &mut self,
        program: &Arc<CompiledQuery>,
        fingerprint: QueryFingerprint,
        per_site: Vec<(SiteId, Vec<FragmentId>)>,
        cfg: &SupervisorConfig,
        reseed: &mut dyn FnMut(SiteId) -> Vec<(FragmentId, Arc<Tree>)>,
    ) -> SupervisedRound {
        let mut stats = FaultSummary::default();
        let mut retry_visits = Vec::new();
        let mut replies: Vec<EvalReply> = Vec::new();
        let mut pending = per_site;
        let mut consecutive_timeouts: HashMap<u32, u32> = HashMap::new();
        let mut down_since: HashMap<u32, Instant> = HashMap::new();

        for attempt in 1..=cfg.max_attempts {
            if pending.is_empty() {
                break;
            }
            if attempt > 1 {
                std::thread::sleep(cfg.backoff(attempt - 1));
                stats.retries += pending.len() as u64;
                retry_visits.extend(pending.iter().map(|(s, _)| *s));
            }
            // Send phase: everything in flight before anything is awaited,
            // so workers run concurrently. A failed send means the actor
            // already died (e.g. crash-during-apply, detected here).
            let mut waiting = Vec::new();
            let mut next_pending: Vec<(SiteId, Vec<FragmentId>)> = Vec::new();
            for (site, frags) in pending.drain(..) {
                let rx = match self.send_eval(site, program, fingerprint, &frags) {
                    Some(rx) => Some(rx),
                    None => {
                        down_since.entry(site.0).or_insert_with(Instant::now);
                        let seed = reseed(site);
                        stats.reseeded_fragments += seed.len() as u64;
                        self.restart_site(site, seed);
                        stats.restarts += 1;
                        self.send_eval(site, program, fingerprint, &frags)
                    }
                };
                match rx {
                    Some(rx) => waiting.push((site, frags, rx, Instant::now())),
                    None => next_pending.push((site, frags)),
                }
            }
            // Collect phase: one shared deadline per request, measured
            // from its send.
            for (site, frags, rx, sent) in waiting {
                let left = (sent + cfg.deadline).saturating_duration_since(Instant::now());
                match rx.recv_timeout(left) {
                    Ok(mut reply) => {
                        if let Some(since) = down_since.remove(&site.0) {
                            stats.recovery_s.push(since.elapsed().as_secs_f64());
                        }
                        consecutive_timeouts.remove(&site.0);
                        self.quarantined.remove(&site.0);
                        if reply.missing.is_empty() {
                            replies.push(reply);
                            continue;
                        }
                        // Partial reply: keep what arrived, re-seed the
                        // missing fragments, and retry just those.
                        let missing = std::mem::take(&mut reply.missing);
                        if !reply.triplets.is_empty() {
                            replies.push(reply);
                        }
                        let authoritative: HashMap<FragmentId, Arc<Tree>> =
                            reseed(site).into_iter().collect();
                        let mut still = Vec::new();
                        for f in missing {
                            if let Some(tree) = authoritative.get(&f) {
                                stats.reseeded_fragments += 1;
                                self.load(site, f, Arc::clone(tree));
                                still.push(f);
                            }
                            // A fragment the coordinator no longer places
                            // at this site is dropped from the round.
                        }
                        if !still.is_empty() {
                            next_pending.push((site, still));
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        stats.timeouts += 1;
                        down_since.entry(site.0).or_insert(sent);
                        let c = consecutive_timeouts.entry(site.0).or_insert(0);
                        *c += 1;
                        if *c >= cfg.restart_after_timeouts {
                            *c = 0;
                            let seed = reseed(site);
                            stats.reseeded_fragments += seed.len() as u64;
                            self.restart_site(site, seed);
                            stats.restarts += 1;
                        }
                        next_pending.push((site, frags));
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        // The actor dropped the reply sender without
                        // replying: it panicked mid-request.
                        down_since.entry(site.0).or_insert(sent);
                        let seed = reseed(site);
                        stats.reseeded_fragments += seed.len() as u64;
                        self.restart_site(site, seed);
                        stats.restarts += 1;
                        next_pending.push((site, frags));
                    }
                }
            }
            pending = next_pending;
        }
        stats.failed_sites = pending.len() as u64;
        for (site, _) in &pending {
            self.quarantined.insert(site.0);
        }
        replies.sort_by_key(|r| r.site);
        SupervisedRound {
            replies,
            failed: pending,
            stats,
            retry_visits,
        }
    }

    /// Installs (or refreshes) a fragment's tree handle at `site`,
    /// invalidating that fragment's cache entries there. Returns whether
    /// the request was delivered — `false` means the actor is dead and
    /// the caller should [`SitePool::restart_site`] it (the restart
    /// re-seeds from authoritative handles, which subsumes the load).
    pub fn load(&self, site: SiteId, frag: FragmentId, tree: Arc<Tree>) -> bool {
        self.sender(site).send(Request::Load { frag, tree }).is_ok()
    }

    /// Ships an in-place update to `site` and waits (bounded by
    /// `deadline`) for its cached entries of `frag` to be repaired
    /// through the delta kernel. Returns `None` when the actor is dead,
    /// the reply channel disconnects (a crash mid-apply), or the
    /// deadline expires — the caller must then fall back to restart +
    /// invalidate, never trusting a possibly half-repaired cache.
    pub fn repair(
        &self,
        site: SiteId,
        frag: FragmentId,
        patch: PatchFn,
        anchor: NodeId,
        deadline: Duration,
    ) -> Option<RepairReply> {
        let (tx, rx) = mpsc::channel();
        self.senders
            .get(&site.0)?
            .send(Request::Repair {
                frag,
                patch,
                anchor,
                reply: tx,
            })
            .ok()?;
        rx.recv_timeout(deadline).ok()
    }

    /// Removes a fragment (and its cache entries) from `site`. Returns
    /// whether the request was delivered, as for [`SitePool::load`].
    pub fn unload(&self, site: SiteId, frag: FragmentId) -> bool {
        self.sender(site).send(Request::Unload { frag }).is_ok()
    }

    /// Snapshot of every site's cache counters. Sites whose last
    /// supervised round failed are skipped (a wedged actor would stall
    /// the stats path); dead actors simply drop out of the snapshot.
    pub fn cache_stats(&self) -> BTreeMap<u32, SiteCacheStats> {
        let mut waiting = Vec::new();
        for (&site, sender) in &self.senders {
            if self.quarantined.contains(&site) {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            if sender.send(Request::Stats { reply: tx }).is_ok() {
                waiting.push((site, rx));
            }
        }
        let mut out = BTreeMap::new();
        for (site, rx) in waiting {
            if let Ok(stats) = rx.recv_timeout(Duration::from_secs(5)) {
                out.insert(site, stats);
            }
        }
        out
    }

    /// Deterministic teardown: closes every inbox (workers drain their
    /// queues and exit) and joins all actor threads, including restarted
    /// workers' predecessors. Returns how many workers had panicked.
    /// Tolerates already-dead actors; never panics. Idempotent.
    pub fn shutdown(&mut self) -> usize {
        self.senders.clear();
        let mut panicked = 0;
        for (_, handle) in std::mem::take(&mut self.handles) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        for handle in self.graveyard.drain(..) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        panicked
    }
}

impl Drop for SitePool {
    fn drop(&mut self) {
        // Joining a panicked worker yields an `Err` we discard — no
        // second panic during unwind, however the workers died.
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbox_bool::Formula;
    use parbox_query::{compile, parse_query};

    /// A toy kernel: constant triplet, one work unit per program op.
    fn toy_eval(tree: &Tree, q: &CompiledQuery) -> FragmentEval {
        FragmentEval {
            triplet: Triplet {
                v: vec![Formula::constant(tree.len().is_multiple_of(2)); q.len()],
                cv: vec![Formula::FALSE; q.len()],
                dv: vec![Formula::FALSE; q.len()],
            },
            work_units: q.len() as u64,
        }
    }

    fn site_tree(s: u32) -> Arc<Tree> {
        Arc::new(Tree::parse(&format!("<s{s}><a/></s{s}>")).unwrap())
    }

    fn deployment(n_sites: u32) -> SiteDeployment {
        (0..n_sites)
            .map(|s| (SiteId(s), vec![(FragmentId(s), site_tree(s))]))
            .collect()
    }

    fn pool_of(n_sites: u32, capacity: usize) -> SitePool {
        SitePool::spawn(deployment(n_sites), capacity, toy_eval)
    }

    fn chaos_pool(n_sites: u32, plan: FaultPlan) -> SitePool {
        SitePool::spawn_with_faults(deployment(n_sites), 16, toy_eval, plan)
    }

    fn q() -> Arc<CompiledQuery> {
        Arc::new(compile(&parse_query("[//a]").unwrap()))
    }

    fn test_cfg() -> SupervisorConfig {
        SupervisorConfig {
            deadline: Duration::from_millis(40),
            max_attempts: 4,
            restart_after_timeouts: 2,
            backoff_base: Duration::from_millis(2),
            jitter_seed: 7,
        }
    }

    #[test]
    fn round_reaches_all_sites_in_parallel() {
        let mut pool = pool_of(4, 16);
        let program = q();
        let per_site = (0..4).map(|s| (SiteId(s), vec![FragmentId(s)])).collect();
        let replies = pool.eval_round(&program, program.fingerprint(), per_site);
        assert_eq!(replies.len(), 4);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.site, SiteId(i as u32));
            assert_eq!(r.triplets.len(), 1);
            assert!(!r.triplets[0].2, "first evaluation cannot hit the cache");
            assert_eq!(r.work_units, program.len() as u64);
        }
    }

    #[test]
    fn repeat_fingerprint_hits_cache_and_skips_work() {
        let mut pool = pool_of(2, 16);
        let program = q();
        let per_site: Vec<_> = (0..2).map(|s| (SiteId(s), vec![FragmentId(s)])).collect();
        pool.eval_round(&program, program.fingerprint(), per_site.clone());
        let replies = pool.eval_round(&program, program.fingerprint(), per_site);
        for r in &replies {
            assert!(r.triplets[0].2, "second round must hit");
            assert_eq!(r.work_units, 0);
        }
        let stats = pool.cache_stats();
        assert_eq!(stats[&0].hits, 1);
        assert_eq!(stats[&0].misses, 1);
    }

    #[test]
    fn load_invalidates_only_that_fragment() {
        let tree = Arc::new(Tree::parse("<r><a/></r>").unwrap());
        let sites = vec![(
            SiteId(0),
            vec![(FragmentId(0), Arc::clone(&tree)), (FragmentId(1), tree)],
        )];
        let mut pool = SitePool::spawn(sites, 16, toy_eval);
        let program = q();
        let frags = vec![(SiteId(0), vec![FragmentId(0), FragmentId(1)])];
        pool.eval_round(&program, program.fingerprint(), frags.clone());
        // Refresh fragment 0 only.
        pool.load(
            SiteId(0),
            FragmentId(0),
            Arc::new(Tree::parse("<r><a/><b/></r>").unwrap()),
        );
        let replies = pool.eval_round(&program, program.fingerprint(), frags);
        assert!(!replies[0].triplets[0].2, "refreshed fragment re-evaluates");
        assert!(replies[0].triplets[1].2, "untouched fragment stays cached");
        let stats = pool.cache_stats();
        assert_eq!(stats[&0].invalidated, 1);
    }

    /// Toy delta kernel over [`toy_eval`]: the "state" is just the
    /// program width; repair recomputes the constant triplet from the
    /// freshly installed tree and reports one node touched.
    fn toy_build(tree: &Tree, q: &CompiledQuery) -> (FragmentEval, DeltaState) {
        (toy_eval(tree, q), Box::new(q.len()))
    }

    fn toy_repair(state: &mut DeltaState, tree: &Tree, _anchor: NodeId) -> RepairedEval {
        let m = *state.downcast_ref::<usize>().expect("toy state");
        RepairedEval {
            triplet: Triplet {
                v: vec![Formula::constant(tree.len().is_multiple_of(2)); m],
                cv: vec![Formula::FALSE; m],
                dv: vec![Formula::FALSE; m],
            },
            nodes_recomputed: 1,
            work_units: 1,
        }
    }

    const TOY_KERNEL: DeltaKernel = DeltaKernel {
        build: toy_build,
        repair: toy_repair,
    };

    fn delta_pool(n_sites: u32) -> SitePool {
        SitePool::spawn_full(
            deployment(n_sites),
            16,
            toy_eval,
            FaultPlan::none(),
            Some(TOY_KERNEL),
        )
    }

    #[test]
    fn repair_patches_cached_triplet_in_place() {
        let mut pool = delta_pool(1);
        let program = q();
        let frags = vec![(SiteId(0), vec![FragmentId(0)])];
        pool.eval_round(&program, program.fingerprint(), frags.clone());

        // <s0><a/></s0> has 2 nodes (even); the patch makes it 3 (odd).
        let anchor = Tree::parse("<s0><a/></s0>").unwrap().root();
        let reply = pool
            .repair(
                SiteId(0),
                FragmentId(0),
                Box::new(|t: &mut Tree| {
                    let root = t.root();
                    t.add_child(root, "b");
                }),
                anchor,
                Duration::from_secs(2),
            )
            .expect("repair reply");
        assert!(reply.patched);
        assert_eq!(reply.dropped, 0);
        assert_eq!(reply.outcomes.len(), 1);
        assert!(reply.outcomes[0].changed);
        assert!(reply.outcomes[0].delta_bytes >= 1);
        assert_eq!(reply.nodes_recomputed, 1);

        // The repaired entry serves the next round as a *hit* with the
        // new triplet — no invalidation, no re-evaluation.
        let replies = pool.eval_round(&program, program.fingerprint(), frags);
        assert!(replies[0].triplets[0].2, "repaired entry stays cached");
        assert_eq!(replies[0].triplets[0].1.v[0], Formula::constant(false));
        let stats = pool.cache_stats();
        assert_eq!(stats[&0].repaired, 1);
        assert_eq!(stats[&0].invalidated, 0);
    }

    #[test]
    fn unchanged_repair_reports_no_delta() {
        let mut pool = delta_pool(1);
        let program = q();
        let frags = vec![(SiteId(0), vec![FragmentId(0)])];
        pool.eval_round(&program, program.fingerprint(), frags.clone());

        // Two inserts keep the node parity even: the triplet is identical.
        let anchor = Tree::parse("<s0><a/></s0>").unwrap().root();
        let reply = pool
            .repair(
                SiteId(0),
                FragmentId(0),
                Box::new(|t: &mut Tree| {
                    let root = t.root();
                    t.add_child(root, "c");
                    t.add_child(root, "d");
                }),
                anchor,
                Duration::from_secs(2),
            )
            .expect("repair reply");
        assert!(!reply.outcomes[0].changed);
        assert_eq!(reply.outcomes[0].delta_bytes, 1, "unchanged = 1-byte ack");
        let replies = pool.eval_round(&program, program.fingerprint(), frags);
        assert!(replies[0].triplets[0].2);
    }

    #[test]
    fn repair_without_kernel_falls_back_to_invalidation() {
        let mut pool = pool_of(1, 16);
        let program = q();
        let frags = vec![(SiteId(0), vec![FragmentId(0)])];
        pool.eval_round(&program, program.fingerprint(), frags.clone());

        let anchor = Tree::parse("<s0><a/></s0>").unwrap().root();
        let reply = pool
            .repair(
                SiteId(0),
                FragmentId(0),
                Box::new(|t: &mut Tree| {
                    let root = t.root();
                    t.add_child(root, "b");
                }),
                anchor,
                Duration::from_secs(2),
            )
            .expect("repair reply");
        assert!(reply.patched);
        assert!(reply.outcomes.is_empty());
        assert_eq!(reply.dropped, 1, "no memo: entry must be invalidated");

        let missing = pool
            .repair(
                SiteId(0),
                FragmentId(9),
                Box::new(|_t: &mut Tree| {}),
                anchor,
                Duration::from_secs(2),
            )
            .expect("repair reply");
        assert!(!missing.patched, "unknown fragment cannot be patched");
        assert!(missing.outcomes.is_empty());

        let replies = pool.eval_round(&program, program.fingerprint(), frags);
        assert!(!replies[0].triplets[0].2, "entry was dropped, so re-eval");
        assert_eq!(replies[0].triplets[0].1.v[0], Formula::constant(false));
        let stats = pool.cache_stats();
        assert_eq!(stats[&0].repaired, 0);
        assert_eq!(stats[&0].invalidated, 1);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let mut pool = pool_of(1, 1);
        let a = Arc::new(compile(&parse_query("[//a]").unwrap()));
        let b = Arc::new(compile(&parse_query("[//b]").unwrap()));
        let frags = vec![(SiteId(0), vec![FragmentId(0)])];
        pool.eval_round(&a, a.fingerprint(), frags.clone());
        pool.eval_round(&b, b.fingerprint(), frags.clone());
        // `a` was evicted to make room for `b`.
        let replies = pool.eval_round(&a, a.fingerprint(), frags);
        assert!(!replies[0].triplets[0].2);
        let stats = pool.cache_stats();
        assert!(stats[&0].evictions >= 1);
        assert_eq!(stats[&0].entries, 1);
    }

    #[test]
    fn identical_triplets_share_one_allocation() {
        // toy_eval yields equal triplets for any two same-width programs,
        // so the second program's miss dedups against the first's entry:
        // same Arc, `shared` counter bumped.
        let mut pool = pool_of(1, 16);
        let a = Arc::new(compile(&parse_query("[//a]").unwrap()));
        let b = Arc::new(compile(&parse_query("[//b]").unwrap()));
        assert_eq!(a.len(), b.len());
        let frags = vec![(SiteId(0), vec![FragmentId(0)])];
        let r1 = pool.eval_round(&a, a.fingerprint(), frags.clone());
        let r2 = pool.eval_round(&b, b.fingerprint(), frags);
        assert!(!r2[0].triplets[0].2, "distinct fingerprint: a cache miss");
        assert!(
            Arc::ptr_eq(&r1[0].triplets[0].1, &r2[0].triplets[0].1),
            "equal triplets must share one allocation"
        );
        let stats = pool.cache_stats();
        assert_eq!(stats[&0].shared, 1);
    }

    #[test]
    fn ensure_site_spawns_new_workers() {
        let mut pool = pool_of(1, 4);
        assert_eq!(pool.sites(), vec![SiteId(0)]);
        pool.ensure_site(SiteId(7));
        pool.ensure_site(SiteId(7)); // idempotent
        assert_eq!(pool.sites(), vec![SiteId(0), SiteId(7)]);
        pool.load(
            SiteId(7),
            FragmentId(3),
            Arc::new(Tree::parse("<m><a/></m>").unwrap()),
        );
        let program = q();
        let replies = pool.eval_round(
            &program,
            program.fingerprint(),
            vec![(SiteId(7), vec![FragmentId(3)])],
        );
        assert_eq!(replies[0].site, SiteId(7));
    }

    #[test]
    fn supervised_round_with_inert_plan_matches_legacy() {
        let mut pool = pool_of(3, 16);
        let program = q();
        let per_site: Vec<_> = (0..3).map(|s| (SiteId(s), vec![FragmentId(s)])).collect();
        let out = pool.eval_round_supervised(
            &program,
            program.fingerprint(),
            per_site,
            &test_cfg(),
            &mut |_| Vec::new(),
        );
        assert_eq!(out.replies.len(), 3);
        assert!(out.failed.is_empty());
        assert!(!out.stats.any(), "healthy round records no fault activity");
        assert!(out.retry_visits.is_empty());
    }

    #[test]
    fn injected_panic_restarts_the_actor_and_the_round_recovers() {
        let plan = FaultPlan::scripted(vec![(0, 0, FaultKind::Panic)], Duration::ZERO);
        let mut pool = chaos_pool(2, plan);
        let program = q();
        let per_site: Vec<_> = (0..2).map(|s| (SiteId(s), vec![FragmentId(s)])).collect();
        let out = pool.eval_round_supervised(
            &program,
            program.fingerprint(),
            per_site,
            &test_cfg(),
            &mut |s| vec![(FragmentId(s.0), site_tree(s.0))],
        );
        assert_eq!(out.replies.len(), 2, "round completes despite the panic");
        assert!(out.failed.is_empty());
        assert_eq!(out.stats.restarts, 1);
        assert_eq!(out.stats.recovery_s.len(), 1, "recovery time was measured");
        assert_eq!(pool.restarts(), 1);
        // The replacement actor answers the next round directly.
        let again = pool.eval_round_supervised(
            &program,
            program.fingerprint(),
            vec![(SiteId(0), vec![FragmentId(0)])],
            &test_cfg(),
            &mut |_| Vec::new(),
        );
        assert!(again.failed.is_empty() && !again.stats.any());
        assert_eq!(pool.shutdown(), 1, "exactly the killed worker panicked");
    }

    #[test]
    fn wedged_actor_times_out_twice_then_restarts() {
        let plan = FaultPlan::scripted(vec![(1, 0, FaultKind::Wedge)], Duration::ZERO);
        let mut pool = chaos_pool(2, plan);
        let program = q();
        let per_site: Vec<_> = (0..2).map(|s| (SiteId(s), vec![FragmentId(s)])).collect();
        let out = pool.eval_round_supervised(
            &program,
            program.fingerprint(),
            per_site,
            &test_cfg(),
            &mut |s| vec![(FragmentId(s.0), site_tree(s.0))],
        );
        assert!(out.failed.is_empty(), "wedge is recovered within the round");
        assert!(out.stats.timeouts >= 2, "deadline expired before restart");
        assert_eq!(out.stats.restarts, 1);
        assert!(out.stats.retries >= 1);
        assert!(out.retry_visits.contains(&SiteId(1)));
        assert_eq!(pool.shutdown(), 0, "a wedged worker exits cleanly");
    }

    #[test]
    fn dropped_envelope_costs_one_timeout_but_no_restart() {
        let plan = FaultPlan::scripted(vec![(0, 0, FaultKind::DropEnvelope)], Duration::ZERO);
        let mut pool = chaos_pool(1, plan);
        let program = q();
        let out = pool.eval_round_supervised(
            &program,
            program.fingerprint(),
            vec![(SiteId(0), vec![FragmentId(0)])],
            &test_cfg(),
            &mut |_| Vec::new(),
        );
        assert!(out.failed.is_empty());
        assert_eq!(out.stats.timeouts, 1);
        assert_eq!(out.stats.restarts, 0, "one lost envelope is just a retry");
        assert_eq!(out.stats.retries, 1);
    }

    #[test]
    fn missing_fragment_is_reseeded_instead_of_crashing_the_actor() {
        // Site 0 starts *empty*; the round asks it for fragment 5.
        let mut pool = SitePool::spawn(vec![(SiteId(0), Vec::new())], 16, toy_eval);
        let program = q();
        let tree = Arc::new(Tree::parse("<m><a/></m>").unwrap());
        let out = pool.eval_round_supervised(
            &program,
            program.fingerprint(),
            vec![(SiteId(0), vec![FragmentId(5)])],
            &test_cfg(),
            &mut |_| vec![(FragmentId(5), Arc::clone(&tree))],
        );
        assert!(out.failed.is_empty());
        assert_eq!(out.stats.reseeded_fragments, 1);
        let served: Vec<_> = out
            .replies
            .iter()
            .flat_map(|r| r.triplets.iter().map(|(f, _, _)| *f))
            .collect();
        assert_eq!(served, vec![FragmentId(5)]);
        assert_eq!(pool.shutdown(), 0, "the actor never panicked");
    }

    #[test]
    fn site_down_past_every_attempt_fails_the_round_not_the_process() {
        let plan = FaultPlan::scripted(vec![(0, 0, FaultKind::Wedge)], Duration::ZERO);
        let mut pool = chaos_pool(2, plan);
        let program = q();
        let cfg = SupervisorConfig {
            deadline: Duration::from_millis(15),
            max_attempts: 2,
            restart_after_timeouts: u32::MAX, // never restart: stays wedged
            backoff_base: Duration::from_millis(1),
            jitter_seed: 7,
        };
        let per_site: Vec<_> = (0..2).map(|s| (SiteId(s), vec![FragmentId(s)])).collect();
        let out = pool.eval_round_supervised(
            &program,
            program.fingerprint(),
            per_site,
            &cfg,
            &mut |_| Vec::new(),
        );
        assert_eq!(out.replies.len(), 1, "the healthy site still answered");
        assert_eq!(out.failed.len(), 1);
        assert_eq!(out.failed[0].0, SiteId(0));
        assert_eq!(out.stats.failed_sites, 1);
        // The quarantined wedged site is skipped by the stats path —
        // this returns promptly instead of stalling on the dead actor.
        let stats = pool.cache_stats();
        assert!(stats.contains_key(&1) && !stats.contains_key(&0));
        assert_eq!(pool.shutdown(), 0);
    }

    #[test]
    fn shutdown_after_panics_is_quiet_and_idempotent() {
        let plan = FaultPlan::scripted(
            vec![(0, 0, FaultKind::Panic), (1, 0, FaultKind::Panic)],
            Duration::ZERO,
        );
        let mut pool = chaos_pool(2, plan);
        let program = q();
        // Kill both workers; no supervision, so collect nothing.
        for s in 0..2 {
            let _ = pool.send_eval(SiteId(s), &program, program.fingerprint(), &[FragmentId(s)]);
        }
        // Give the panics a moment to land before joining.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.shutdown(), 2);
        assert_eq!(pool.shutdown(), 0, "second shutdown is a no-op");
        drop(pool); // Drop after shutdown must not double-panic.
    }
}

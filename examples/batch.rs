//! Serving a batch of concurrent queries in one ParBoX round.
//!
//! Many users ask questions of the same fragmented document at once; the
//! batch engine compiles them into one merged program, visits every site
//! once for the whole batch, and reads each user's answer off a single
//! solver pass.
//!
//! Run with: `cargo run --example batch`

use parbox::core::{batch_query_wire_size, parbox, run_batch};
use parbox::prelude::*;
use parbox::query::{compile, compile_batch};

fn main() {
    // 1. The Fig. 1(b) portfolio document, fragmented per broker as in
    //    the quickstart example.
    let tree = Tree::parse(
        r#"<portofolio>
             <broker>
               <name>Merill Lynch</name>
               <market><name>NASDAQ</name>
                 <stock><code>GOOG</code><buy>374</buy><sell>373</sell></stock>
                 <stock><code>YHOO</code><buy>33</buy><sell>35</sell></stock>
               </market>
             </broker>
             <broker>
               <name>Bache</name>
               <market><name>NYSE</name>
                 <stock><code>IBM</code><buy>80</buy><sell>78</sell></stock>
               </market>
             </broker>
           </portofolio>"#,
    )
    .expect("valid XML");
    let mut forest = Forest::from_tree(tree);
    let f0 = forest.root_fragment();
    let brokers: Vec<_> = {
        let t = &forest.fragment(f0).tree;
        t.children(t.root()).collect()
    };
    for broker in brokers {
        forest.split(f0, broker).expect("splittable");
    }
    let placement = Placement::one_per_fragment(&forest);
    let model = NetworkModel::lan();
    let cluster = Cluster::new(&forest, &placement, model);

    // 2. Four concurrent user queries. They overlap — three mention
    //    stocks, two mention codes — so the merged program is much
    //    smaller than the four compiled separately.
    let sources = [
        "[//stock[code/text() = \"GOOG\"]]",
        "[//stock[code/text() = \"MSFT\"]]",
        "[//stock and //market[name/text() = \"NYSE\"]]",
        "[//broker[name/text() = \"Bache\"]]",
    ];
    let queries: Vec<Query> = sources
        .iter()
        .map(|s| parse_query(s).expect("valid XBL"))
        .collect();
    let batch = compile_batch(&queries);
    let compiled: Vec<_> = queries.iter().map(compile).collect();
    let summed: usize = compiled.iter().map(|c| c.len()).sum();
    println!(
        "merged QList: {} sub-queries for {} queries ({} compiled separately)",
        batch.merged_len(),
        batch.len(),
        summed
    );
    println!(
        "one batch request is {} bytes on the wire",
        batch_query_wire_size(&batch)
    );

    // 3. One round answers everything: one visit, one request and one
    //    triplet envelope per site.
    let out = run_batch(&cluster, &batch);
    for (src, answer) in sources.iter().zip(&out.answers) {
        println!("{answer:<5}  {src}");
    }
    println!(
        "visits (max/site): {}   messages: {}   traffic: {} bytes",
        out.report.max_visits(),
        out.report.total_messages(),
        out.report.total_bytes()
    );
    assert_eq!(out.report.max_visits(), 1);

    // 4. The same queries run sequentially visit every site once *per
    //    query* and pay the round-trip latency each time.
    let mut sequential_bytes = 0usize;
    let mut sequential_net = 0.0f64;
    for (i, c) in compiled.iter().enumerate() {
        let solo = parbox(&cluster, c);
        assert_eq!(solo.answer, out.answers[i], "engines must agree");
        sequential_bytes += solo.report.total_bytes();
        sequential_net += solo.report.network_cost_s(&model);
    }
    let batched_net = out.report.network_cost_s(&model);
    println!(
        "sequential ParBoX: {sequential_bytes} bytes, {sequential_net:.6}s network \
         — the batch saves {:.1}x network cost",
        sequential_net / batched_net.max(1e-12)
    );
}

//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! external dependencies are vendored as API-compatible subsets (see
//! `vendor/README.md`). This one is a small but *functional*
//! property-testing framework covering the surface the parbox test suites
//! use: composable [`strategy::Strategy`] values (ranges, tuples,
//! [`strategy::Just`], `prop_map`, `prop_recursive`, weighted
//! [`prop_oneof!`] unions, [`collection::vec()`], [`option::of`],
//! [`bool::ANY`]), the [`proptest!`] test macro, and `prop_assert*`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its deterministic seed so
//!   it can be replayed, but is not minimized.
//! * **Derived randomness** comes from the vendored `rand` xoshiro
//!   generator; each test function's case stream is deterministic (test
//!   name × case index), so failures are reproducible run-to-run.
//! * `PROPTEST_CASES` in the environment overrides the per-test case
//!   count, which CI uses to trade thoroughness for latency.

#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case runner and failure plumbing.

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Run-time configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A property failure: the message carried by `prop_assert!` and
    /// friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable description of the failed assertion.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    /// The random source handed to strategies while generating one case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Builds a generator for one (test, case) pair.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Uniform draw from a non-empty `usize` range.
        pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
            self.inner.random_range(range)
        }

        /// Fair coin flip.
        pub fn flip(&mut self) -> bool {
            self.inner.random_bool(0.5)
        }

        /// Next raw 64 random bits.
        pub fn bits(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Runs a property over many deterministic cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Builds a runner; `PROPTEST_CASES` in the environment overrides
        /// the configured case count.
        pub fn new(mut config: ProptestConfig) -> Self {
            if let Some(cases) = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
            {
                // Never 0: that would make every property pass vacuously.
                config.cases = cases.max(1);
            }
            TestRunner { config }
        }

        /// Runs `body` once per case with a per-case deterministic RNG.
        /// Panics (failing the enclosing `#[test]`) on the first case
        /// whose body returns `Err`.
        pub fn run_named<F>(&mut self, name: &str, mut body: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            // FNV-1a over the test name decorrelates sibling tests.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            for case in 0..self.config.cases {
                let seed = h.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1));
                let mut rng = TestRng::from_seed(seed);
                if let Err(e) = body(&mut rng) {
                    panic!(
                        "property `{name}` failed at case {case} (seed {seed:#018x}): {}",
                        e.message
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and their combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds recursive structures: `recurse` receives a strategy for
        /// the previous level and returns the strategy for one level up.
        /// `depth` bounds nesting; the size hints of real proptest are
        /// accepted but unused (no shrinking here, so no size budget).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                // At each level, keep a real chance of bottoming out so
                // expected sizes stay small.
                let leaf = self.clone().boxed();
                let deeper = recurse(current).boxed();
                current = Union::new(vec![(1, leaf), (2, deeper)]).boxed();
            }
            current
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }

        fn boxed(self) -> BoxedStrategy<T>
        where
            Self: Sized + 'static,
        {
            self // already erased; avoid double indirection
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Weighted choice between strategies — what [`crate::prop_oneof!`]
    /// builds.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union; weights must sum to a positive value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! requires positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.usize_in(0..self.total as usize) as u32;
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights cover the draw range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.bits() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! Default strategies for primitive types (the `name: type` form of
    //! [`crate::proptest!`] arguments and [`any`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.bits() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for an [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                rng.usize_in(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Generates `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            rng.flip().then(|| self.0.generate(rng))
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Fair-coin strategy for `bool`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }
}

pub mod prelude {
    //! The names `use proptest::prelude::*` is expected to bring in.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands the individual test functions of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            // Strategies are built once per test (tuples of strategies are
            // themselves strategies), then sampled once per case.
            let __proptest_strategies = $crate::__proptest_strats!(() $($args)*);
            runner.run_named(stringify!($name), |__proptest_rng| {
                let $crate::__proptest_pats!(() $($args)*) =
                    $crate::strategy::Strategy::generate(&__proptest_strategies, __proptest_rng);
                let __proptest_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __proptest_result
            });
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Internal: maps a [`proptest!`] argument list to a tuple of strategy
/// expressions (the `name: Type` form becomes [`arbitrary::any`]).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_strats {
    ( ($($acc:tt)*) ) => { ( $($acc)* ) };
    ( ($($acc:tt)*) $pat:pat in $strat:expr $(, $($rest:tt)*)? ) => {
        $crate::__proptest_strats!( ($($acc)* ($strat),) $($($rest)*)? )
    };
    ( ($($acc:tt)*) $var:ident : $ty:ty $(, $($rest:tt)*)? ) => {
        $crate::__proptest_strats!( ($($acc)* ($crate::arbitrary::any::<$ty>()),) $($($rest)*)? )
    };
}

/// Internal: maps a [`proptest!`] argument list to the matching tuple
/// pattern for one generated case.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_pats {
    ( ($($acc:tt)*) ) => { ( $($acc)* ) };
    ( ($($acc:tt)*) $pat:pat in $strat:expr $(, $($rest:tt)*)? ) => {
        $crate::__proptest_pats!( ($($acc)* $pat,) $($($rest)*)? )
    };
    ( ($($acc:tt)*) $var:ident : $ty:ty $(, $($rest:tt)*)? ) => {
        $crate::__proptest_pats!( ($($acc)* $var,) $($($rest)*)? )
    };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    __l
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (usize, bool)> {
        (0usize..10, crate::bool::ANY)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17) {
            prop_assert!((3..17).contains(&x));
        }

        #[test]
        fn vec_len_in_bounds(v in crate::collection::vec(0u8..255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
        }

        #[test]
        fn tuples_and_arbitrary(p in pair_strategy(), seed: u8) {
            let (n, _flag) = p;
            prop_assert!(n < 10);
            let _ = seed;
        }

        #[test]
        fn early_return_ok_is_accepted(x in 0usize..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_weights_and_recursion(v in recursive_vec()) {
            prop_assert!(depth(&v) <= 4, "depth {}", depth(&v));
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Nest {
        Leaf(u8),
        Node(Vec<Nest>),
    }

    fn depth(n: &Nest) -> usize {
        match n {
            Nest::Leaf(_) => 1,
            Nest::Node(xs) => 1 + xs.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn recursive_vec() -> impl Strategy<Value = Nest> {
        let leaf = prop_oneof![
            2 => (0u8..10).prop_map(Nest::Leaf),
            1 => Just(Nest::Leaf(99)),
        ];
        leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Nest::Node)
        })
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8));
            runner.run_named("always_fails", |_rng| Err(TestCaseError::fail("nope")));
        });
        assert!(result.is_err());
    }
}

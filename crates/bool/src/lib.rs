#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # parbox-bool
//!
//! Boolean formulas with free variables — the *partial answers* that
//! ParBoX sites ship instead of data (paper, Section 3.1) — together with
//! the `compFm` composition procedure, `(V, CV, DV)` [`Triplet`]s, the
//! linear Boolean [`EquationSystem`] solved by the coordinator (the
//! paper's `evalST`), and a compact wire encoding used for
//! communication-cost accounting: per-triplet ([`encode_triplet`]) for
//! single-query ParBoX and per-site envelopes ([`encode_site_envelope`])
//! for the batch engine, which packs every fragment triplet a site
//! computed into one message.
//!
//! Formula algebra folds constants as it builds (`compFm`, Fig. 3c):
//!
//! ```
//! use parbox_bool::{Formula, Var, VecKind, comp_fm, BoolOp};
//! use parbox_xml::FragmentId;
//!
//! let x = Formula::var(Var::new(FragmentId(1), VecKind::DV, 7));
//! // compFm folds constants: true ∨ x = true, false ∨ x = x.
//! assert_eq!(comp_fm(Formula::FALSE, x.clone(), BoolOp::Or), x);
//! ```
//!
//! Collecting every fragment's triplet yields a linear system of Boolean
//! equations that one bottom-up pass resolves (Example 3.3):
//!
//! ```
//! use parbox_bool::{EquationSystem, Formula, Triplet, Var, VecKind};
//! use parbox_xml::FragmentId;
//!
//! let (f0, f1) = (FragmentId(0), FragmentId(1));
//! let mut sys = EquationSystem::new();
//! // F0's answer is "the sub-query holds somewhere in F1": dx@F1.
//! let mut root = Triplet::all_false(1);
//! root.v[0] = Formula::var(Var::new(f1, VecKind::DV, 0));
//! sys.insert(f0, root);
//! // F1 resolves the sub-query to true locally.
//! let mut leaf = Triplet::all_false(1);
//! leaf.dv[0] = Formula::TRUE;
//! sys.insert(f1, leaf);
//!
//! let solved = sys.solve(&[f1, f0]).unwrap();
//! assert!(solved[&f0].v[0]);
//! ```

mod arena;
pub mod contention;
mod encode;
mod formula;
pub mod reference;
mod triplet;
mod var;

pub use encode::{
    decode_formula, decode_formula_dag, decode_site_envelope, decode_site_envelope_dag,
    decode_triplet, decode_triplet_dag, decode_triplet_delta_dag, encode_formula,
    encode_formula_dag, encode_site_envelope, encode_site_envelope_dag, encode_triplet,
    encode_triplet_dag, encode_triplet_delta_dag, site_envelope_dag_wire_size,
    site_envelope_wire_size, triplet_dag_wire_size, triplet_delta_dag_wire_size, triplet_wire_size,
    DecodeError,
};
pub use formula::{
    comp_fm, ArenaStats, BoolOp, Formula, FormulaId, FormulaNode, ShardCounters, SHARD_COUNT,
};
pub use triplet::{EquationSystem, ResolvedTriplet, SolveError, Triplet, TripletDelta};
pub use var::{Var, VecKind};

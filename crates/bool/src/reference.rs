//! The seed *tree* representation of formulas and triplets, preserved
//! verbatim as a differential-testing oracle and benchmark baseline.
//!
//! The production [`crate::Formula`] is a handle into the hash-consing
//! arena; this module keeps the original `Arc`-tree enum it replaced,
//! with the original smart constructors, substitution and evaluation —
//! including the original cost profile (per-composition allocation,
//! re-flattening n-ary accumulation, tree-walking substitution). It
//! backs:
//!
//! * the property tests asserting that arena-built formulas `eval`,
//!   `substitute` and resolve identically to the seed semantics
//!   (`tests/formula_props.rs`), and
//! * the `expD` benchmark, which quantifies the arena's speedup against
//!   exactly this representation.
//!
//! Nothing here is used on production paths.

use crate::formula::Formula;
use crate::triplet::{ResolvedTriplet, SolveError};
use crate::var::{Var, VecKind};
use parbox_xml::FragmentId;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The seed formula tree: one heap node per connective occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RefFormula {
    /// A known truth value.
    Const(bool),
    /// An unknown triplet entry of a sub-fragment.
    Var(Var),
    /// Negation.
    Not(Arc<RefFormula>),
    /// N-ary conjunction (flattened, at least two operands).
    And(Arc<[RefFormula]>),
    /// N-ary disjunction (flattened, at least two operands).
    Or(Arc<[RefFormula]>),
}

impl RefFormula {
    /// The constant `true`.
    pub const TRUE: RefFormula = RefFormula::Const(true);
    /// The constant `false`.
    pub const FALSE: RefFormula = RefFormula::Const(false);

    /// A variable formula.
    #[inline]
    pub fn var(v: Var) -> RefFormula {
        RefFormula::Var(v)
    }

    /// Seed smart conjunction: constant folding plus per-call
    /// re-flattening into a fresh `Arc<[..]>`.
    pub fn and(a: RefFormula, b: RefFormula) -> RefFormula {
        match (a, b) {
            (RefFormula::Const(false), _) | (_, RefFormula::Const(false)) => RefFormula::FALSE,
            (RefFormula::Const(true), f) | (f, RefFormula::Const(true)) => f,
            (a, b) => {
                let mut ops: Vec<RefFormula> = Vec::with_capacity(2);
                Self::flatten_into(a, &mut ops, true);
                Self::flatten_into(b, &mut ops, true);
                debug_assert!(ops.len() >= 2);
                RefFormula::And(ops.into())
            }
        }
    }

    /// Seed smart disjunction (see [`RefFormula::and`]).
    pub fn or(a: RefFormula, b: RefFormula) -> RefFormula {
        match (a, b) {
            (RefFormula::Const(true), _) | (_, RefFormula::Const(true)) => RefFormula::TRUE,
            (RefFormula::Const(false), f) | (f, RefFormula::Const(false)) => f,
            (a, b) => {
                let mut ops: Vec<RefFormula> = Vec::with_capacity(2);
                Self::flatten_into(a, &mut ops, false);
                Self::flatten_into(b, &mut ops, false);
                debug_assert!(ops.len() >= 2);
                RefFormula::Or(ops.into())
            }
        }
    }

    fn flatten_into(f: RefFormula, ops: &mut Vec<RefFormula>, conj: bool) {
        match (f, conj) {
            (RefFormula::And(xs), true) | (RefFormula::Or(xs), false) => {
                ops.extend(xs.iter().cloned())
            }
            (f, _) => ops.push(f),
        }
    }

    /// Seed smart negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> RefFormula {
        match self {
            RefFormula::Const(b) => RefFormula::Const(!b),
            RefFormula::Not(inner) => (*inner).clone(),
            f => RefFormula::Not(Arc::new(f)),
        }
    }

    /// Seed n-ary disjunction: a fold of binary [`RefFormula::or`] — the
    /// `O(k²)` accumulation the arena's single-pass `any` replaces.
    pub fn any<I: IntoIterator<Item = RefFormula>>(items: I) -> RefFormula {
        items.into_iter().fold(RefFormula::FALSE, RefFormula::or)
    }

    /// Seed n-ary conjunction (fold of binary [`RefFormula::and`]).
    pub fn all<I: IntoIterator<Item = RefFormula>>(items: I) -> RefFormula {
        items.into_iter().fold(RefFormula::TRUE, RefFormula::and)
    }

    /// The constant value, if fully evaluated.
    #[inline]
    pub fn as_const(&self) -> Option<bool> {
        match self {
            RefFormula::Const(b) => Some(*b),
            _ => None,
        }
    }

    /// Number of nodes of the formula tree.
    pub fn size(&self) -> usize {
        match self {
            RefFormula::Const(_) | RefFormula::Var(_) => 1,
            RefFormula::Not(f) => 1 + f.size(),
            RefFormula::And(xs) | RefFormula::Or(xs) => {
                1 + xs.iter().map(RefFormula::size).sum::<usize>()
            }
        }
    }

    /// The set of variables occurring in the formula (materializes the
    /// full set, as the seed did).
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            RefFormula::Const(_) => {}
            RefFormula::Var(v) => {
                out.insert(*v);
            }
            RefFormula::Not(f) => f.collect_vars(out),
            RefFormula::And(xs) | RefFormula::Or(xs) => {
                for f in xs.iter() {
                    f.collect_vars(out);
                }
            }
        }
    }

    /// Seed substitution: a full tree walk per call, rebuilding shared
    /// sub-DAGs once per occurrence.
    pub fn substitute<F>(&self, lookup: &F) -> RefFormula
    where
        F: Fn(Var) -> Option<RefFormula>,
    {
        match self {
            RefFormula::Const(b) => RefFormula::Const(*b),
            RefFormula::Var(v) => lookup(*v).unwrap_or(RefFormula::Var(*v)),
            RefFormula::Not(f) => f.substitute(lookup).not(),
            RefFormula::And(xs) => RefFormula::all(xs.iter().map(|f| f.substitute(lookup))),
            RefFormula::Or(xs) => RefFormula::any(xs.iter().map(|f| f.substitute(lookup))),
        }
    }

    /// Seed evaluation under a total assignment (tree walk).
    pub fn eval<F>(&self, assign: &F) -> bool
    where
        F: Fn(Var) -> bool,
    {
        match self {
            RefFormula::Const(b) => *b,
            RefFormula::Var(v) => assign(*v),
            RefFormula::Not(f) => !f.eval(assign),
            RefFormula::And(xs) => xs.iter().all(|f| f.eval(assign)),
            RefFormula::Or(xs) => xs.iter().any(|f| f.eval(assign)),
        }
    }

    /// Re-expresses this tree as an arena formula (iterative, so deep
    /// oracle trees cannot overflow the stack). Semantics-preserving:
    /// the result `eval`s identically under every assignment.
    pub fn to_arena(&self) -> Formula {
        enum Step<'a> {
            Visit(&'a RefFormula),
            BuildNot,
            BuildNary { conj: bool, n: usize },
        }
        let mut steps = vec![Step::Visit(self)];
        let mut values: Vec<Formula> = Vec::new();
        while let Some(step) = steps.pop() {
            match step {
                Step::Visit(f) => match f {
                    RefFormula::Const(b) => values.push(Formula::constant(*b)),
                    RefFormula::Var(v) => values.push(Formula::var(*v)),
                    RefFormula::Not(inner) => {
                        steps.push(Step::BuildNot);
                        steps.push(Step::Visit(inner));
                    }
                    RefFormula::And(xs) | RefFormula::Or(xs) => {
                        steps.push(Step::BuildNary {
                            conj: matches!(f, RefFormula::And(_)),
                            n: xs.len(),
                        });
                        for x in xs.iter().rev() {
                            steps.push(Step::Visit(x));
                        }
                    }
                },
                Step::BuildNot => {
                    let inner = values.pop().expect("operand built");
                    values.push(inner.not());
                }
                Step::BuildNary { conj, n } => {
                    let ops = values.split_off(values.len() - n);
                    values.push(if conj {
                        Formula::all(ops)
                    } else {
                        Formula::any(ops)
                    });
                }
            }
        }
        values.pop().expect("one value per formula")
    }
}

/// The seed `(V, CV, DV)` triplet over [`RefFormula`] entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefTriplet {
    /// Sub-query values at the fragment root.
    pub v: Vec<RefFormula>,
    /// Sub-query values accumulated over the root's children.
    pub cv: Vec<RefFormula>,
    /// Sub-query values accumulated over the root and its descendants.
    pub dv: Vec<RefFormula>,
}

impl RefTriplet {
    /// An all-`false` triplet of the given width.
    pub fn all_false(len: usize) -> RefTriplet {
        RefTriplet {
            v: vec![RefFormula::FALSE; len],
            cv: vec![RefFormula::FALSE; len],
            dv: vec![RefFormula::FALSE; len],
        }
    }

    /// The triplet of fresh variables for sub-fragment `frag`.
    pub fn fresh_vars(frag: FragmentId, len: usize) -> RefTriplet {
        let mk = |vec: VecKind| {
            (0..len as u32)
                .map(|i| RefFormula::Var(Var::new(frag, vec, i)))
                .collect()
        };
        RefTriplet {
            v: mk(VecKind::V),
            cv: mk(VecKind::CV),
            dv: mk(VecKind::DV),
        }
    }

    /// Width (`|QList(q)|`).
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True for a zero-width triplet.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Substitutes every entry (seed tree walks).
    pub fn substitute<F>(&self, lookup: &F) -> RefTriplet
    where
        F: Fn(Var) -> Option<RefFormula>,
    {
        RefTriplet {
            v: self.v.iter().map(|f| f.substitute(lookup)).collect(),
            cv: self.cv.iter().map(|f| f.substitute(lookup)).collect(),
            dv: self.dv.iter().map(|f| f.substitute(lookup)).collect(),
        }
    }

    /// Converts to plain Booleans; `None` if any entry is still open.
    pub fn resolved(&self) -> Option<ResolvedTriplet> {
        let take = |xs: &[RefFormula]| {
            xs.iter()
                .map(RefFormula::as_const)
                .collect::<Option<Vec<_>>>()
        };
        Some(ResolvedTriplet {
            v: take(&self.v)?,
            cv: take(&self.cv)?,
            dv: take(&self.dv)?,
        })
    }
}

/// Seed equation-system solve: per-fragment seed substitution in
/// bottom-up order (the original `evalST` implementation).
pub fn ref_solve(
    triplets: &HashMap<FragmentId, RefTriplet>,
    bottom_up: &[FragmentId],
) -> Result<HashMap<FragmentId, ResolvedTriplet>, SolveError> {
    let mut resolved: HashMap<FragmentId, ResolvedTriplet> = HashMap::new();
    for &frag in bottom_up {
        let triplet = triplets
            .get(&frag)
            .ok_or(SolveError::MissingFragment(frag))?;
        let substituted = triplet.substitute(&|var: Var| {
            resolved
                .get(&var.frag)
                .map(|r| RefFormula::Const(r.value_of(var)))
        });
        let closed = substituted
            .resolved()
            .ok_or(SolveError::NotBottomUp(frag))?;
        resolved.insert(frag, closed);
    }
    Ok(resolved)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> RefFormula {
        RefFormula::var(Var::new(FragmentId(i), VecKind::V, 0))
    }

    #[test]
    fn seed_semantics_preserved() {
        assert_eq!(RefFormula::and(RefFormula::TRUE, v(1)), v(1));
        assert_eq!(RefFormula::or(v(1), RefFormula::TRUE), RefFormula::TRUE);
        assert_eq!(v(1).not().not(), v(1));
        // Seed does *not* deduplicate: And(v1, v1) keeps both operands.
        let dup = RefFormula::and(v(1), v(1));
        let RefFormula::And(xs) = &dup else {
            panic!("{dup:?}")
        };
        assert_eq!(xs.len(), 2);
    }

    #[test]
    fn to_arena_preserves_truth_tables() {
        let f = RefFormula::and(RefFormula::or(v(1), v(2)), v(3).not());
        let g = f.to_arena();
        for bits in 0..8u32 {
            let assign = move |var: Var| bits & (1 << var.frag.0.saturating_sub(1)) != 0;
            assert_eq!(f.eval(&assign), g.eval(&assign), "bits {bits:b}");
        }
    }

    #[test]
    fn ref_solve_matches_shape() {
        let mut triplets = HashMap::new();
        let mut root = RefTriplet::all_false(1);
        root.v[0] = RefFormula::Var(Var::new(FragmentId(1), VecKind::DV, 0));
        triplets.insert(FragmentId(0), root);
        let mut leaf = RefTriplet::all_false(1);
        leaf.dv[0] = RefFormula::TRUE;
        triplets.insert(FragmentId(1), leaf);
        let solved = ref_solve(&triplets, &[FragmentId(1), FragmentId(0)]).unwrap();
        assert!(solved[&FragmentId(0)].v[0]);
    }
}

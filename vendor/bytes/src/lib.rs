//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the handful of external crates the code depends on are vendored as
//! API-compatible subsets (see `vendor/README.md`). This one covers the
//! byte-buffer surface used by `parbox-bool`'s wire encoding: growable
//! [`BytesMut`] with little-endian put methods, an immutable [`Bytes`]
//! cursor with matching getters, and the [`Buf`]/[`BufMut`] traits.

#![warn(missing_docs)]

/// Read-side cursor abstraction over a byte buffer.
pub trait Buf {
    /// Number of bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Reads one byte and advances the cursor.
    ///
    /// # Panics
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32` and advances the cursor.
    ///
    /// # Panics
    /// Panics if fewer than four bytes remain.
    fn get_u32_le(&mut self) -> u32;
}

/// Write-side abstraction over a growable byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32);
}

/// A growable, mutable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`] cursor.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Appends a slice of bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte buffer read through an advancing cursor (subset of
/// `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(src: &'static [u8]) -> Self {
        Self {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Number of unread bytes (cursor to end), mirroring `bytes::Bytes::len`
    /// semantics where consumed prefixes are dropped.
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past end of buffer");
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32_le past end of buffer");
        let mut le = [0u8; 4];
        le.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_le_bytes(le)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cursor_semantics() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        assert_eq!(buf.len(), 5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 5);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.len(), 0);
        assert!(bytes.is_empty());
    }

    #[test]
    fn from_static_reads() {
        let mut b = Bytes::from_static(&[1, 2, 3, 4, 5]);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u32_le(), u32::from_le_bytes([2, 3, 4, 5]));
    }
}

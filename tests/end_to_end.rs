//! End-to-end tests over the experiment builders: every algorithm agrees
//! on every experiment topology, fragments really ship as serialized XML
//! and triplets as their binary encoding, and the harness experiment
//! functions produce sound series.

// This file is an expA-era caller the deprecated HybridParBoX shim
// explicitly keeps compiling.
#![allow(deprecated)]

use parbox::boolean::{decode_triplet, encode_triplet};
use parbox::core::{
    centralized_eval, full_dist_parbox, hybrid_parbox, lazy_parbox, naive_centralized,
    naive_distributed, parbox,
};
use parbox::net::{Cluster, NetworkModel};
use parbox::query::{compile, parse_query};
use parbox::xmark::{marker_query, query_with_qlist};
use parbox_bench::{ft1, ft2_chain, ft3, single_site_split, Scale};

fn tiny() -> Scale {
    Scale {
        corpus_bytes: 36_000,
        seed: 4242,
    }
}

#[test]
fn all_algorithms_agree_on_every_topology() {
    let scale = tiny();
    let clusters: Vec<(&str, parbox::frag::Forest, parbox::frag::Placement)> = vec![
        ("ft1", ft1(scale, 5).0, ft1(scale, 5).1),
        ("ft2", ft2_chain(scale, 5).0, ft2_chain(scale, 5).1),
        ("ft3", ft3(scale, 0.5).0, ft3(scale, 0.5).1),
        (
            "single-site",
            single_site_split(scale, 4).0,
            single_site_split(scale, 4).1,
        ),
    ];
    let queries = [
        marker_query("F0"),
        marker_query("F3"),
        "[//item and //person]".to_string(),
        "[not(//item[payment/text() = \"Bitcoin\"])]".to_string(),
        "[//open_auction[bidder/increase/text() = \"5.00\"]]".to_string(),
    ];
    for (name, forest, placement) in &clusters {
        let whole = forest.reassemble();
        let cluster = Cluster::new(forest, placement, NetworkModel::lan());
        for src in &queries {
            let q = compile(&parse_query(src).unwrap());
            let expected = centralized_eval(&whole, &q);
            assert_eq!(parbox(&cluster, &q).answer, expected, "parbox {name} {src}");
            assert_eq!(
                naive_centralized(&cluster, &q).answer,
                expected,
                "nc {name} {src}"
            );
            assert_eq!(
                naive_distributed(&cluster, &q).answer,
                expected,
                "nd {name} {src}"
            );
            assert_eq!(
                hybrid_parbox(&cluster, &q).answer,
                expected,
                "hy {name} {src}"
            );
            assert_eq!(
                full_dist_parbox(&cluster, &q).answer,
                expected,
                "fd {name} {src}"
            );
            assert_eq!(
                lazy_parbox(&cluster, &q).answer,
                expected,
                "lz {name} {src}"
            );
        }
    }
}

#[test]
fn triplets_survive_the_wire() {
    // What the net layer accounts as "triplet bytes" must actually be a
    // decodable encoding carrying the same values.
    let (forest, _) = ft1(tiny(), 4);
    let (_, q) = query_with_qlist(15, 1);
    for f in forest.fragment_ids() {
        let run = parbox::core::bottom_up(&forest.fragment(f).tree, &q);
        let mut buf = bytes::BytesMut::new();
        encode_triplet(&run.triplet, &mut buf);
        let mut wire = buf.freeze();
        let back = decode_triplet(&mut wire).unwrap();
        assert_eq!(back, run.triplet, "fragment {f}");
    }
}

#[test]
fn fragments_survive_the_wire_as_xml() {
    let (forest, _) = ft2_chain(tiny(), 4);
    for f in forest.fragment_ids() {
        let t = &forest.fragment(f).tree;
        let xml = t.to_xml();
        let back = parbox::xml::Tree::parse(&xml).unwrap();
        assert!(t.structural_eq(&back), "fragment {f} lost in serialization");
    }
}

#[test]
fn marker_queries_target_exactly_one_fragment() {
    let (forest, placement) = ft2_chain(tiny(), 5);
    let cluster = Cluster::new(&forest, &placement, NetworkModel::lan());
    for f in forest.fragment_ids() {
        let q = compile(&parse_query(&marker_query(&f.to_string())).unwrap());
        assert!(parbox(&cluster, &q).answer, "marker {f} must be found");
        // Every *other* fragment alone cannot satisfy the marker: its
        // local DV entry is either false or still open (depends on its
        // sub-fragments, which is where the marker actually lives).
        for other in forest.fragment_ids().filter(|&o| o != f) {
            let run = parbox::core::bottom_up(&forest.fragment(other).tree, &q);
            let local = &run.triplet.dv[q.root() as usize];
            assert_ne!(
                local.as_const(),
                Some(true),
                "marker {f} wrongly matched inside {other}"
            );
        }
    }
    // A marker that was never planted is not found.
    let q = compile(&parse_query(&marker_query("F99")).unwrap());
    assert!(!parbox(&cluster, &q).answer);
}

#[test]
fn experiment_series_are_internally_consistent() {
    use parbox_bench::experiments as exp;
    let scale = tiny();

    // Fig. 7: NaiveCentralized's modeled runtime grows with machine count
    // (shipping dominates — a deterministic model term), and ParBoX never
    // ships data. Wall-clock comparisons at this tiny scale are noise, so
    // the parallel-speedup shape itself is asserted on traffic and on the
    // 4 MiB-scale harness runs recorded in EXPERIMENTS.md.
    let rows = exp::experiment1_fig7(scale, 6);
    let rt = |series: &str, x: f64| {
        rows.iter()
            .find(|r| r.series == series && r.x == x)
            .unwrap()
            .runtime_s
    };
    let bytes = |series: &str, x: f64| {
        rows.iter()
            .find(|r| r.series == series && r.x == x)
            .unwrap()
            .bytes
    };
    assert!(rt("NaiveCentralized", 6.0) > rt("NaiveCentralized", 1.0));
    assert!(bytes("NaiveCentralized", 6.0) > 10 * bytes("ParBoX", 6.0));

    // Fig. 12: runtime grows with data for every query size.
    let rows = exp::experiment3_fig12(scale, 4);
    for size in ["|QList|=2", "|QList|=23"] {
        let mut xs: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.series == size)
            .map(|r| (r.x, r.runtime_s))
            .collect();
        xs.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(
            xs.last().unwrap().1 > xs.first().unwrap().1 * 0.8,
            "{size} did not grow with data: {xs:?}"
        );
    }

    // Fig. 4: ParBoX ships less than NaiveCentralized, visits once.
    let table = exp::fig4_table(scale, 4);
    let pb = table.iter().find(|r| r.algorithm == "ParBoX").unwrap();
    let nc = table
        .iter()
        .find(|r| r.algorithm == "NaiveCentralized")
        .unwrap();
    assert!(pb.bytes < nc.bytes);
    assert_eq!(pb.max_visits, 1);
}

#[test]
fn wan_model_changes_the_winner_margin_not_the_answer() {
    let (forest, placement) = ft1(tiny(), 4);
    let (_, q) = query_with_qlist(8, 9);
    let lan = Cluster::new(&forest, &placement, NetworkModel::lan());
    let wan = Cluster::new(&forest, &placement, NetworkModel::wan());
    let a = parbox(&lan, &q);
    let b = parbox(&wan, &q);
    assert_eq!(a.answer, b.answer);
    assert!(b.report.elapsed_model_s > a.report.elapsed_model_s);
    // Traffic identical: the model only re-prices it.
    assert_eq!(a.report.total_bytes(), b.report.total_bytes());
}
